//! Pre-execution pipeline-graph validator (layer 2 of the static-analysis
//! gate).
//!
//! Every check here runs **before** any training or propagation starts and
//! inspects only cheap structural facts: schema/table agreement, vote-matrix
//! shapes, fusion dimension chains, and propagation-graph well-formedness.
//! The library crates deliberately keep their hot loops panic-free by
//! skipping structurally invalid inputs; this crate is where those
//! structural assumptions are enforced eagerly, with named rules and
//! source-able locations, so a misconfigured pipeline fails loudly at plan
//! time instead of silently at row 4 million.
//!
//! The checks come in two flavors:
//!
//! - **artifact checks** ([`artifact`], re-exported at the root:
//!   [`check_table`], [`check_vote_matrix`], [`check_fusion_plan`],
//!   [`check_graph`]) inspect built in-memory artifacts and label
//!   violations with a descriptive `location` string;
//! - **spec checks** ([`spec`]) validate declarative scenario-spec files
//!   (`specs/*.json`) and label every violation with a [`cm_span::Span`] —
//!   the exact byte/line/column of the offending token — rendered as
//!   `path:line:col: rule: message`.
//!
//! [`Report`] aggregates [`Violation`]s from either flavor; the `xtask
//! validate` subcommand drives both, [`corpus`] replays the pinned
//! positive/negative spec corpus as the self-test, and [`report_json`]
//! emits the deterministic machine report.

use std::fmt;

pub mod artifact;
pub mod corpus;
pub mod lint_spec;
pub mod report;
pub mod spec;

pub use artifact::{
    check_fusion_plan, check_graph, check_lf_degeneracy, check_table, check_vote_matrix,
    FusionKind, FusionPlan,
};
pub use lint_spec::validate_lint_spec_source;
pub use report::report_json;
pub use spec::{validate_spec_source, ExperimentSpec, ScenarioSpec, ServeSpec, SpecLabelSource};

use cm_span::Span;

/// The named rule a [`Violation`] was raised under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CheckRule {
    /// Table schema disagrees with the registry schema (column count,
    /// name, or kind).
    SchemaTableMismatch,
    /// A categorical id points outside its column's vocabulary.
    VocabIndexOutOfBounds,
    /// A stored embedding's width differs from the schema's declared dim.
    EmbeddingDimMismatch,
    /// A numeric cell holds NaN or infinity.
    NonFiniteNumeric,
    /// Vote matrix shape disagrees with the LF registry or row count.
    VoteMatrixShape,
    /// A vote outside {-1, 0, +1}.
    InvalidVote,
    /// An LF that cannot inform the label model (all-abstain or constant).
    DegenerateLf,
    /// A fusion plan whose projection/width chain does not compose.
    FusionDimChain,
    /// A graph edge without a matching reverse edge (or mismatched weight).
    GraphAsymmetry,
    /// A graph edge weight that is NaN or infinite.
    GraphNonFiniteWeight,
    /// A graph edge weight that is zero, negative, or a self-loop.
    GraphInvalidWeight,
    /// A spec file that is not well-formed JSON.
    SpecSyntax,
    /// A spec field that is missing, unknown, or of the wrong type.
    SpecField,
    /// A spec field whose value names something that does not exist
    /// (task, feature set, fusion strategy, ...) or is out of range.
    SpecValue,
    /// A lint-effects sanction spec field that is missing, unknown, or
    /// of the wrong type (see [`lint_spec`]).
    LintSpecField,
    /// A lint-effects sanction value that is well-typed but wrong: an
    /// unsupported version, an empty path/reason, a non-relative path,
    /// or a duplicate entry.
    LintSpecValue,
}

impl CheckRule {
    /// Every rule, in declaration order — the coverage contract the spec
    /// corpus self-test asserts against (each must have a positive
    /// fixture).
    pub const ALL: [CheckRule; 16] = [
        CheckRule::SchemaTableMismatch,
        CheckRule::VocabIndexOutOfBounds,
        CheckRule::EmbeddingDimMismatch,
        CheckRule::NonFiniteNumeric,
        CheckRule::VoteMatrixShape,
        CheckRule::InvalidVote,
        CheckRule::DegenerateLf,
        CheckRule::FusionDimChain,
        CheckRule::GraphAsymmetry,
        CheckRule::GraphNonFiniteWeight,
        CheckRule::GraphInvalidWeight,
        CheckRule::SpecSyntax,
        CheckRule::SpecField,
        CheckRule::SpecValue,
        CheckRule::LintSpecField,
        CheckRule::LintSpecValue,
    ];

    /// Stable kebab-case rule name (used in reports and tests).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CheckRule::SchemaTableMismatch => "schema-table-mismatch",
            CheckRule::VocabIndexOutOfBounds => "vocab-index-out-of-bounds",
            CheckRule::EmbeddingDimMismatch => "embedding-dim-mismatch",
            CheckRule::NonFiniteNumeric => "non-finite-numeric",
            CheckRule::VoteMatrixShape => "vote-matrix-shape",
            CheckRule::InvalidVote => "invalid-vote",
            CheckRule::DegenerateLf => "degenerate-lf",
            CheckRule::FusionDimChain => "fusion-dim-chain",
            CheckRule::GraphAsymmetry => "graph-asymmetry",
            CheckRule::GraphNonFiniteWeight => "graph-non-finite-weight",
            CheckRule::GraphInvalidWeight => "graph-invalid-weight",
            CheckRule::SpecSyntax => "spec-syntax",
            CheckRule::SpecField => "spec-field",
            CheckRule::SpecValue => "spec-value",
            CheckRule::LintSpecField => "lint-spec-field",
            CheckRule::LintSpecValue => "lint-spec-value",
        }
    }
}

impl fmt::Display for CheckRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One failed static check.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: CheckRule,
    /// Which artifact (and where inside it) the rule fired on, e.g.
    /// `"pool.table[col img_embedding, row 17]"`. For spanned violations
    /// this is rendered from the span as `path:line:col` so programmatic
    /// consumers of the legacy field keep working.
    pub location: String,
    /// Human-readable explanation with the observed vs expected values.
    pub message: String,
    /// Exact source position of the offending token, when the violation
    /// was raised against a source text (a spec file).
    pub span: Option<Span>,
    /// Source path the span points into, when known.
    pub path: Option<String>,
}

impl Violation {
    /// Builds a location-string violation (artifact checks).
    pub fn new(rule: CheckRule, location: impl Into<String>, message: impl Into<String>) -> Self {
        Self { rule, location: location.into(), message: message.into(), span: None, path: None }
    }

    /// Builds a span-carrying violation against the source at `path`; the
    /// legacy `location` string is rendered from the position.
    pub fn spanned(
        rule: CheckRule,
        path: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Self {
        let path = path.into();
        Self {
            rule,
            location: format!("{path}:{}:{}", span.line, span.col),
            message: message.into(),
            span: Some(span),
            path: Some(path),
        }
    }

    /// 1-based line of the violation, or 0 when it carries no span.
    #[must_use]
    pub fn line(&self) -> u32 {
        self.span.map_or(0, |s| s.line)
    }

    /// 1-based column of the violation, or 0 when it carries no span.
    #[must_use]
    pub fn col(&self) -> u32 {
        self.span.map_or(0, |s| s.col)
    }

    /// The file-ish key of this violation: the source path when spanned,
    /// the legacy location string otherwise.
    #[must_use]
    pub fn file_key(&self) -> &str {
        self.path.as_deref().unwrap_or(&self.location)
    }

    /// Deterministic report order: file/location, then line, column, rule
    /// name, message.
    #[must_use]
    pub fn sort_key_cmp(&self, other: &Violation) -> std::cmp::Ordering {
        self.file_key()
            .cmp(other.file_key())
            .then(self.line().cmp(&other.line()))
            .then(self.col().cmp(&other.col()))
            .then(self.rule.name().cmp(other.rule.name()))
            .then(self.message.cmp(&other.message))
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.path, self.span) {
            (Some(path), Some(span)) => {
                write!(f, "{path}:{}:{}: {}: {}", span.line, span.col, self.rule, self.message)
            }
            _ => write!(f, "[{}] {}: {}", self.rule, self.location, self.message),
        }
    }
}

/// Aggregate of all violations from a validation run.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// All collected violations, in check order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs the result of one check.
    pub fn extend(&mut self, violations: Vec<Violation>) {
        self.violations.extend(violations);
    }

    /// True when no rule fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations raised under `rule`.
    #[must_use]
    pub fn by_rule(&self, rule: CheckRule) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.rule == rule).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "validate: all checks passed");
        }
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        writeln!(f, "validate: {} violation(s)", self.violations.len())
    }
}
