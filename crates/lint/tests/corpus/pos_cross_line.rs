//@ path: crates/mining/src/demo.rs
// Seeded positive: every hit is split across a line break — exactly the
// shapes the old per-line scanner could not see. The virtual path is a
// hot-path crate so the table rules apply.

pub fn f(v: Option<u32>, table: &Table) -> u32 {
    let w = v
        .unwrap
        ();
    let x = v.
        expect("split receiver dot");
    let _t = std::time::Instant::
        now();
    let _h = std::thread::
        spawn(|| 1);
    let _r = table
        .row(0);
    w + x
}
