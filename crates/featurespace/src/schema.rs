//! Feature schemas: definitions, service groups, and servability.

use std::collections::HashMap;

use crate::error::{CmError, CmResult, ErrorKind};
use crate::value::FeatureKind;
use crate::vocab::Vocabulary;

/// The paper's four groups of services (§6.2): URL-based (A), keyword-based
/// (B), topic-model-based (C), page-content-based (D). Features that exist
/// for only one modality (e.g. a pre-trained image embedding) are
/// `ModalitySpecific`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureSet {
    /// URL-based metadata services.
    A,
    /// Keyword-based metadata services.
    B,
    /// Topic-model-based services.
    C,
    /// Page-content-based services.
    D,
    /// Features specific to one modality (not produced by a shared service).
    ModalitySpecific,
}

impl FeatureSet {
    /// The four shared service groups in paper order.
    pub const SHARED: [FeatureSet; 4] =
        [FeatureSet::A, FeatureSet::B, FeatureSet::C, FeatureSet::D];

    /// Parses a ladder spec like `"ABC"` into the prefix of shared sets.
    ///
    /// # Errors
    /// Returns [`ErrorKind::InvalidConfig`] on characters outside `A`–`D`.
    pub fn parse_ladder(spec: &str) -> CmResult<Vec<FeatureSet>> {
        spec.chars()
            .map(|c| match c {
                'A' => Ok(FeatureSet::A),
                'B' => Ok(FeatureSet::B),
                'C' => Ok(FeatureSet::C),
                'D' => Ok(FeatureSet::D),
                other => Err(CmError::new(
                    ErrorKind::InvalidConfig,
                    "FeatureSet::parse_ladder",
                    format!("unknown feature set {other:?} in spec {spec:?}"),
                )),
            })
            .collect()
    }
}

/// Whether a feature can be computed at model-serving time.
///
/// Nonservable features (§4.1, §6.4) are too expensive to extract in the
/// serving path; they may still feed labeling functions because weak
/// supervision is entirely offline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServingMode {
    /// Available both for training-data curation and at inference time.
    Servable,
    /// Available only offline (LF development, label propagation).
    Nonservable,
}

/// Definition of one feature in the common space.
#[derive(Debug, Clone)]
pub struct FeatureDef {
    /// Unique feature name (e.g. `"topic"`, `"user_reports"`).
    pub name: String,
    /// Value kind.
    pub kind: FeatureKind,
    /// Which service group produces it.
    pub set: FeatureSet,
    /// Servability at inference time.
    pub serving: ServingMode,
    /// Category vocabulary (categorical features only).
    pub vocab: Vocabulary,
}

impl FeatureDef {
    /// A numeric feature.
    pub fn numeric(name: &str, set: FeatureSet, serving: ServingMode) -> Self {
        Self {
            name: name.to_owned(),
            kind: FeatureKind::Numeric,
            set,
            serving,
            vocab: Vocabulary::new(),
        }
    }

    /// A categorical feature with the given vocabulary.
    pub fn categorical(
        name: &str,
        set: FeatureSet,
        serving: ServingMode,
        vocab: Vocabulary,
    ) -> Self {
        Self { name: name.to_owned(), kind: FeatureKind::Categorical, set, serving, vocab }
    }

    /// An embedding feature of width `dim`.
    pub fn embedding(name: &str, dim: usize, set: FeatureSet, serving: ServingMode) -> Self {
        Self {
            name: name.to_owned(),
            kind: FeatureKind::Embedding { dim },
            set,
            serving,
            vocab: Vocabulary::new(),
        }
    }
}

/// An ordered collection of feature definitions with name lookup.
#[derive(Debug, Clone, Default)]
pub struct FeatureSchema {
    defs: Vec<FeatureDef>,
    index: HashMap<String, usize>,
}

impl FeatureSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from definitions.
    ///
    /// # Panics
    /// Panics on duplicate feature names.
    pub fn from_defs(defs: Vec<FeatureDef>) -> Self {
        let mut schema = Self::new();
        for def in defs {
            schema.push(def);
        }
        schema
    }

    /// Appends a feature definition, returning its column index.
    ///
    /// # Panics
    /// Panics if the name is already present.
    pub fn push(&mut self, def: FeatureDef) -> usize {
        assert!(!self.index.contains_key(&def.name), "duplicate feature name {:?}", def.name);
        let idx = self.defs.len();
        self.index.insert(def.name.clone(), idx);
        self.defs.push(def);
        idx
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the schema has no features.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition at column `idx`, `None` if out of range.
    ///
    /// Callers that hold schema-derived column lists can rely on `Some`;
    /// anything taking externally supplied indices must handle `None`
    /// (previously this indexed directly and panicked).
    pub fn def(&self, idx: usize) -> Option<&FeatureDef> {
        self.defs.get(idx)
    }

    /// All definitions in column order.
    pub fn defs(&self) -> &[FeatureDef] {
        &self.defs
    }

    /// Column index of a feature by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Column indices whose feature set is in `sets` (plus, optionally,
    /// modality-specific columns).
    pub fn columns_in_sets(&self, sets: &[FeatureSet], include_specific: bool) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                sets.contains(&d.set) || (include_specific && d.set == FeatureSet::ModalitySpecific)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Column indices of servable features only.
    pub fn servable_columns(&self) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.serving == ServingMode::Servable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self.defs.iter().enumerate().map(|(i, d)| (d.name.clone(), i)).collect();
        for def in &mut self.defs {
            def.vocab.rebuild_index();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> FeatureSchema {
        FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "topic",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["sports", "news"]),
            ),
            FeatureDef::numeric("user_reports", FeatureSet::A, ServingMode::Servable),
            FeatureDef::numeric("share_velocity", FeatureSet::D, ServingMode::Nonservable),
            FeatureDef::embedding(
                "img_emb",
                8,
                FeatureSet::ModalitySpecific,
                ServingMode::Servable,
            ),
        ])
    }

    #[test]
    fn column_lookup_by_name() {
        let s = sample_schema();
        assert_eq!(s.column("topic"), Some(0));
        assert_eq!(s.column("img_emb"), Some(3));
        assert_eq!(s.column("nope"), None);
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate feature name")]
    fn duplicate_names_rejected() {
        let mut s = sample_schema();
        s.push(FeatureDef::numeric("topic", FeatureSet::A, ServingMode::Servable));
    }

    #[test]
    fn columns_in_sets_filters() {
        let s = sample_schema();
        assert_eq!(s.columns_in_sets(&[FeatureSet::A], false), vec![1]);
        assert_eq!(s.columns_in_sets(&[FeatureSet::A, FeatureSet::C], false), vec![0, 1]);
        assert_eq!(s.columns_in_sets(&[FeatureSet::A], true), vec![1, 3]);
    }

    #[test]
    fn servable_columns_excludes_nonservable() {
        let s = sample_schema();
        assert_eq!(s.servable_columns(), vec![0, 1, 3]);
    }

    #[test]
    fn parse_ladder_maps_letters() {
        assert_eq!(
            FeatureSet::parse_ladder("ABCD").unwrap(),
            vec![FeatureSet::A, FeatureSet::B, FeatureSet::C, FeatureSet::D]
        );
        assert_eq!(FeatureSet::parse_ladder("AB").unwrap(), vec![FeatureSet::A, FeatureSet::B]);
    }

    #[test]
    fn parse_ladder_rejects_unknown() {
        let err = FeatureSet::parse_ladder("AX").unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidConfig);
        assert!(err.message.contains("'X'"), "unexpected message {:?}", err.message);
    }

    #[test]
    fn def_is_none_out_of_range() {
        let s = sample_schema();
        assert_eq!(s.def(0).map(|d| d.name.as_str()), Some("topic"));
        assert!(s.def(4).is_none());
        assert!(s.def(usize::MAX).is_none());
    }
}
