//! Apriori-style itemset mining over the labeled development corpus.
//!
//! The engine is *vertical*: instead of materializing each row's items and
//! feeding hash-map counters (retained as the oracle in
//! [`crate::reference`]), one pass over the frozen columns builds a row
//! bitset per distinct item, and every support after that is a
//! popcount-AND — class-conditional supports against the class bitsets,
//! higher-order conjunctions by intersecting member bitsets.

use cm_featurespace::{Bitmap, FeatureTable, FrozenTable, Label};
use cm_par::ParConfig;

use crate::catalog::{ItemCatalog, ItemCatalogBuilder};
use crate::discretize::Discretizer;

/// Below this many rows the support passes stay serial; above it they chunk
/// over itemsets. Size-only, so path selection never depends on the thread
/// count.
const MINE_PAR_ROWS: usize = 4096;

/// Minimum itemsets per chunk for the parallel popcount passes.
const MINE_MIN_ITEMS_PER_CHUNK: usize = 8;

/// An atomic item: one feature value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item {
    /// Source column.
    pub column: usize,
    /// The value.
    pub value: ItemValue,
}

/// The value part of an [`Item`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ItemValue {
    /// A category id of a categorical feature.
    Cat(u32),
    /// A quantile bin of a numeric feature.
    NumBin(u32),
}

/// Support/precision statistics of a mined itemset.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemStats {
    /// The items (all share one column; length = order).
    pub items: Vec<Item>,
    /// Rows matching among positives.
    pub pos_support: usize,
    /// Rows matching among negatives.
    pub neg_support: usize,
    /// `P(y = + | itemset present)` on the dev set.
    pub precision: f64,
    /// `P(itemset present | y = +)` on the dev set.
    pub recall: f64,
}

/// Mining thresholds (§4.3: itemsets are kept when they meet pre-specified
/// precision and recall thresholds over the development set).
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Minimum precision for positive itemsets.
    pub min_precision: f64,
    /// Minimum recall (within the positive class) for positive itemsets.
    pub min_recall: f64,
    /// Minimum "negative precision" (`P(y = - | present)`) for negative
    /// itemsets.
    pub min_neg_precision: f64,
    /// Minimum support within the negative class for negative itemsets.
    pub min_neg_recall: f64,
    /// Maximum itemset order (1 = single values; the paper found order 1
    /// sufficient in practice).
    pub max_order: usize,
    /// Quantile bins for numeric features.
    pub numeric_bins: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            min_precision: 0.8,
            min_recall: 0.02,
            min_neg_precision: 0.995,
            min_neg_recall: 0.05,
            max_order: 1,
            numeric_bins: 8,
        }
    }
}

/// Result of a mining run.
#[derive(Debug, Clone)]
pub struct MinedItemsets {
    /// Positive-indicative itemsets.
    pub positive: Vec<ItemStats>,
    /// Negative-indicative itemsets.
    pub negative: Vec<ItemStats>,
    /// Fitted numeric discretizers (needed to turn bins back into ranges).
    pub discretizers: Vec<Discretizer>,
    /// Number of order-1 candidates considered.
    pub n_candidates: usize,
}

/// Mines positive- and negative-indicative itemsets from a labeled table.
///
/// Implements the paper's class-imbalance optimization: candidate items are
/// first counted over the positive examples only; only survivors are counted
/// over the negatives. Higher orders join items *within one column*.
///
/// # Panics
/// Panics if `labels.len() != table.len()`.
pub fn mine_itemsets(
    table: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    config: &MiningConfig,
) -> MinedItemsets {
    mine_itemsets_with(table, labels, columns, config, &ParConfig::from_env())
}

/// [`mine_itemsets`] with an explicit parallel configuration.
///
/// The support passes chunk over itemsets; each itemset's supports are
/// exact popcounts computed independently, so results are identical for
/// any thread count — and identical to the row-at-a-time oracle in
/// [`crate::reference`], since all counted quantities are the same
/// integers and the derived precision/recall divisions see the same
/// operands.
///
/// # Panics
/// Panics if `labels.len() != table.len()`.
pub fn mine_itemsets_with(
    table: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    config: &MiningConfig,
    par: &ParConfig,
) -> MinedItemsets {
    assert_eq!(table.len(), labels.len(), "label count mismatch");
    // The resident path is the single-segment case of the streaming
    // catalog build, so sharded mining agrees with it by construction.
    let frozen = FrozenTable::freeze(table);
    let mut builder = ItemCatalogBuilder::new(table.schema(), columns, config.numeric_bins);
    builder.observe(&frozen);
    let catalog = builder.finish();
    let mut item_bits = catalog.empty_bitsets();
    catalog.fill(&frozen, 0, &mut item_bits);
    mine_from_bitsets(&catalog, &item_bits, labels, config, par)
}

/// Runs the candidate/join phases of the miner against a pre-built item
/// catalog and its row bitsets — the entry point for sharded mining, where
/// [`ItemCatalog::fill`] assembled the bitsets segment by segment.
///
/// Every counted quantity is an exact popcount over the same bitsets the
/// resident path builds, so the output is identical for any segmentation
/// that produced them.
///
/// # Panics
/// Panics if `labels` or `item_bits` disagree with the catalog's corpus.
pub fn mine_from_bitsets(
    catalog: &ItemCatalog,
    item_bits: &[Bitmap],
    labels: &[Label],
    config: &MiningConfig,
    par: &ParConfig,
) -> MinedItemsets {
    assert_eq!(catalog.n_rows(), labels.len(), "label count mismatch");
    assert_eq!(catalog.items.len(), item_bits.len(), "bitset count mismatch");
    let items = &catalog.items;
    let discretizers = catalog.discretizers.clone();

    let n_pos = labels.iter().filter(|l| l.is_positive()).count();
    let n_neg = labels.len() - n_pos;

    // Class bitsets: popcount(item AND class) is the class-conditional
    // support, covering both of the oracle's counting passes at once.
    let mut pos_bits = Bitmap::zeros(labels.len());
    let mut neg_bits = Bitmap::zeros(labels.len());
    for (r, l) in labels.iter().enumerate() {
        if l.is_positive() {
            pos_bits.set(r);
        } else {
            neg_bits.set(r);
        }
    }
    let supports = class_supports(item_bits, &pos_bits, &neg_bits, labels.len(), par);

    // "Candidates considered" keeps the historical meaning: items occurring
    // in at least one positive row (the paper's class-imbalance
    // optimization counted positives only, so only those items existed).
    let n_candidates = supports.iter().filter(|&&(pos, _)| pos > 0).count();

    // Keep candidates that could still clear the recall bar.
    let min_pos_support = ((config.min_recall * n_pos as f64).ceil() as usize).max(1);
    let candidates: Vec<usize> =
        (0..items.len()).filter(|&i| supports[i].0 >= min_pos_support).collect();

    let make_stats = |items: Vec<Item>, pos: usize, neg: usize| ItemStats {
        items,
        pos_support: pos,
        neg_support: neg,
        precision: if pos + neg > 0 { pos as f64 / (pos + neg) as f64 } else { 0.0 },
        recall: if n_pos > 0 { pos as f64 / n_pos as f64 } else { 0.0 },
    };

    // Order-1 positive itemsets.
    let mut positive: Vec<ItemStats> = Vec::new();
    let mut frontier: Vec<(Vec<Item>, Bitmap)> = Vec::new();
    for &ci in &candidates {
        let (pos, neg) = supports[ci];
        let stats = make_stats(vec![items[ci]], pos, neg);
        if stats.precision >= config.min_precision && stats.recall >= config.min_recall {
            positive.push(stats);
        } else if stats.recall >= config.min_recall {
            // High-recall but low-precision items seed higher orders.
            frontier.push((vec![items[ci]], item_bits[ci].clone()));
        }
    }

    // Higher orders: join frontier itemsets with candidate items of the
    // same column (Apriori join with the single-feature constraint). Bases
    // are ascending item lists extended only with items greater than their
    // last member, so every joined set arises from exactly one base and no
    // dedup map is needed; its row bitset is one AND away.
    for _order in 2..=config.max_order {
        if frontier.is_empty() {
            break;
        }
        let mut next_sets: Vec<Vec<Item>> = Vec::new();
        let mut next_bits: Vec<Bitmap> = Vec::new();
        for (base, bits) in &frontier {
            let col = base[0].column;
            let Some(&last) = base.last() else { continue };
            for &ci in &candidates {
                let item = items[ci];
                if item.column != col || item <= last {
                    continue;
                }
                let mut joined = base.clone();
                joined.push(item);
                next_sets.push(joined);
                next_bits.push(bits.and(&item_bits[ci]));
            }
        }
        let joined_supports = class_supports(&next_bits, &pos_bits, &neg_bits, labels.len(), par);
        let mut new_frontier = Vec::new();
        for (i, set) in next_sets.iter().enumerate() {
            let (pos, neg) = joined_supports[i];
            let stats = make_stats(set.clone(), pos, neg);
            if stats.recall < config.min_recall {
                continue; // anti-monotone prune
            }
            if stats.precision >= config.min_precision {
                positive.push(stats);
            } else {
                new_frontier.push((set.clone(), next_bits[i].clone()));
            }
        }
        frontier = new_frontier;
    }

    // Negative itemsets (order 1 only: the negative class is diffuse and
    // higher orders add nothing but runtime).
    let min_neg_support = ((config.min_neg_recall * n_neg as f64).ceil() as usize).max(1);
    let mut negative: Vec<ItemStats> = Vec::new();
    for (i, &(pos, neg)) in supports.iter().enumerate() {
        if neg < min_neg_support {
            continue;
        }
        let neg_precision = neg as f64 / (pos + neg) as f64;
        if neg_precision >= config.min_neg_precision {
            negative.push(make_stats(vec![items[i]], pos, neg));
        }
    }

    sort_stats(&mut positive);
    sort_stats(&mut negative);
    MinedItemsets { positive, negative, discretizers, n_candidates }
}

/// Class-conditional supports for a slice of row bitsets: for each,
/// `(popcount(b AND pos), popcount(b AND neg))`. Chunks over itemsets when
/// the table is large enough for fan-out to pay; every support is an exact
/// integer computed independently, so the result is identical at any
/// thread count.
fn class_supports(
    bits: &[Bitmap],
    pos: &Bitmap,
    neg: &Bitmap,
    n_rows: usize,
    par: &ParConfig,
) -> Vec<(usize, usize)> {
    let count = |range: std::ops::Range<usize>| -> Vec<(usize, usize)> {
        bits[range].iter().map(|b| (b.and_count(pos), b.and_count(neg))).collect()
    };
    if n_rows < MINE_PAR_ROWS {
        return count(0..bits.len());
    }
    cm_par::par_map_chunks(&par.clone().with_min_chunk(MINE_MIN_ITEMS_PER_CHUNK), bits.len(), count)
        .unwrap_or_else(|e| e.resume())
        .into_iter()
        .flatten()
        .collect()
}

pub(crate) fn sort_stats(stats: &mut [ItemStats]) {
    stats.sort_by(|a, b| b.recall.total_cmp(&a.recall).then_with(|| a.items.cmp(&b.items)));
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode, Vocabulary,
    };

    use super::*;

    /// Dev set: id 0 is a near-perfect positive indicator, id 1 appears in
    /// both classes, id 2 is a near-perfect negative indicator. The numeric
    /// column is high for positives.
    fn dev(n_pos: usize, n_neg: usize) -> (FeatureTable, Vec<Label>) {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["p", "mix", "n"]),
            ),
            FeatureDef::numeric("score", FeatureSet::A, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..n_pos {
            let ids = if i % 10 == 0 { vec![1] } else { vec![0, 1] };
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(ids)),
                FeatureValue::Numeric(10.0 + (i % 3) as f64),
            ]);
            labels.push(Label::Positive);
        }
        for i in 0..n_neg {
            let ids = if i % 60 == 0 { vec![0, 2] } else { vec![1, 2] };
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(ids)),
                FeatureValue::Numeric(i as f64 * 0.01),
            ]);
            labels.push(Label::Negative);
        }
        (t, labels)
    }

    #[test]
    fn finds_positive_indicator() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        let found = mined
            .positive
            .iter()
            .any(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(0) }]);
        assert!(found, "positive itemsets: {:?}", mined.positive);
    }

    #[test]
    fn finds_numeric_bin_indicator() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        let found = mined
            .positive
            .iter()
            .any(|s| matches!(s.items[0].value, ItemValue::NumBin(_)) && s.items[0].column == 1);
        assert!(found, "expected a numeric-bin itemset: {:?}", mined.positive);
    }

    #[test]
    fn finds_negative_indicator() {
        let (t, labels) = dev(100, 900);
        let cfg = MiningConfig { min_neg_precision: 0.95, ..Default::default() };
        let mined = mine_itemsets(&t, &labels, &[0], &cfg);
        let found = mined
            .negative
            .iter()
            .any(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(2) }]);
        assert!(found, "negative itemsets: {:?}", mined.negative);
    }

    #[test]
    fn ambiguous_value_excluded_from_positives() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0], &MiningConfig::default());
        assert!(
            !mined
                .positive
                .iter()
                .any(|s| s.items.contains(&Item { column: 0, value: ItemValue::Cat(1) })),
            "id 1 appears everywhere and must not become a positive LF"
        );
    }

    #[test]
    fn precision_and_recall_are_exact() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0], &MiningConfig::default());
        let s = mined
            .positive
            .iter()
            .find(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(0) }])
            .unwrap();
        // id 0: 90 positives (i%10 != 0) and 15 negatives (i%60 == 0).
        assert_eq!(s.pos_support, 90);
        assert_eq!(s.neg_support, 15);
        assert!((s.recall - 0.9).abs() < 1e-12);
        assert!((s.precision - 90.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds_filter_results() {
        let (t, labels) = dev(100, 900);
        let strict = MiningConfig { min_precision: 0.99, ..Default::default() };
        let mined = mine_itemsets(&t, &labels, &[0], &strict);
        assert!(
            !mined
                .positive
                .iter()
                .any(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(0) }]),
            "precision 0.857 item must not pass a 0.99 bar"
        );
    }

    #[test]
    fn order2_conjunction_rescues_low_precision_items() {
        // Two ids that are individually weak but jointly pure.
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "z"]),
        )]));
        let mut t = FeatureTable::new(schema);
        let mut labels = Vec::new();
        for _ in 0..50 {
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(vec![0, 1]))]);
            labels.push(Label::Positive);
        }
        for i in 0..300 {
            // Negatives carry a XOR b, never both.
            let id = if i % 2 == 0 { 0 } else { 1 };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(vec![id, 2]))]);
            labels.push(Label::Negative);
        }
        let cfg = MiningConfig { min_precision: 0.9, max_order: 2, ..Default::default() };
        let mined = mine_itemsets(&t, &labels, &[0], &cfg);
        let pair = mined.positive.iter().find(|s| s.items.len() == 2);
        let pair = pair.expect("order-2 itemset {a,b} should be mined");
        assert_eq!(pair.pos_support, 50);
        assert_eq!(pair.neg_support, 0);
        assert_eq!(pair.precision, 1.0);
    }

    #[test]
    fn empty_positive_class_yields_nothing() {
        let (t, mut labels) = dev(10, 90);
        labels.fill(Label::Negative);
        let mined = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        assert!(mined.positive.is_empty());
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn rejects_mismatched_labels() {
        let (t, _) = dev(5, 5);
        mine_itemsets(&t, &[Label::Positive], &[0], &MiningConfig::default());
    }

    #[test]
    fn results_are_deterministic_and_sorted_by_recall() {
        let (t, labels) = dev(100, 900);
        let a = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        let b = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        assert_eq!(a.positive, b.positive);
        for w in a.positive.windows(2) {
            assert!(w[0].recall >= w[1].recall);
        }
    }

    #[test]
    fn bitset_engine_matches_rowwise_oracle() {
        let (t, labels) = dev(100, 900);
        for max_order in [1usize, 2, 3] {
            let cfg = MiningConfig { max_order, ..MiningConfig::default() };
            let fast = mine_itemsets(&t, &labels, &[0, 1], &cfg);
            let slow = crate::reference::mine_itemsets_reference(&t, &labels, &[0, 1], &cfg);
            assert_eq!(fast.positive, slow.positive, "order {max_order}");
            assert_eq!(fast.negative, slow.negative, "order {max_order}");
            assert_eq!(fast.n_candidates, slow.n_candidates, "order {max_order}");
        }
    }

    #[test]
    fn mining_is_identical_across_thread_counts() {
        // 6000 rows crosses MINE_PAR_ROWS, so the counting passes chunk.
        let (t, labels) = dev(600, 5400);
        let cfg = MiningConfig::default();
        let base = mine_itemsets_with(&t, &labels, &[0, 1], &cfg, &ParConfig::threads(1));
        for threads in [2usize, 4, 8] {
            let par = ParConfig::threads(threads);
            let mined = mine_itemsets_with(&t, &labels, &[0, 1], &cfg, &par);
            assert_eq!(mined.positive, base.positive, "threads = {threads}");
            assert_eq!(mined.negative, base.negative, "threads = {threads}");
            assert_eq!(mined.n_candidates, base.n_candidates, "threads = {threads}");
        }
    }
}
