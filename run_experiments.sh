#!/bin/bash
# Regenerates every table and figure; writes stdout + JSON to results/.
# Budgets are sized for a single-core box; raise CM_SCALE/CM_SEEDS on
# bigger hardware.
set -u
cd "$(dirname "$0")"
BIN=target/release
run() {
  name=$1; shift
  echo "=== $name ($(date +%H:%M:%S)) ==="
  env "$@" CM_JSON=results/$name.json $BIN/$name > results/$name.txt 2>&1
  echo "--- done $name ($(date +%H:%M:%S))"
}
run table1 CM_SCALE=1.0
run table3 CM_SCALE=0.5 CM_SEEDS=3
run lf_auto_vs_manual CM_SCALE=0.7 CM_SEEDS=3
run fig6   CM_SCALE=0.7 CM_SEEDS=3
run fig7   CM_SCALE=0.7 CM_SEEDS=3
run ablations CM_SCALE=0.5 CM_SEEDS=2
run fig5   CM_SCALE=0.7 CM_SEEDS=2
run table2 CM_SCALE=0.5 CM_SEEDS=2
run fusion_compare CM_SCALE=0.35 CM_SEEDS=2
# CT3/CT4 have 0.9-3.9% positive rates; re-measure their Table-2 rows at
# full 1/1000 scale where the test sets hold enough positives.
for t in CT4 CT3; do
  echo "=== table2 $t @ scale 1.0 ($(date +%H:%M:%S)) ==="
  CM_TASK=$t CM_SCALE=1.0 CM_SEEDS=2 CM_JSON=results/table2_$t.json \
    $BIN/table2 > results/table2_$t.txt 2>&1
  echo "--- done table2 $t ($(date +%H:%M:%S))"
done
echo "ALL EXPERIMENTS COMPLETE"
