//! Core label and modality vocabulary shared across the pipeline.

/// Binary classification label. The paper evaluates binary topic/object
/// classification tasks (§6.1); multi-class is future work there and here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The entity exhibits the task's topic/object of interest.
    Positive,
    /// It does not.
    Negative,
}

impl Label {
    /// `1.0` for positive, `0.0` for negative — the soft-label encoding the
    /// noise-aware loss consumes.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Label::Positive => 1.0,
            Label::Negative => 0.0,
        }
    }

    /// Converts a probability into a hard label at threshold 0.5.
    #[inline]
    pub fn from_prob(p: f64) -> Self {
        if p >= 0.5 {
            Label::Positive
        } else {
            Label::Negative
        }
    }

    /// Whether the label is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, Label::Positive)
    }
}

/// Data modality of an entity. The case study adapts text-trained tasks to
/// image (§6.1); `Video` exercises the "richer still" modality the
/// introduction motivates (frame-split into image features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModalityKind {
    /// Text posts: the old, label-rich modality.
    Text,
    /// Image posts: the new, unlabeled modality under adaptation.
    Image,
    /// Video posts: an even richer modality, featurized via frame splitting.
    Video,
}

impl ModalityKind {
    /// Short display name.
    pub fn short(self) -> &'static str {
        match self {
            ModalityKind::Text => "T",
            ModalityKind::Image => "I",
            ModalityKind::Video => "V",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_float_round_trip() {
        assert_eq!(Label::Positive.as_f64(), 1.0);
        assert_eq!(Label::Negative.as_f64(), 0.0);
        assert_eq!(Label::from_prob(0.9), Label::Positive);
        assert_eq!(Label::from_prob(0.5), Label::Positive);
        assert_eq!(Label::from_prob(0.49), Label::Negative);
    }

    #[test]
    fn is_positive_matches_variant() {
        assert!(Label::Positive.is_positive());
        assert!(!Label::Negative.is_positive());
    }

    #[test]
    fn modality_short_names_unique() {
        let names =
            [ModalityKind::Text.short(), ModalityKind::Image.short(), ModalityKind::Video.short()];
        assert_eq!(names, ["T", "I", "V"]);
    }
}
