//! Clocks: the simulated clock fault handling runs on, plus the one
//! sanctioned wall-clock stopwatch for diagnostics.
//!
//! Library code must never branch on wall-clock time — retries, backoff,
//! and deadline budgets all advance a [`SimClock`], so a faulted run is
//! bit-for-bit reproducible from its fault seed on any host at any load.
//! The only legitimate wall-clock use is *reporting* how long a step took
//! ([`Stopwatch`]); `xtask lint` bans `Instant::now()` / `SystemTime::now()`
//! everywhere else.

use std::time::Duration;

/// A deterministic simulated clock, counting milliseconds since the start
/// of a run. Fault latency, retry backoff, and deadline budgets advance
/// this clock instead of sleeping, so fault timing is part of the seeded
/// state rather than the host's scheduler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimClock {
    now_ms: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Milliseconds elapsed since the start of the run.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock by `ms` simulated milliseconds (saturating).
    pub fn advance_ms(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

/// The sanctioned wall-clock timer: measures how long a step took for
/// *reports only*, never for control flow. This is the single place in
/// library code allowed to read `std::time::Instant`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        // The sole wall-clock read in library code; see module docs.
        // lint: allow(instant-now)
        Self { start: std::time::Instant::now() }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_and_saturates() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(250);
        c.advance_ms(5);
        assert_eq!(c.now_ms(), 255);
        c.advance_ms(u64::MAX);
        assert_eq!(c.now_ms(), u64::MAX);
    }

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let w = Stopwatch::start();
        let d = w.elapsed();
        assert!(d >= Duration::ZERO);
    }
}
