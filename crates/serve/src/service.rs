//! The incremental curation service loop.
//!
//! Entities arrive in seeded arrival-order batches off a
//! [`cm_orgsim::DatasetStream`], featurized through the resilient
//! [`AccessLayer`] (PR 3's faults become live batch behavior). Each tick:
//!
//! 1. the simulated clock advances and deferred batches re-offer ahead of
//!    new arrivals;
//! 2. up to `arrivals_per_tick` batches are drawn from the stream and
//!    offered to the bounded admission queue (shed/defer under pressure);
//! 3. one unit of work is processed — a due quarantine retry takes
//!    priority, else the oldest queued batch: the batch is previewed,
//!    checked against the quality guards, and either ingested into the
//!    [`IncrementalCurator`] or quarantined;
//! 4. a versioned checkpoint is written (when configured), so a crashed
//!    run resumes **bit-identical** to an uninterrupted one.
//!
//! Determinism: every random draw is keyed on seeds and absolute row
//! indices, segment sizes are jittered by a per-offset hash, and the only
//! clock is the simulated one — so two runs of the same config, at any
//! `CM_THREADS`, with any crash/restart pattern, produce byte-identical
//! reports. Wall-clock time is measured ([`ServeTiming`]) but reported
//! out-of-band, never serialized into fixtures.

use std::path::PathBuf;
use std::time::Duration;

use cm_faults::{AccessLayer, AccessPolicy, FaultPlan, Stopwatch};
use cm_featurespace::{CmError, CmResult, ErrorKind, ModalityKind};
use cm_json::{Json, ToJson};
use cm_linalg::rng::{Rng, StdRng};
use cm_orgsim::{TaskConfig, World, WorldConfig};
use cm_par::ParConfig;
use cm_pipeline::{DegradationReport, IncrementalConfig, IncrementalCurator, ServingReport};

use crate::guards::{QualityGuards, QuarantinedBatch};
use crate::queue::{Admission, AdmissionQueue, QueueConfig, QueuedBatch};
use crate::snapshot::{
    self, CheckpointFormat, CheckpointStore, CompactionPolicy, PendingWork, ServeTelemetry,
};

/// Full configuration of a service run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Task whose world generates the arrival stream.
    pub task: TaskConfig,
    /// World/dataset seed (same role as in `TaskData::generate`).
    pub seed: u64,
    /// Curator configuration (mining, label model, propagation, refit cap).
    pub incremental: IncrementalConfig,
    /// Total rows the arrival stream will produce.
    pub total_rows: usize,
    /// Nominal rows per arrival batch (`CM_BATCH_ROWS`); actual sizes are
    /// deterministically jittered ±25 %.
    pub batch_rows: usize,
    /// Arrival batches offered per tick. Above 1 the service is
    /// structurally overloaded (it processes one batch per tick) and the
    /// backpressure path engages.
    pub arrivals_per_tick: usize,
    /// Simulated milliseconds between ticks.
    pub inter_batch_ms: u64,
    /// Simulated milliseconds one batch ingest takes.
    pub process_ms: u64,
    /// Admission-queue sizing (`CM_QUEUE_DEPTH`, `CM_MEM_BUDGET`).
    pub queue: QueueConfig,
    /// Per-batch quality-guard thresholds.
    pub guards: QualityGuards,
    /// Fault plan routed through the access layer (`CM_FAULTS`).
    pub plan: FaultPlan,
    /// Retry/breaker policy for the access layer.
    pub policy: AccessPolicy,
    /// Where to persist checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// On-disk checkpoint representation (`CM_CKPT_FORMAT`): the wire
    /// base+delta log (default) or the legacy whole-file JSON.
    pub checkpoint_format: CheckpointFormat,
    /// When the delta log is folded back into a fresh base
    /// (`CM_CKPT_COMPACT_TICKS`, `CM_CKPT_COMPACT_FACTOR`).
    pub compaction: CompactionPolicy,
    /// Crash injection (`CM_CRASH_AT`): exit after the k-th batch ingest
    /// *before* that tick's checkpoint is written, so a resumed run
    /// reprocesses the interrupted tick. Clear it on the resume run.
    pub crash_at: Option<usize>,
}

impl ServeConfig {
    /// Serving defaults for `task`: small jittered batches, one arrival
    /// per tick, half-open breakers (cooldown 400 sim-ms) so degraded
    /// services can recover mid-run.
    pub fn new(task: TaskConfig, seed: u64) -> Self {
        let total_rows = task.n_image_unlabeled;
        Self {
            task,
            seed,
            incremental: IncrementalConfig::default(),
            total_rows,
            batch_rows: 60,
            arrivals_per_tick: 1,
            inter_batch_ms: 40,
            process_ms: 25,
            queue: QueueConfig::default(),
            guards: QualityGuards::default(),
            plan: FaultPlan::disabled(),
            policy: AccessPolicy { breaker_cooldown_ms: 400, ..AccessPolicy::default() },
            checkpoint_path: None,
            checkpoint_format: CheckpointFormat::Wire,
            compaction: CompactionPolicy::default(),
            crash_at: None,
        }
    }

    /// Applies the serving environment knobs: `CM_BATCH_ROWS`,
    /// `CM_QUEUE_DEPTH`, `CM_MEM_BUDGET`, `CM_CRASH_AT`, `CM_FAULTS`,
    /// `CM_CKPT_FORMAT`, `CM_CKPT_COMPACT_TICKS`, `CM_CKPT_COMPACT_FACTOR`.
    pub fn with_env_overrides(mut self) -> CmResult<Self> {
        const LOC: &str = "ServeConfig::with_env_overrides";
        let bad = |knob: &str, v: &str| {
            CmError::new(ErrorKind::InvalidConfig, LOC, format!("{knob} {v:?} is not a number"))
        };
        if let Ok(v) = std::env::var("CM_BATCH_ROWS") {
            self.batch_rows = v.trim().parse().map_err(|_| bad("CM_BATCH_ROWS", &v))?;
        }
        if let Ok(v) = std::env::var("CM_QUEUE_DEPTH") {
            let depth: usize = v.trim().parse().map_err(|_| bad("CM_QUEUE_DEPTH", &v))?;
            self.queue.capacity = depth.max(1);
            self.queue.high_watermark = depth.saturating_sub(2).max(1);
        }
        if let Ok(v) = std::env::var("CM_CRASH_AT") {
            self.crash_at = Some(v.trim().parse().map_err(|_| bad("CM_CRASH_AT", &v))?);
        }
        if let Ok(v) = std::env::var("CM_CKPT_FORMAT") {
            self.checkpoint_format = CheckpointFormat::parse(&v)?;
        }
        if let Ok(v) = std::env::var("CM_CKPT_COMPACT_TICKS") {
            let ticks: usize = v.trim().parse().map_err(|_| bad("CM_CKPT_COMPACT_TICKS", &v))?;
            self.compaction.every_ticks = ticks.max(1);
        }
        if let Ok(v) = std::env::var("CM_CKPT_COMPACT_FACTOR") {
            let factor: f64 = v.trim().parse().map_err(|_| bad("CM_CKPT_COMPACT_FACTOR", &v))?;
            if !factor.is_finite() || factor < 1.0 {
                return Err(CmError::new(
                    ErrorKind::InvalidConfig,
                    LOC,
                    format!("CM_CKPT_COMPACT_FACTOR {v:?} must be a finite number >= 1"),
                ));
            }
            self.compaction.max_log_factor = factor;
        }
        self.queue.budget = cm_shard::MemBudget::from_env()?;
        self.plan = FaultPlan::from_env()?;
        Ok(self)
    }
}

/// Per-tick checkpoint write cost, recorded so the serve bench can plot
/// the flat (delta-log) vs linear (whole-file) persistence curve.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointTickCost {
    /// Tick at which this write happened.
    pub tick: usize,
    /// Wall-clock cost of capture + encode + write.
    pub elapsed: Duration,
    /// Bytes written to the checkpoint file this tick.
    pub bytes_written: usize,
    /// Whether this write was a full base snapshot (fresh file or
    /// compaction) rather than a delta append.
    pub wrote_base: bool,
}

/// Wall-clock accounting of one run, reported out-of-band (never part of
/// deterministic fixtures).
#[derive(Debug, Clone, Default)]
pub struct ServeTiming {
    /// Whole `run` call.
    pub total: Duration,
    /// One-time startup: world build, text reservoir generation, access
    /// layer, curator construction or checkpoint restore.
    pub setup: Duration,
    /// Drawing + featurizing arrival batches (the data, not the service).
    pub generation: Duration,
    /// Core curation: previews, ingests, label-model refits.
    pub curation: Duration,
    /// Checkpoint capture + serialization + write (all ticks).
    pub checkpoint: Duration,
    /// Total bytes written to the checkpoint file.
    pub checkpoint_bytes: usize,
    /// Per-tick checkpoint write costs, in tick order.
    pub checkpoint_ticks: Vec<CheckpointTickCost>,
}

impl ServeTiming {
    /// Serving-envelope time: admission, guard bookkeeping, report
    /// assembly — everything that is *service* rather than curation, data
    /// generation, or persistence.
    pub fn envelope(&self) -> Duration {
        self.total
            .saturating_sub(self.setup)
            .saturating_sub(self.generation)
            .saturating_sub(self.curation)
            .saturating_sub(self.checkpoint)
    }

    /// Envelope as a percentage of core curation time (the "< 2 % clean
    /// path overhead" acceptance metric).
    pub fn overhead_pct(&self) -> f64 {
        let curation = self.curation.as_secs_f64();
        if curation <= 0.0 {
            return 0.0;
        }
        100.0 * self.envelope().as_secs_f64() / curation
    }
}

/// Deterministic output of a completed run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-batch ingest statistics, in ingest order.
    pub batches: Vec<cm_pipeline::BatchStats>,
    /// Arrival-to-completion latency per ingested batch (sim ms).
    pub latencies_ms: Vec<u64>,
    /// Pool rows accumulated by the curator.
    pub rows_ingested: usize,
    /// Ticks the service ran.
    pub ticks: usize,
    /// Simulated time at shutdown.
    pub sim_ms: u64,
    /// Ingest throughput against the simulated clock.
    pub rows_per_sim_sec: f64,
    /// Admission-queue overload telemetry.
    pub shedding: crate::queue::SheddingReport,
    /// Serving-mode summary (also embedded in `degradation`).
    pub serving: ServingReport,
    /// End-of-run degradation report with serving fields attached.
    pub degradation: DegradationReport,
    /// FNV-1a 64 digest over the final posterior bits — the cheap
    /// bit-identity probe crash/restart tests compare.
    pub posterior_digest: String,
}

impl ToJson for ServeReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("batches", Json::arr(self.batches.iter().map(batch_stats_json))),
            (
                "latencies_ms",
                Json::Arr(self.latencies_ms.iter().map(|&l| Json::Num(l as f64)).collect()),
            ),
            ("rows_ingested", self.rows_ingested.to_json()),
            ("ticks", self.ticks.to_json()),
            ("sim_ms", Json::Num(self.sim_ms as f64)),
            ("rows_per_sim_sec", self.rows_per_sim_sec.to_json()),
            ("shedding", self.shedding.to_json()),
            ("serving", self.serving.to_json()),
            ("degradation", self.degradation.to_json()),
            ("posterior_digest", self.posterior_digest.to_json()),
        ])
    }
}

fn batch_stats_json(s: &cm_pipeline::BatchStats) -> Json {
    Json::obj([
        ("batch_index", s.batch_index.to_json()),
        ("rows", s.rows.to_json()),
        ("total_rows", s.total_rows.to_json()),
        ("coverage", s.coverage.to_json()),
        ("abstain_rate", s.abstain_rate.to_json()),
        ("mean_entropy", s.mean_entropy.to_json()),
        ("em_iterations", s.em_iterations.to_json()),
    ])
}

/// How a service run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Ran to completion (stream drained, queues empty).
    Completed {
        /// Deterministic run report.
        report: Box<ServeReport>,
        /// Out-of-band wall-clock accounting.
        timing: ServeTiming,
    },
    /// Crash injection fired (`crash_at`); resume off the last checkpoint.
    Crashed {
        /// Tick at which the injected crash fired.
        at_tick: usize,
    },
}

/// Deterministic ±25 % batch-size jitter keyed on the absolute stream
/// offset — stateless, so crash/restart cannot desynchronize it.
fn jittered_batch_rows(batch_rows: usize, seed: u64, row_offset: usize) -> usize {
    let spread = batch_rows / 4;
    if spread == 0 {
        return batch_rows.max(1);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C_0000 ^ (row_offset as u64));
    (batch_rows - spread + rng.gen_range(0..=2 * spread)).max(1)
}

/// Runs the incremental curation service to completion (or injected
/// crash). See the module docs for the tick loop.
///
/// # Errors
/// Propagates access-layer construction/restore errors, checkpoint
/// parse/version errors, and filesystem errors on the checkpoint path.
pub fn run(config: &ServeConfig, par: &ParConfig) -> CmResult<RunOutcome> {
    const LOC: &str = "serve::run";
    let total = Stopwatch::start();
    let mut timing = ServeTiming::default();
    let setup = Stopwatch::start();

    // Clean-path state, re-derived identically on every (re)start.
    let world = World::build(WorldConfig::new(config.task.clone(), config.seed));
    let ds = config.seed ^ 0xD1CE;
    let text = world.generate(ModalityKind::Text, config.task.n_text_labeled, ds ^ 0x1);
    let mut access = AccessLayer::new(
        &config.plan,
        config.policy.clone(),
        &world.service_descriptors(),
        config.seed,
    )?;
    let mut stream = world.stream(ModalityKind::Image, config.total_rows, ds ^ 0x2);

    // Arrival-dependent state: resumed from a checkpoint when one exists.
    // The store recovers either format (wire base + delta log, torn tails
    // truncated by checksum; or a legacy JSON whole-file checkpoint).
    let mut store = None;
    let mut existing = None;
    if let Some(path) = &config.checkpoint_path {
        let (s, cp) = CheckpointStore::open(
            path,
            config.checkpoint_format,
            config.compaction,
            world.schema(),
        )?;
        store = Some(s);
        existing = cp;
    }
    let (
        mut curator,
        mut queue,
        mut deferred,
        mut quarantine,
        mut telemetry,
        mut tick,
        mut rows_generated,
    );
    match existing {
        Some(cp) => {
            // Stream fast-forward: clean draws consume the same world-RNG
            // count as fault-injected ones, so discarding the already-
            // generated rows re-aligns the generation cursor; the access
            // state restore then re-aligns breaker/clock state.
            let mut ff = cp.rows_generated;
            while ff > 0 {
                let seg = stream.next_segment(ff).ok_or_else(|| {
                    CmError::new(ErrorKind::InvalidConfig, LOC, "checkpoint cursor past stream end")
                })?;
                ff -= seg.len();
            }
            access.restore_state(&cp.access)?;
            curator = IncrementalCurator::restore(
                &world,
                &text,
                config.incremental.clone(),
                cp.curator,
                par,
            );
            queue = AdmissionQueue::restore(
                config.queue.clone(),
                cp.pending.queue,
                cp.telemetry.shed.clone(),
            );
            deferred = cp.pending.deferred;
            quarantine = cp.pending.quarantine;
            telemetry = cp.telemetry;
            tick = cp.ticks;
            rows_generated = cp.rows_generated;
        }
        None => {
            curator = IncrementalCurator::new(&world, &text, config.incremental.clone());
            queue = AdmissionQueue::new(config.queue.clone());
            deferred = Vec::new();
            quarantine = Vec::new();
            telemetry = ServeTelemetry::default();
            tick = 0;
            rows_generated = 0;
        }
    }

    timing.setup = setup.elapsed();

    // Telemetry vector lengths at the last durable record: delta records
    // carry only what grew past these marks.
    let mut stats_durable = telemetry.batch_stats.len();
    let mut lat_durable = telemetry.latencies_ms.len();

    // Termination is structural (finite stream, one processed item per
    // tick, single bounded retry per quarantined batch); the hard cap is
    // a never-hang backstop for config mistakes.
    let max_ticks = 64 + 8 * (config.total_rows / config.batch_rows.max(1) + quarantine.len() + 8);
    while stream.remaining() > 0
        || !queue.is_empty()
        || !deferred.is_empty()
        || !quarantine.is_empty()
    {
        if tick >= max_ticks {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                LOC,
                format!("service failed to drain within {max_ticks} ticks"),
            ));
        }
        tick += 1;
        access.advance_clock_ms(config.inter_batch_ms);

        // Deferred batches re-offer ahead of new arrivals.
        for item in std::mem::take(&mut deferred) {
            if let Admission::Deferred(b) = queue.offer(item) {
                deferred.push(*b);
            }
        }
        // New arrivals.
        for _ in 0..config.arrivals_per_tick {
            if stream.remaining() == 0 {
                break;
            }
            let rows = jittered_batch_rows(config.batch_rows, config.seed, rows_generated);
            let gen = Stopwatch::start();
            let batch = stream.next_segment_via(rows, &mut access, rows_generated as u64)?;
            timing.generation += gen.elapsed();
            let Some(batch) = batch else { break };
            rows_generated += batch.len();
            let item = QueuedBatch { batch, arrival_ms: access.now_ms(), deferrals: 0 };
            if let Admission::Deferred(b) = queue.offer(item) {
                deferred.push(*b);
            }
        }

        // Process one unit of work: a due quarantine retry, else the
        // oldest queued batch.
        let mut ingested_this_tick = false;
        if let Some(pos) = quarantine.iter().position(|q| q.retry_tick <= tick) {
            let q = quarantine.remove(pos);
            let cur = Stopwatch::start();
            let preview = curator.preview_batch(&q.item.batch, par);
            timing.curation += cur.elapsed();
            let verdict = config.guards.evaluate(&preview, telemetry.last_entropy);
            if verdict.pass {
                ingest(&mut curator, &mut access, config, q.item, &mut telemetry, &mut timing, par);
                telemetry.recovered += 1;
                ingested_this_tick = true;
            } else {
                // Second strike: the batch is dropped permanently.
                telemetry.dropped += 1;
            }
        } else if let Some(item) = queue.pop() {
            let cur = Stopwatch::start();
            let preview = curator.preview_batch(&item.batch, par);
            timing.curation += cur.elapsed();
            let verdict = config.guards.evaluate(&preview, telemetry.last_entropy);
            if verdict.pass {
                ingest(&mut curator, &mut access, config, item, &mut telemetry, &mut timing, par);
                ingested_this_tick = true;
            } else {
                telemetry.quarantined += 1;
                quarantine.push(QuarantinedBatch {
                    item,
                    retry_tick: tick + config.guards.retry_after_ticks,
                    attempts: 1,
                    reasons: verdict.reasons,
                });
            }
        }

        // Crash injection fires after the k-th ingest, *before* this
        // tick's checkpoint: the resumed run replays the whole tick.
        if ingested_this_tick && config.crash_at == Some(telemetry.batch_stats.len()) {
            return Ok(RunOutcome::Crashed { at_tick: tick });
        }

        if let Some(store) = store.as_mut() {
            let cpw = Stopwatch::start();
            telemetry.shed = queue.report().clone();
            let pending = PendingWork {
                queue: queue.items().cloned().collect(),
                deferred: deferred.clone(),
                quarantine: quarantine.clone(),
            };
            // Steady state appends one O(batch) delta record; a full
            // O(pool) base is written only on a fresh file or when the
            // compaction policy folds the log back down. Both advance the
            // curator's durable marks.
            let (bytes_written, wrote_base) = if store.needs_base() {
                let cp = snapshot::capture(
                    tick,
                    rows_generated,
                    access.export_state(),
                    curator.export_state(),
                    pending,
                    telemetry.clone(),
                );
                (store.commit_base(&cp)?, true)
            } else {
                let delta = snapshot::capture_delta(
                    tick,
                    rows_generated,
                    access.export_state(),
                    curator.export_delta(),
                    pending,
                    &telemetry,
                    stats_durable,
                    lat_durable,
                );
                (store.commit_delta(&delta)?, false)
            };
            stats_durable = telemetry.batch_stats.len();
            lat_durable = telemetry.latencies_ms.len();
            let elapsed = cpw.elapsed();
            timing.checkpoint += elapsed;
            timing.checkpoint_bytes += bytes_written;
            timing.checkpoint_ticks.push(CheckpointTickCost {
                tick,
                elapsed,
                bytes_written,
                wrote_base,
            });
        }
    }

    telemetry.shed = queue.report().clone();
    let report = assemble_report(&curator, &access, config, &telemetry, tick);
    timing.total = total.elapsed();
    Ok(RunOutcome::Completed { report: Box::new(report), timing })
}

#[allow(clippy::too_many_arguments)]
fn ingest(
    curator: &mut IncrementalCurator,
    access: &mut AccessLayer,
    config: &ServeConfig,
    item: QueuedBatch,
    telemetry: &mut ServeTelemetry,
    timing: &mut ServeTiming,
    par: &ParConfig,
) {
    access.advance_clock_ms(config.process_ms);
    let cur = Stopwatch::start();
    let stats = curator.ingest_batch(&item.batch, par);
    timing.curation += cur.elapsed();
    telemetry.latencies_ms.push(access.now_ms().saturating_sub(item.arrival_ms));
    telemetry.last_entropy = Some(stats.mean_entropy);
    telemetry.batch_stats.push(stats);
}

fn assemble_report(
    curator: &IncrementalCurator,
    access: &AccessLayer,
    config: &ServeConfig,
    telemetry: &ServeTelemetry,
    ticks: usize,
) -> ServeReport {
    let shed = telemetry.shed.clone();
    let degraded = telemetry.quarantined > 0
        || telemetry.dropped > 0
        || shed.shed_batches > 0
        || shed.deferred > 0;
    let serving = ServingReport {
        mode: if degraded { "degraded" } else { "steady" }.to_owned(),
        batches_ingested: telemetry.batch_stats.len(),
        batches_quarantined: telemetry.quarantined,
        batches_recovered: telemetry.recovered,
        batches_dropped: telemetry.dropped,
        rows_shed: shed.shed_rows,
        deferrals: shed.deferred,
        queue_peak_depth: shed.peak_depth,
    };
    let summary = access.summary();
    let covered = curator.covered();
    let pool_coverage = if covered.is_empty() {
        0.0
    } else {
        covered.iter().filter(|&&c| c).count() as f64 / covered.len() as f64
    };
    let degradation = DegradationReport {
        fault_seed: if config.plan.is_enabled() { config.plan.seed } else { 0 },
        tripped_services: summary.tripped_services(),
        dropped_lfs: Vec::new(),
        pool_coverage,
        lf_abstain: Vec::new(),
        faults: access.is_enabled().then_some(summary),
        serving: Some(serving.clone()),
    };
    let sim_ms = access.now_ms();
    let rows_ingested = curator.n_rows();
    ServeReport {
        batches: telemetry.batch_stats.clone(),
        latencies_ms: telemetry.latencies_ms.clone(),
        rows_ingested,
        ticks,
        sim_ms,
        rows_per_sim_sec: if sim_ms == 0 {
            0.0
        } else {
            rows_ingested as f64 * 1000.0 / sim_ms as f64
        },
        shedding: shed,
        serving,
        degradation,
        posterior_digest: posterior_digest(curator.posteriors()),
    }
}

/// FNV-1a 64 over the little-endian bits of each posterior.
fn posterior_digest(posteriors: &[f64]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in posteriors {
        for b in p.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use cm_orgsim::TaskId;

    use super::*;

    fn small_config(seed: u64) -> ServeConfig {
        let task = TaskConfig::paper(TaskId::Ct2).scaled(0.02);
        let mut config = ServeConfig::new(task, seed);
        config.batch_rows = 40;
        config.incremental.curation.prop_max_seeds = 400;
        config.incremental.curation.mining.min_recall = 0.05;
        config
    }

    fn completed(outcome: RunOutcome) -> (Box<ServeReport>, ServeTiming) {
        match outcome {
            RunOutcome::Completed { report, timing } => (report, timing),
            RunOutcome::Crashed { at_tick } => panic!("unexpected crash at tick {at_tick}"),
        }
    }

    #[test]
    fn clean_run_ingests_every_row_in_steady_mode() {
        let config = small_config(11);
        let (report, _) = completed(run(&config, &ParConfig::serial()).unwrap());
        assert_eq!(report.rows_ingested, config.total_rows);
        assert_eq!(report.serving.mode, "steady");
        assert_eq!(report.shedding.shed_batches, 0);
        assert_eq!(report.latencies_ms.len(), report.batches.len());
        assert!(report.latencies_ms.iter().all(|&l| l >= config.process_ms));
        assert!(report.rows_per_sim_sec > 0.0);
    }

    #[test]
    fn serve_runs_are_thread_invariant() {
        let config = small_config(11);
        let (a, _) = completed(run(&config, &ParConfig::serial()).unwrap());
        let (b, _) = completed(run(&config, &ParConfig::threads(4)).unwrap());
        assert_eq!(a.to_json().to_string_pretty(), b.to_json().to_string_pretty());
    }

    #[test]
    fn overload_sheds_instead_of_growing_without_bound() {
        let mut config = small_config(7);
        // Many small batches, three arrivals per tick against one
        // processed: structurally overloaded. Guards are opened wide so
        // the row-conservation check sees only the backpressure path.
        config.batch_rows = 10;
        config.arrivals_per_tick = 3;
        config.queue.capacity = 3;
        config.queue.high_watermark = 2;
        config.guards.min_coverage = 0.0;
        config.guards.max_abstain = 1.0;
        config.guards.max_entropy_delta = f64::INFINITY;
        let (report, _) = completed(run(&config, &ParConfig::serial()).unwrap());
        assert!(report.shedding.shed_batches > 0, "structural overload must shed");
        assert_eq!(report.serving.mode, "degraded");
        assert!(report.shedding.peak_depth <= config.queue.capacity);
        assert_eq!(
            report.rows_ingested + report.shedding.shed_rows,
            config.total_rows,
            "every arrival row is either ingested or counted as shed"
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for offset in [0usize, 17, 400] {
            let a = jittered_batch_rows(60, 9, offset);
            let b = jittered_batch_rows(60, 9, offset);
            assert_eq!(a, b);
            assert!((45..=75).contains(&a), "{a} outside ±25 % of 60");
        }
    }
}
