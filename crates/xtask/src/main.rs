//! Workspace task runner: the two-layer static-analysis gate.
//!
//! - `cargo run -p xtask -- lint` — layer 1, the `cm-lint` span-aware
//!   semantic lint engine over library crates (see `lint.rs` and
//!   `crates/lint`); `--json` emits the machine report, `--self-test`
//!   runs the seeded corpus.
//! - `cargo run -p xtask -- validate` — layer 2, pre-execution pipeline
//!   checks over seed artifacts and every checked-in spec in `specs/`
//!   (see `validate.rs` and the `cm-check` crate); `--json` emits the
//!   machine report, `--self-test` replays the pinned spec corpus, and
//!   `--seeded-negatives` self-tests the artifact gate.

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;
mod validate;

fn workspace_root() -> PathBuf {
    // xtask always runs via `cargo run -p xtask`, so the manifest dir is
    // `<root>/crates/xtask`.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map_or(manifest.clone(), PathBuf::from)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- <lint [--json | --self-test] | \
         validate [--json | --self-test | --seeded-negatives]>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json = false;
            let mut self_test = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    "--self-test" => self_test = true,
                    other => {
                        eprintln!("lint: unknown argument {other:?}");
                        return usage();
                    }
                }
            }
            if self_test && json {
                eprintln!("lint: --self-test and --json are mutually exclusive");
                return usage();
            }
            if self_test {
                lint::self_test(&workspace_root())
            } else {
                lint::run(&workspace_root(), json)
            }
        }
        Some("validate") => {
            let mut json = false;
            let mut self_test = false;
            let mut negatives = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    "--self-test" => self_test = true,
                    "--seeded-negatives" => negatives = true,
                    other => {
                        eprintln!("validate: unknown argument {other:?}");
                        return usage();
                    }
                }
            }
            if usize::from(json) + usize::from(self_test) + usize::from(negatives) > 1 {
                eprintln!("validate: --json, --self-test, and --seeded-negatives are exclusive");
                return usage();
            }
            if self_test {
                validate::self_test(&workspace_root())
            } else if negatives {
                validate::seeded_negatives_gate()
            } else {
                validate::run(&workspace_root(), json)
            }
        }
        _ => usage(),
    }
}
