//! In-tree pseudo-random number generation.
//!
//! The workspace builds hermetically (no crates-io access), so instead of
//! the `rand` crate this module provides a small, deterministic generator
//! with the same seeding discipline the repository has always used:
//! `StdRng::seed_from_u64(seed)`. Benchmarks stay comparable across PRs
//! because every stream is a pure function of its `u64` seed.
//!
//! The generator is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, the standard recipe for expanding a 64-bit seed into a
//! 256-bit state without correlated lanes.

/// Uniform random source. Implemented by [`StdRng`]; generic code should
/// take `&mut impl Rng`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample: `f64`/`f32` in `[0, 1)`, or a full-width integer.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    ///
    /// Integer ranges use Lemire-style rejection so the result is unbiased;
    /// empty ranges return the start bound.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types that can be drawn uniformly from an [`Rng`]: floats in `[0, 1)`,
/// integers over their full width.
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait UniformRange {
    /// Element type of the range.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer in `[0, bound)` via Lemire's multiply-shift rejection;
/// returns 0 when `bound == 0`.
fn bounded_u64<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected sample in the biased zone: redraw.
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start >= end {
                    return start;
                }
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                (start as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                self.start + rng.gen::<$t>() * (self.end - self.start)
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + rng.gen::<$t>() * (end - start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// In-place uniform shuffling of slices (Fisher–Yates).
pub trait SliceRandom {
    /// Shuffles the slice in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// The workspace's standard deterministic generator: xoshiro256++ seeded
/// via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Expands a 64-bit seed into the full generator state (SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for &mut StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(1..=3);
            assert!((1..=3).contains(&b));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
        assert_eq!(rng.gen_range(5usize..5), 5);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
