//! The *common feature space* at the heart of the paper (§3).
//!
//! Organizational resources transform data points of any modality into
//! structured outputs — numeric values, multivalent categorical sets, or
//! pre-trained embeddings. This crate provides the shared vocabulary for the
//! whole pipeline:
//!
//! - [`FeatureValue`] / [`FeatureKind`] — the structured output types
//!   services produce;
//! - [`FeatureSchema`] / [`FeatureDef`] — which features exist, which of the
//!   paper's service groups (sets A–D, §6.2) they belong to, and whether they
//!   are *servable* at inference time (§2.3, §6.4);
//! - [`FeatureTable`] — a columnar store of feature vectors with explicit
//!   missingness (the modality gap means not every feature exists for every
//!   modality);
//! - [`DenseEncoder`] — one-hot / standardized densification so the model
//!   substrate sees plain matrices;
//! - [`similarity`] — Algorithm 1 graph weights used by label propagation;
//! - [`FrozenTable`] — compiled read-only columnar views (presence bitmaps
//!   plus borrowed contiguous columns) that the hot kernels — the
//!   [`PairKernel`] pair weights, Apriori support counting, LF vote fill —
//!   run against.

pub mod dense;
pub mod error;
pub mod frozen;
pub mod jsonio;
pub mod label;
pub mod schema;
pub mod similarity;
pub mod table;
pub mod value;
pub mod vocab;

pub use dense::{DenseEncoder, DenseLayout};
pub use error::{CmError, CmResult, ErrorKind};
pub use frozen::{Bitmap, FrozenColumn, FrozenTable};
pub use label::{Label, ModalityKind};
pub use schema::{FeatureDef, FeatureSchema, FeatureSet, ServingMode};
pub use similarity::{
    algorithm1_weight, normalized_similarity, DeviationAccumulator, PairKernel, ScaleAccumulator,
    SimilarityConfig,
};
pub use table::{Column, FeatureTable};
pub use value::{CatSet, FeatureKind, FeatureValue};
pub use vocab::Vocabulary;
