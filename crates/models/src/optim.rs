//! First-order optimizers over flat parameter slices.

/// A stateful first-order optimizer. One instance per parameter tensor.
pub trait Optimizer {
    /// Applies one update: `params -= f(grads)`.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);
}

/// SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an SGD optimizer for a tensor of `n` parameters.
    pub fn new(lr: f32, momentum: f32, n: usize) -> Self {
        Self { lr, momentum, velocity: vec![0.0; n] }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.velocity.len(), "sgd parameter count changed");
        assert_eq!(params.len(), grads.len(), "gradient length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
        } else {
            for ((p, v), &g) in params.iter_mut().zip(&mut self.velocity).zip(grads) {
                *v = self.momentum * *v + g;
                *p -= self.lr * *v;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer for `n` parameters with standard betas.
    pub fn new(lr: f32, n: usize) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "adam parameter count changed");
        assert_eq!(params.len(), grads.len(), "gradient length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, &g)) in params.iter_mut().zip(grads).enumerate() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and returns the final x.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 1);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.01, 0.0, 1);
        let mut heavy = Sgd::new(0.01, 0.9, 1);
        let x_plain = minimize(&mut plain, 50);
        let x_heavy = minimize(&mut heavy, 50);
        assert!((x_heavy - 3.0).abs() < (x_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3, 1);
        let x = minimize(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr * sign(grad).
        let mut opt = Adam::new(0.1, 1);
        let mut x = [0.0f32];
        opt.step(&mut x, &[5.0]);
        assert!((x[0] + 0.1).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn sgd_checks_lengths() {
        let mut opt = Sgd::new(0.1, 0.0, 2);
        let mut p = [0.0f32, 0.0];
        opt.step(&mut p, &[1.0]);
    }
}
