//! Regenerates the **§6.6 training-method comparison**: early fusion vs
//! intermediate fusion vs the adapted DeViSE, per task, plus the
//! "materialized CNN features" comparison — our service features vs the raw
//! pre-trained embedding under identical (weak) supervision.
//!
//! Expected shape (paper): early fusion wins — up to 1.22x (avg 1.08x) over
//! intermediate fusion and up to 5.52x (avg 2.21x) over DeViSE; service
//! features beat the raw embedding by up to 1.54x.
//!
//! Env: `CM_SCALE` (default 0.5), `CM_SEEDS` (default 3), `CM_TASK`,
//! `CM_JSON`.

use cm_bench::{env_scale, env_seeds, fmt_ratio, maybe_write_json, mean, task_selected, TaskRun};
use cm_featurespace::FeatureSet;
use cm_json::{Json, ToJson};
use cm_orgsim::TaskId;
use cm_pipeline::{curate, FusionStrategy, LabelSource, Scenario};

struct Row {
    task: String,
    early_auprc: f64,
    early_vs_intermediate: f64,
    early_vs_devise: f64,
    features_vs_raw_embedding: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("early_auprc", self.early_auprc.to_json()),
            ("early_vs_intermediate", self.early_vs_intermediate.to_json()),
            ("early_vs_devise", self.early_vs_devise.to_json()),
            ("features_vs_raw_embedding", self.features_vs_raw_embedding.to_json()),
        ])
    }
}

fn main() {
    let scale = env_scale(0.5);
    let seeds = env_seeds(3);
    let sets = FeatureSet::SHARED;
    println!("Fusion comparison (§6.6) (scale {scale}, {} seed(s))", seeds.len());
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>14}",
        "Task", "early", "vs interm.", "vs DeViSE", "feat vs raw"
    );

    let mut rows = Vec::new();
    for id in TaskId::ALL {
        if !task_selected(id) {
            continue;
        }
        let mut early_v = Vec::new();
        let mut vs_int = Vec::new();
        let mut vs_dev = Vec::new();
        let mut feat_raw = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(id, scale, seed, Some((4_000.0 * scale) as usize));
            let runner = run.runner();
            let curation = curate(&run.data, &run.curation_config(seed));

            let mut early = Scenario::cross_modal(&sets);
            early.strategy = FusionStrategy::Early;
            let mut inter = Scenario::cross_modal(&sets);
            inter.strategy = FusionStrategy::Intermediate;
            inter.name = "intermediate".into();
            let mut devise = Scenario::cross_modal(&sets);
            devise.strategy = FusionStrategy::DeVise;
            devise.name = "devise".into();

            let e = runner.run(&early, Some(&curation)).unwrap().auprc;
            let i = runner.run(&inter, Some(&curation)).unwrap().auprc;
            let d = runner.run(&devise, Some(&curation)).unwrap().auprc;
            early_v.push(e);
            if i > 1e-9 {
                vs_int.push(e / i);
            }
            if d > 1e-9 {
                vs_dev.push(e / d);
            }

            // Features vs raw embedding, same weak labels: image-only with
            // shared feature sets vs image-only with only the
            // modality-specific features (embedding and friends).
            let feats = runner.run(&Scenario::image_only(&sets), Some(&curation)).unwrap().auprc;
            let raw = Scenario {
                name: "raw embedding (weak)".into(),
                text_sets: Vec::new(),
                image_sets: Vec::new(),
                image_labels: Some(LabelSource::Weak),
                include_modality_specific: true,
                strategy: FusionStrategy::Early,
            };
            let raw_ap = runner.run(&raw, Some(&curation)).unwrap().auprc;
            if raw_ap > 1e-9 {
                feat_raw.push(feats / raw_ap);
            }
        }
        let row = Row {
            task: id.name().to_owned(),
            early_auprc: mean(&early_v),
            early_vs_intermediate: mean(&vs_int),
            early_vs_devise: mean(&vs_dev),
            features_vs_raw_embedding: mean(&feat_raw),
        };
        println!(
            "{:<6} {:>10.4} {:>12} {:>12} {:>14}",
            row.task,
            row.early_auprc,
            fmt_ratio(row.early_vs_intermediate),
            fmt_ratio(row.early_vs_devise),
            fmt_ratio(row.features_vs_raw_embedding),
        );
        rows.push(row);
    }
    if !rows.is_empty() {
        let avg_i = mean(&rows.iter().map(|r| r.early_vs_intermediate).collect::<Vec<_>>());
        let avg_d = mean(&rows.iter().map(|r| r.early_vs_devise).collect::<Vec<_>>());
        println!("\nearly fusion vs intermediate: avg {}", fmt_ratio(avg_i));
        println!("early fusion vs DeViSE:       avg {}", fmt_ratio(avg_d));
    }
    maybe_write_json(&rows);
}
