//! Turning propagation scores into a labeling function (§4.4): "this score
//! is used to construct a threshold-based LF", with the threshold tuned on
//! the labeled development set of existing modalities.

use cm_featurespace::Label;

/// Thresholds tuned on a dev set, with the achieved dev metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedThresholds {
    /// Scores at or above this vote positive.
    pub positive: f64,
    /// Scores at or below this vote negative.
    pub negative: f64,
    /// Dev precision of the positive side.
    pub positive_precision: f64,
    /// Dev recall of the positive side.
    pub positive_recall: f64,
    /// Dev fraction of true positives wrongly caught by the negative side.
    pub negative_leakage: f64,
}

/// Tunes positive/negative thresholds over `(score, label)` dev pairs.
///
/// The positive threshold maximizes recall subject to `min_precision`; the
/// negative threshold is the largest score such that at most
/// `max_negative_leakage` of true positives fall at or below it. Returns
/// `None` when the dev set has no positives or no scores.
pub fn tune_score_thresholds(
    scores: &[f64],
    labels: &[Label],
    min_precision: f64,
    max_negative_leakage: f64,
) -> Option<TunedThresholds> {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let n_pos = labels.iter().filter(|l| l.is_positive()).count();
    if scores.is_empty() || n_pos == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    // Sweep descending: positive threshold.
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut best: Option<(f64, f64, f64)> = None; // (threshold, precision, recall)
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume the whole tie group.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]].is_positive() {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / n_pos as f64;
        if precision >= min_precision {
            match best {
                Some((_, _, r)) if recall <= r => {}
                _ => best = Some((threshold, precision, recall)),
            }
        }
    }
    let (positive, positive_precision, positive_recall) = best?;

    // Sweep ascending: negative threshold.
    let mut pos_below = 0usize;
    let mut negative = f64::NEG_INFINITY;
    let mut negative_leakage = 0.0;
    let mut j = order.len();
    while j > 0 {
        // Walk ascending by consuming tie groups from the back.
        let group_end = j;
        let threshold = scores[order[j - 1]];
        while j > 0 && scores[order[j - 1]] == threshold {
            j -= 1;
        }
        let group_pos = (j..group_end).filter(|&k| labels[order[k]].is_positive()).count();
        let leakage = (pos_below + group_pos) as f64 / n_pos as f64;
        if leakage <= max_negative_leakage && threshold < positive {
            negative = threshold;
            negative_leakage = leakage;
            pos_below += group_pos;
        } else {
            break;
        }
    }
    if negative == f64::NEG_INFINITY {
        // No admissible negative threshold: vote negative on nothing by
        // placing the threshold below every score.
        negative = scores.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY) - 1.0;
        negative_leakage = 0.0;
    }
    Some(TunedThresholds {
        positive,
        negative,
        positive_precision,
        positive_recall,
        negative_leakage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(spec: &[bool]) -> Vec<Label> {
        spec.iter().map(|&p| if p { Label::Positive } else { Label::Negative }).collect()
    }

    #[test]
    fn separable_scores_get_clean_thresholds() {
        let scores = [0.9, 0.8, 0.85, 0.1, 0.2, 0.15];
        let l = labels(&[true, true, true, false, false, false]);
        let t = tune_score_thresholds(&scores, &l, 0.95, 0.0).unwrap();
        assert!(t.positive <= 0.8 && t.positive > 0.2);
        assert_eq!(t.positive_precision, 1.0);
        assert_eq!(t.positive_recall, 1.0);
        assert!(t.negative >= 0.2 && t.negative < t.positive);
        assert_eq!(t.negative_leakage, 0.0);
    }

    #[test]
    fn precision_floor_is_respected() {
        // One high-scoring negative poisons the top.
        let scores = [0.95, 0.9, 0.8, 0.1];
        let l = labels(&[false, true, true, false]);
        let t = tune_score_thresholds(&scores, &l, 0.6, 0.0).unwrap();
        // Taking all three top scores gives precision 2/3 >= 0.6.
        assert!(t.positive <= 0.8);
        assert!(t.positive_precision >= 0.6);
        // A 0.9 floor is unreachable except... 2/3 < 0.9, 1/2 < 0.9, 0/1 —
        // no threshold qualifies.
        assert!(tune_score_thresholds(&scores, &l, 0.9, 0.0).is_none());
    }

    #[test]
    fn leakage_budget_moves_negative_threshold() {
        let scores = [0.9, 0.5, 0.05, 0.04, 0.03];
        let l = labels(&[true, true, false, true, false]);
        // With zero leakage the negative threshold must sit below 0.04.
        let strict = tune_score_thresholds(&scores, &l, 0.9, 0.0).unwrap();
        assert!(strict.negative < 0.04);
        // Allowing half the positives to leak admits 0.05.
        let loose = tune_score_thresholds(&scores, &l, 0.9, 0.5).unwrap();
        assert!(loose.negative >= 0.04);
        assert!(loose.negative_leakage <= 0.5);
    }

    #[test]
    fn no_positives_yields_none() {
        assert!(tune_score_thresholds(&[0.5], &labels(&[false]), 0.5, 0.0).is_none());
        assert!(tune_score_thresholds(&[], &[], 0.5, 0.0).is_none());
    }

    #[test]
    fn tied_scores_are_handled_as_groups() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let l = labels(&[true, true, false, false]);
        // All ties: the only threshold is 0.5 with precision 0.5.
        assert!(tune_score_thresholds(&scores, &l, 0.6, 0.0).is_none());
        let t = tune_score_thresholds(&scores, &l, 0.5, 0.0).unwrap();
        assert_eq!(t.positive, 0.5);
        // Negative threshold cannot sit at 0.5 (would swallow positives);
        // it must fall below all scores.
        assert!(t.negative < 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_input() {
        tune_score_thresholds(&[0.5], &[], 0.5, 0.0);
    }
}
