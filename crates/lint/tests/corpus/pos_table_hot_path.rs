//@ path: crates/labelmodel/src/demo.rs
// Seeded positive: row-wise table access inside a hot-path crate.

pub fn f(table: &Table) -> usize {
    let r = table.row(3);
    let v = table.value(r, 0);
    let _ = self.table.row(1);
    v
}
