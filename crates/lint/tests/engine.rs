//! Engine behavior tests: every guarantee of the old `xtask lint` scanner
//! (ported from its unit suite when the scanner was replaced by cm-lint),
//! plus the semantics only the new engine has — waiver auditing, path
//! scoping inside `lint_source`, and the deterministic JSON report.

use std::path::Path;

use cm_lint::report::report_json;
use cm_lint::{all_rules, is_exempt_path, lint_source, LintConfig, STALE_WAIVER_RULE};

/// Rules reported for `source` under the given workspace-relative path.
fn rules_at(source: &str, path: &str) -> Vec<&'static str> {
    lint_source(source, Path::new(path), &LintConfig::repo_default())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

/// Rules reported under a neutral (non-hot-path, non-par) library path.
fn rules_hit(source: &str) -> Vec<&'static str> {
    rules_at(source, "crates/demo/src/lib.rs")
}

#[test]
fn flags_each_banned_token() {
    assert_eq!(rules_hit("let x = y.unwrap();"), vec!["unwrap"]);
    assert_eq!(rules_hit("let x = y.expect(\"boom\");"), vec!["expect"]);
    assert_eq!(rules_hit("panic!(\"no\");"), vec!["panic"]);
    assert_eq!(rules_hit("todo!()"), vec!["todo"]);
    assert_eq!(rules_hit("unimplemented!()"), vec!["unimplemented"]);
    assert_eq!(rules_hit("unsafe { *p }"), vec!["unsafe"]);
    assert_eq!(rules_hit("dbg!(x);"), vec!["dbg"]);
    assert_eq!(rules_hit("println!(\"hi\");"), vec!["println"]);
    assert_eq!(rules_hit("std::thread::spawn(move || work());"), vec!["thread-spawn"]);
    assert_eq!(rules_hit("thread::scope(|s| { s.spawn(f); });"), vec!["thread-scope"]);
    assert_eq!(rules_hit("let t = std::time::Instant::now();"), vec!["instant-now"]);
    assert_eq!(rules_hit("let t = Instant::now();"), vec!["instant-now"]);
    assert_eq!(rules_hit("let t = SystemTime::now();"), vec!["systemtime-now"]);
}

#[test]
fn fallible_siblings_do_not_match() {
    assert!(rules_hit("let x = y.unwrap_or(0);").is_empty());
    assert!(rules_hit("let x = y.unwrap_or_else(|| 0);").is_empty());
    assert!(rules_hit("let x = y.unwrap_or_default();").is_empty());
    assert!(rules_hit("let e = y.unwrap_err();").is_empty());
    assert!(rules_hit("let e = y.expect_err(\"want err\");").is_empty());
    assert!(rules_hit("eprintln!(\"diagnostic\");").is_empty());
    assert!(rules_hit("core::panicking();").is_empty());
    assert!(rules_hit("my_thread::spawn(f);").is_empty());
    assert!(rules_hit("let spawned = pool.spawn(f);").is_empty());
    assert!(rules_hit("let t = MyInstant::now_ish();").is_empty());
}

#[test]
fn strings_and_comments_do_not_match() {
    assert!(rules_hit("let s = \"call .unwrap() later\";").is_empty());
    assert!(rules_hit("// the docs mention panic!(...) here").is_empty());
    assert!(rules_hit("let url = \"https://x\"; // .expect( nothing").is_empty());
}

#[test]
fn allow_pragma_waives_same_line_and_next_line() {
    assert!(rules_hit("let x = y.unwrap(); // lint: allow(unwrap)").is_empty());
    assert!(rules_hit("// lint: allow(panic)\npanic!(\"invariant\");").is_empty());
    assert!(rules_hit("let t = Instant::now(); // lint: allow(instant-now)").is_empty());
    assert!(rules_hit("// lint: allow(systemtime-now)\nlet t = SystemTime::now();").is_empty());
    assert!(rules_hit("std::thread::spawn(f); // lint: allow(thread-spawn)").is_empty());
    // The waiver only covers one line: the second unwrap still reports.
    assert_eq!(
        rules_hit("// lint: allow(unwrap)\nlet a = b.unwrap();\nlet c = d.unwrap();"),
        vec!["unwrap"]
    );
}

#[test]
fn waiver_is_rule_specific_and_audited() {
    // A pragma for the wrong rule waives nothing: the real finding stays
    // AND the useless waiver is reported stale.
    let findings = lint_source(
        "let x = y.unwrap(); // lint: allow(expect)",
        Path::new("crates/demo/src/lib.rs"),
        &LintConfig::repo_default(),
    );
    let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"unwrap"));
    assert!(rules.contains(&STALE_WAIVER_RULE));
}

#[test]
fn stale_waiver_shapes() {
    // Suppresses nothing on its target line → stale.
    assert_eq!(rules_hit("// lint: allow(panic)\nlet x = 1;"), vec![STALE_WAIVER_RULE]);
    // Trailing pragma with no code after it waives nothing → stale.
    assert_eq!(rules_hit("let x = 1;\n// lint: allow(unwrap)"), vec![STALE_WAIVER_RULE]);
    // Multi-rule pragma: each listed rule is audited independently.
    let findings = lint_source(
        "// lint: allow(unwrap, panic)\nlet x = y.unwrap();",
        Path::new("crates/demo/src/lib.rs"),
        &LintConfig::repo_default(),
    );
    let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![STALE_WAIVER_RULE], "the panic half is stale, the unwrap half earns");
}

#[test]
fn pragmas_inside_test_regions_are_not_audited() {
    let source = "\
pub fn lib() {}

#[cfg(test)]
mod tests {
    // lint: allow(unwrap)
    fn helper() {}
}
";
    assert!(rules_hit(source).is_empty());
}

#[test]
fn cfg_test_blocks_are_exempt() {
    let source = "\
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = Some(1).unwrap();
        panic!(\"fine in tests\");
    }
}

pub fn after_tests(v: Option<u32>) -> u32 {
    v.unwrap()
}
";
    let findings =
        lint_source(source, Path::new("crates/demo/src/lib.rs"), &LintConfig::repo_default());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "unwrap");
    assert_eq!(findings[0].line, 13);
}

#[test]
fn table_row_access_is_flagged_and_waivable() {
    let hot = "crates/mining/src/apriori.rs";
    assert_eq!(rules_at("let r = table.row(i);", hot), vec!["table-row"]);
    assert_eq!(rules_at("let v = table.value(r, c);", hot), vec!["table-value"]);
    assert_eq!(rules_at("let r = self.table.row(i);", hot), vec!["table-row"]);
    // Boundary checks: different receiver, different method, or a
    // call-producing receiver never match.
    assert!(rules_at("let r = ftable.row(i);", hot).is_empty());
    assert!(rules_at("let r = table.rows();", hot).is_empty());
    assert!(rules_at("let r = frozen.table().row(i);", hot).is_empty());
    assert!(rules_at("let r = table.row_count;", hot).is_empty());
    // And the pragma waives it in place.
    assert!(rules_at("let r = table.row(i); // lint: allow(table-row)", hot).is_empty());
}

#[test]
fn path_scoping_inside_lint_source() {
    // table-* rules are off outside the hot-path crates.
    assert!(rules_at("let r = table.row(i);", "crates/orgsim/src/dataset.rs").is_empty());
    // The threading bans are off inside crates/par.
    assert!(rules_at("std::thread::spawn(f);", "crates/par/src/lib.rs").is_empty());
    assert!(rules_at("std::thread::scope(|s| {});", "crates/par/src/lib.rs").is_empty());
    // …but everything else still applies there.
    assert_eq!(rules_at("let x = y.unwrap();", "crates/par/src/lib.rs"), vec!["unwrap"]);
}

#[test]
fn exempt_paths() {
    assert!(is_exempt_path(Path::new("crates/foo/tests/properties.rs")));
    assert!(is_exempt_path(Path::new("crates/foo/benches/b.rs")));
    assert!(is_exempt_path(Path::new("crates/foo/src/bin/tool.rs")));
    assert!(is_exempt_path(Path::new("examples/quickstart.rs")));
    assert!(!is_exempt_path(Path::new("crates/foo/src/lib.rs")));
    assert!(!is_exempt_path(Path::new("crates/foo/src/inner/mod.rs")));
}

#[test]
fn seeded_violation_fixture_is_fully_caught() {
    let source = "\
pub fn f(v: Option<u32>) -> u32 {
    println!(\"starting\");
    dbg!(&v);
    let w = v.unwrap();
    let x = v.expect(\"must exist\");
    if w != x { panic!(\"mismatch\") }
    unsafe { std::hint::unreachable_unchecked() }
    todo!();
    unimplemented!()
}
";
    let mut rules = rules_hit(source);
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec!["dbg", "expect", "panic", "println", "todo", "unimplemented", "unsafe", "unwrap"]
    );
}

#[test]
fn nondet_iteration_positive_and_negative() {
    let pos = "\
use std::collections::HashMap;
pub fn f(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
";
    assert_eq!(rules_hit(pos), vec!["nondet-iteration"]);
    // Lookups and len are order-free; BTreeMap is ordered; a Vec of maps
    // iterates the Vec.
    let neg = "\
use std::collections::{BTreeMap, HashMap};
pub fn g(m: &HashMap<u32, u32>, b: &BTreeMap<u32, u32>, v: &[HashMap<u32, u32>]) -> u32 {
    let x = m.get(&1).copied().unwrap_or(0) + m.len() as u32;
    let y: u32 = b.values().sum();
    let z = v.iter().count() as u32;
    x + y + z
}
";
    assert!(rules_hit(neg).is_empty());
}

#[test]
fn float_ordering_positive_and_negative() {
    assert_eq!(
        rules_hit("v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal));"),
        vec!["float-ordering"]
    );
    assert_eq!(
        rules_hit("let m = xs.iter().copied().fold(0.0, f64::max);"),
        vec!["float-ordering"]
    );
    assert!(rules_hit("v.sort_by(|a, b| a.total_cmp(b));").is_empty());
    assert!(rules_hit("let m = f64::max(a, b);").is_empty(), "direct two-arg max is total");
    assert!(rules_hit("let m = xs.iter().copied().fold(0, i64::max);").is_empty());
}

#[test]
fn findings_and_json_report_are_deterministic() {
    let source = "let a = b.unwrap();\nlet c = d.expect(\"x\"); dbg!(c);";
    let path = Path::new("crates/demo/src/lib.rs");
    let cfg = LintConfig::repo_default();
    let findings = lint_source(source, path, &cfg);
    let positions: Vec<_> = findings.iter().map(|f| (f.line, f.col)).collect();
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    assert_eq!(positions, sorted, "findings are ordered by position");
    // The report is byte-identical across runs and carries the counts.
    let a = report_json(&findings, 1).to_string_pretty();
    let b = report_json(&findings, 1).to_string_pretty();
    assert_eq!(a, b);
    assert!(a.contains("\"finding_count\": 3"));
    assert!(a.contains("\"files_scanned\": 1"));
    assert!(a.contains("\"tool\": \"cm-lint\""));
}

#[test]
fn all_rules_is_complete_and_stable() {
    let rules = all_rules();
    for r in ["unwrap", "thread-spawn", "table-row", "nondet-iteration", "float-ordering"] {
        assert!(rules.contains(&r), "missing {r}");
    }
    assert!(rules.contains(&STALE_WAIVER_RULE));
    let mut dedup = rules.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), rules.len(), "no duplicate rule names");
}
