//! Evaluation metrics (paper §6.3).
//!
//! The paper's primary offline metric is the area under the precision-recall
//! curve (AUPRC), reported *relative* to a baseline fully supervised model
//! trained on pre-trained image embeddings. This crate provides:
//!
//! - [`pr`] — PR curves and average-precision AUPRC with tie handling;
//! - [`metrics`] — thresholded precision/recall/F1/accuracy and ROC-AUC;
//! - [`bootstrap`] — seeded bootstrap confidence intervals for AUPRC;
//! - [`crossover`] — the Figure 5 machinery: finding how many hand-labeled
//!   examples a fully supervised model needs to match the cross-modal
//!   pipeline.

pub mod bootstrap;
pub mod calibration;
pub mod crossover;
pub mod metrics;
pub mod pr;
pub mod sampling;

pub use bootstrap::{bootstrap_auprc_ci, bootstrap_auprc_ci_with};
pub use calibration::{expected_calibration_error, reliability_curve, ReliabilityBin};
pub use crossover::{find_crossover, CrossoverSeries};
pub use metrics::{roc_auc, BinaryMetrics};
pub use pr::{auprc, pr_curve, PrPoint};
pub use sampling::{estimate_live_metrics, LiveEstimate};
