//! Shard sizing, the memory budget, and the accounting tracker.

use cm_featurespace::{CmError, CmResult, ErrorKind};

/// Default segment size (rows) when `CM_SHARD_ROWS` is unset.
pub const DEFAULT_SHARD_ROWS: usize = 16_384;

/// Default memory budget (bytes) when `CM_MEM_BUDGET` is unset: 512 MiB.
pub const DEFAULT_MEM_BUDGET: usize = 512 << 20;

/// An explicit cap on bytes the streaming curation driver may hold
/// resident at once. Parsed from `CM_MEM_BUDGET` with optional binary
/// size suffixes (`k`/`m`/`g`, case-insensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBudget {
    bytes: usize,
}

impl Default for MemBudget {
    fn default() -> Self {
        Self { bytes: DEFAULT_MEM_BUDGET }
    }
}

impl MemBudget {
    /// A budget of exactly `bytes`.
    pub fn bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// The budget in bytes.
    pub fn limit(&self) -> usize {
        self.bytes
    }

    /// Reads `CM_MEM_BUDGET`, falling back to [`DEFAULT_MEM_BUDGET`].
    pub fn from_env() -> CmResult<Self> {
        match std::env::var("CM_MEM_BUDGET") {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(Self::default()),
        }
    }

    /// Parses a budget spec: a positive integer with an optional `k`, `m`,
    /// or `g` binary suffix (`"512m"`, `"2G"`, `"1048576"`).
    pub fn parse(spec: &str) -> CmResult<Self> {
        let s = spec.trim();
        let (digits, mult) = match s.char_indices().last() {
            Some((i, c)) if c.eq_ignore_ascii_case(&'k') => (&s[..i], 1usize << 10),
            Some((i, c)) if c.eq_ignore_ascii_case(&'m') => (&s[..i], 1usize << 20),
            Some((i, c)) if c.eq_ignore_ascii_case(&'g') => (&s[..i], 1usize << 30),
            _ => (s, 1usize),
        };
        let value: usize = digits.trim().parse().map_err(|_| {
            CmError::new(
                ErrorKind::InvalidConfig,
                "MemBudget::parse",
                format!("CM_MEM_BUDGET {spec:?} is not a size (want e.g. 512m, 2g, 1048576)"),
            )
        })?;
        let bytes = value.checked_mul(mult).ok_or_else(|| {
            CmError::new(
                ErrorKind::InvalidConfig,
                "MemBudget::parse",
                format!("CM_MEM_BUDGET {spec:?} overflows usize"),
            )
        })?;
        if bytes == 0 {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                "MemBudget::parse",
                "CM_MEM_BUDGET must be positive",
            ));
        }
        Ok(Self { bytes })
    }
}

/// Sharding knobs for the streaming curation driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Rows per streamed segment (`CM_SHARD_ROWS`; always at least 1).
    pub segment_rows: usize,
    /// Resident-byte cap (`CM_MEM_BUDGET`).
    pub budget: MemBudget,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self { segment_rows: DEFAULT_SHARD_ROWS, budget: MemBudget::default() }
    }
}

impl ShardConfig {
    /// A config with an explicit segment size and the default budget.
    pub fn with_segment_rows(segment_rows: usize) -> Self {
        Self { segment_rows: segment_rows.max(1), budget: MemBudget::default() }
    }

    /// Reads `CM_SHARD_ROWS` and `CM_MEM_BUDGET`, with defaults.
    pub fn from_env() -> CmResult<Self> {
        let segment_rows = match std::env::var("CM_SHARD_ROWS") {
            Ok(v) => v.trim().parse::<usize>().map_err(|_| {
                CmError::new(
                    ErrorKind::InvalidConfig,
                    "ShardConfig::from_env",
                    format!("CM_SHARD_ROWS {v:?} is not a row count"),
                )
            })?,
            Err(_) => DEFAULT_SHARD_ROWS,
        };
        if segment_rows == 0 {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                "ShardConfig::from_env",
                "CM_SHARD_ROWS must be positive",
            ));
        }
        Ok(Self { segment_rows, budget: MemBudget::from_env()? })
    }
}

/// Charge/release accounting against a [`MemBudget`].
///
/// Every allocation the streaming driver holds (segment tables, vote
/// buffers, item bitsets, the anchor table, posteriors, the propagation
/// graph) is charged here before use and released when dropped; a charge
/// that would push the resident total past the budget fails instead of
/// silently exceeding it, so a successful run **proves** `peak <= budget`.
#[derive(Debug, Clone)]
pub struct MemTracker {
    budget: usize,
    current: usize,
    peak: usize,
}

impl MemTracker {
    /// A tracker enforcing `budget`.
    pub fn new(budget: MemBudget) -> Self {
        Self { budget: budget.limit(), current: 0, peak: 0 }
    }

    /// Charges `bytes` held resident for `what`. Fails (leaving the
    /// accounting unchanged) when the charge would exceed the budget.
    pub fn charge(&mut self, bytes: usize, what: &str) -> CmResult<()> {
        let next = self.current.saturating_add(bytes);
        if next > self.budget {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                "MemTracker::charge",
                format!(
                    "memory budget exceeded: holding {} + {bytes} for {what} > CM_MEM_BUDGET {}",
                    self.current, self.budget
                ),
            ));
        }
        self.current = next;
        self.peak = self.peak.max(next);
        Ok(())
    }

    /// Releases `bytes` previously charged.
    pub fn release(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Bytes currently charged.
    pub fn current(&self) -> usize {
        self.current
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The enforced budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_suffixes() {
        assert_eq!(MemBudget::parse("1024").unwrap().limit(), 1024);
        assert_eq!(MemBudget::parse("4k").unwrap().limit(), 4096);
        assert_eq!(MemBudget::parse("512M").unwrap().limit(), 512 << 20);
        assert_eq!(MemBudget::parse(" 2g ").unwrap().limit(), 2 << 30);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "12q", "-5", "0", "m", "1.5g"] {
            assert!(MemBudget::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn tracker_tracks_peak_and_enforces_budget() {
        let mut t = MemTracker::new(MemBudget::bytes(100));
        t.charge(60, "a").unwrap();
        t.charge(30, "b").unwrap();
        assert_eq!(t.current(), 90);
        assert_eq!(t.peak(), 90);
        t.release(50);
        assert_eq!(t.current(), 40);
        assert_eq!(t.peak(), 90);
        // Over-budget charge fails and leaves accounting unchanged.
        assert!(t.charge(61, "c").is_err());
        assert_eq!(t.current(), 40);
        assert_eq!(t.peak(), 90);
        t.charge(60, "d").unwrap();
        assert_eq!(t.peak(), 100);
        assert!(t.peak() <= t.budget());
    }

    #[test]
    fn shard_config_default_matches_knob_defaults() {
        let cfg = ShardConfig::default();
        assert_eq!(cfg.segment_rows, DEFAULT_SHARD_ROWS);
        assert_eq!(cfg.budget.limit(), DEFAULT_MEM_BUDGET);
        assert_eq!(ShardConfig::with_segment_rows(0).segment_rows, 1);
    }
}
