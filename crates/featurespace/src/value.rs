//! Feature values and kinds.

/// The kind of a feature, fixed by the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// A quantitative value (aggregate statistic, count, score).
    Numeric,
    /// A multivalent categorical value: a *set* of category ids drawn from a
    /// per-feature vocabulary (e.g. the objects detected in an image).
    Categorical,
    /// A fixed-dimension dense embedding (e.g. a pre-trained image
    /// embedding). The dimension is part of the schema.
    Embedding {
        /// Embedding width.
        dim: usize,
    },
}

/// A sorted, deduplicated set of category ids.
///
/// Multivalent categorical features (14 of the paper's 15 services emit
/// these) are stored as sorted `u32` sets so Jaccard similarity and itemset
/// mining run over them with merge-style passes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct CatSet(Vec<u32>);

impl CatSet {
    /// Empty set.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Builds a set from arbitrary ids (sorted and deduplicated).
    pub fn from_ids(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self(ids)
    }

    /// A single-element set.
    pub fn single(id: u32) -> Self {
        Self(vec![id])
    }

    /// The sorted ids.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.0
    }

    /// Number of categories present.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search over the sorted ids).
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// Inserts an id, keeping sortedness; no-op if already present.
    pub fn insert(&mut self, id: u32) {
        if let Err(pos) = self.0.binary_search(&id) {
            self.0.insert(pos, id);
        }
    }

    /// Size of the intersection with `other` (merge pass, O(n+m)).
    pub fn intersection_len(&self, other: &CatSet) -> usize {
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|`; two empty sets are defined to
    /// be identical (1.0).
    pub fn jaccard(&self, other: &CatSet) -> f64 {
        let inter = self.intersection_len(other);
        let union = self.0.len() + other.0.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Iterates over the ids.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }
}

impl FromIterator<u32> for CatSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_ids(iter.into_iter().collect())
    }
}

/// A single feature value as produced by an organizational resource.
///
/// `Missing` is first-class: the modality gap means a service may not apply
/// to a data point at all (e.g. word count for an image post).
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureValue {
    /// Quantitative value.
    Numeric(f64),
    /// Multivalent categorical set.
    Categorical(CatSet),
    /// Dense embedding.
    Embedding(Vec<f32>),
    /// The feature does not exist for this data point.
    Missing,
}

impl FeatureValue {
    /// The kind this value conforms to, or `None` for `Missing` (which
    /// conforms to every kind).
    pub fn kind(&self) -> Option<FeatureKind> {
        match self {
            FeatureValue::Numeric(_) => Some(FeatureKind::Numeric),
            FeatureValue::Categorical(_) => Some(FeatureKind::Categorical),
            FeatureValue::Embedding(e) => Some(FeatureKind::Embedding { dim: e.len() }),
            FeatureValue::Missing => None,
        }
    }

    /// Whether this value is `Missing`.
    pub fn is_missing(&self) -> bool {
        matches!(self, FeatureValue::Missing)
    }

    /// The numeric payload, if any.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            FeatureValue::Numeric(v) => Some(*v),
            _ => None,
        }
    }

    /// The categorical payload, if any.
    pub fn as_categorical(&self) -> Option<&CatSet> {
        match self {
            FeatureValue::Categorical(s) => Some(s),
            _ => None,
        }
    }

    /// The embedding payload, if any.
    pub fn as_embedding(&self) -> Option<&[f32]> {
        match self {
            FeatureValue::Embedding(e) => Some(e),
            _ => None,
        }
    }

    /// Whether every numeric component is finite. `Missing` is finite by
    /// definition — it is the sanctioned sentinel for "no value"; NaN/Inf
    /// payloads are never legitimate and are rejected at table ingestion.
    pub fn is_finite(&self) -> bool {
        match self {
            FeatureValue::Numeric(v) => v.is_finite(),
            FeatureValue::Embedding(e) => e.iter().all(|x| x.is_finite()),
            FeatureValue::Categorical(_) | FeatureValue::Missing => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catset_sorts_and_dedups() {
        let s = CatSet::from_ids(vec![3, 1, 3, 2, 1]);
        assert_eq!(s.ids(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn catset_contains_and_insert() {
        let mut s = CatSet::from_ids(vec![5, 10]);
        assert!(s.contains(5));
        assert!(!s.contains(7));
        s.insert(7);
        assert_eq!(s.ids(), &[5, 7, 10]);
        s.insert(7);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn jaccard_identical_disjoint_partial() {
        let a = CatSet::from_ids(vec![1, 2, 3]);
        let b = CatSet::from_ids(vec![1, 2, 3]);
        let c = CatSet::from_ids(vec![4, 5]);
        let d = CatSet::from_ids(vec![2, 3, 4]);
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.jaccard(&c), 0.0);
        assert!((a.jaccard(&d) - 0.5).abs() < 1e-12); // |{2,3}| / |{1,2,3,4}|
    }

    #[test]
    fn jaccard_of_empty_sets_is_one() {
        assert_eq!(CatSet::new().jaccard(&CatSet::new()), 1.0);
        assert_eq!(CatSet::new().jaccard(&CatSet::single(1)), 0.0);
    }

    #[test]
    fn intersection_len_merge() {
        let a = CatSet::from_ids(vec![1, 3, 5, 7]);
        let b = CatSet::from_ids(vec![2, 3, 4, 7, 9]);
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    fn value_kind_and_accessors() {
        assert_eq!(FeatureValue::Numeric(1.5).kind(), Some(FeatureKind::Numeric));
        assert_eq!(FeatureValue::Numeric(1.5).as_numeric(), Some(1.5));
        assert_eq!(
            FeatureValue::Embedding(vec![0.0; 4]).kind(),
            Some(FeatureKind::Embedding { dim: 4 })
        );
        assert!(FeatureValue::Missing.is_missing());
        assert_eq!(FeatureValue::Missing.kind(), None);
        assert_eq!(FeatureValue::Numeric(1.0).as_categorical(), None);
    }

    #[test]
    fn catset_from_iterator() {
        let s: CatSet = [9u32, 1, 9].into_iter().collect();
        assert_eq!(s.ids(), &[1, 9]);
    }
}
