//! Frozen columnar views: the compiled read-side of a [`FeatureTable`].
//!
//! The write-side table stores validity as `Vec<bool>` and answers every
//! read through an enum match returning `Option<FeatureValue>` pieces.
//! That is fine at ingestion, but the curation kernels (pairwise
//! similarity, Apriori support counting, LF vote fill) read the same
//! columns millions of times. [`FrozenTable`] is built once per table and
//! gives those kernels what they actually need:
//!
//! - per-column presence **bitmaps** (`u64` words, testable in one shift
//!   and maskable/popcountable in bulk);
//! - direct borrows of the contiguous numeric / CSR-categorical /
//!   row-major-embedding storage, with no per-read enum dispatch.
//!
//! Freezing copies only the validity vectors (one bit per row per
//! column); values are borrowed. The view is immutable by construction —
//! freeze after the last `push_row`.

use crate::table::{Column, FeatureTable};

/// A packed validity bitmap over rows.
///
/// Bit `i` of word `i / 64` (at position `i % 64`) is set when row `i`
/// holds a value. The trailing word is zero-padded, so word-wise AND +
/// popcount over two bitmaps of the same length counts exactly the rows
/// set in both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap over `len` rows.
    pub fn zeros(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Packs a `Vec<bool>` validity vector.
    pub fn from_bools(present: &[bool]) -> Self {
        let mut b = Self::zeros(present.len());
        for (i, &p) in present.iter().enumerate() {
            if p {
                b.words[i >> 6] |= 1u64 << (i & 63);
            }
        }
        b
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics (via slice indexing) if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// The packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `popcount(self AND other)` — rows set in both bitmaps — without
    /// materializing the intersection.
    ///
    /// # Panics
    /// Panics if the bitmaps cover different row counts.
    pub fn and_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// The intersection `self AND other` as a new bitmap.
    ///
    /// # Panics
    /// Panics if the bitmaps cover different row counts.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            len: self.len,
        }
    }
}

/// One frozen column: borrowed contiguous storage plus a packed presence
/// bitmap.
#[derive(Debug, Clone)]
pub enum FrozenColumn<'a> {
    /// Numeric column (`0.0` at missing rows).
    Numeric {
        /// Per-row values.
        values: &'a [f64],
        /// Packed validity.
        present: Bitmap,
    },
    /// Multivalent categorical column in CSR layout.
    Categorical {
        /// `offsets[r]..offsets[r + 1]` indexes `ids` for row `r`.
        offsets: &'a [u32],
        /// Concatenated sorted category ids.
        ids: &'a [u32],
        /// Packed validity.
        present: Bitmap,
    },
    /// Fixed-width embedding column (zeros at missing rows).
    Embedding {
        /// Embedding width.
        dim: usize,
        /// Row-major flattened embeddings.
        data: &'a [f32],
        /// Packed validity.
        present: Bitmap,
    },
}

impl FrozenColumn<'_> {
    /// The column's presence bitmap.
    pub fn present(&self) -> &Bitmap {
        match self {
            FrozenColumn::Numeric { present, .. }
            | FrozenColumn::Categorical { present, .. }
            | FrozenColumn::Embedding { present, .. } => present,
        }
    }
}

/// An immutable columnar view of a [`FeatureTable`], built once and read
/// many times by the hot kernels.
#[derive(Debug, Clone)]
pub struct FrozenTable<'a> {
    table: &'a FeatureTable,
    cols: Vec<FrozenColumn<'a>>,
}

impl<'a> FrozenTable<'a> {
    /// Freezes a table: packs every validity vector into a bitmap and
    /// borrows the contiguous value storage.
    pub fn freeze(table: &'a FeatureTable) -> Self {
        let cols = (0..table.schema().len())
            .map(|c| match table.column(c) {
                Column::Numeric { values, present } => FrozenColumn::Numeric {
                    values: values.as_slice(),
                    present: Bitmap::from_bools(present),
                },
                Column::Categorical { offsets, ids, present } => FrozenColumn::Categorical {
                    offsets: offsets.as_slice(),
                    ids: ids.as_slice(),
                    present: Bitmap::from_bools(present),
                },
                Column::Embedding { dim, data, present } => FrozenColumn::Embedding {
                    dim: *dim,
                    data: data.as_slice(),
                    present: Bitmap::from_bools(present),
                },
            })
            .collect();
        Self { table, cols }
    }

    /// The backing table.
    pub fn table(&self) -> &'a FeatureTable {
        self.table
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// The frozen column at index `col`.
    pub fn col(&self, col: usize) -> &FrozenColumn<'a> {
        &self.cols[col]
    }

    /// Whether `(row, col)` holds a value.
    #[inline]
    pub fn is_present(&self, row: usize, col: usize) -> bool {
        self.cols[col].present().get(row)
    }

    /// Numeric value at `(row, col)`; `None` if missing or non-numeric.
    #[inline]
    pub fn numeric(&self, row: usize, col: usize) -> Option<f64> {
        match &self.cols[col] {
            FrozenColumn::Numeric { values, present } => present.get(row).then(|| values[row]),
            _ => None,
        }
    }

    /// Sorted category ids at `(row, col)`; `None` if missing or
    /// non-categorical.
    #[inline]
    pub fn categorical(&self, row: usize, col: usize) -> Option<&'a [u32]> {
        match &self.cols[col] {
            FrozenColumn::Categorical { offsets, ids, present } => {
                present.get(row).then(|| &ids[offsets[row] as usize..offsets[row + 1] as usize])
            }
            _ => None,
        }
    }

    /// Embedding at `(row, col)`; `None` if missing or non-embedding.
    #[inline]
    pub fn embedding(&self, row: usize, col: usize) -> Option<&'a [f32]> {
        match &self.cols[col] {
            FrozenColumn::Embedding { dim, data, present } => {
                present.get(row).then(|| &data[row * dim..(row + 1) * dim])
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::schema::{FeatureDef, FeatureSchema, FeatureSet, ServingMode};
    use crate::value::{CatSet, FeatureValue};
    use crate::vocab::Vocabulary;

    fn sample() -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["a", "b", "c"]),
            ),
            FeatureDef::embedding("e", 2, FeatureSet::ModalitySpecific, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        t.push_row(&[
            FeatureValue::Numeric(1.5),
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 2])),
            FeatureValue::Embedding(vec![1.0, -1.0]),
        ]);
        t.push_row(&[FeatureValue::Missing, FeatureValue::Missing, FeatureValue::Missing]);
        t.push_row(&[
            FeatureValue::Numeric(-2.0),
            FeatureValue::Categorical(CatSet::new()),
            FeatureValue::Embedding(vec![0.0, 0.5]),
        ]);
        t
    }

    #[test]
    fn bitmap_round_trips_bools() {
        let bools: Vec<bool> = (0..131).map(|i| i % 3 == 0).collect();
        let b = Bitmap::from_bools(&bools);
        assert_eq!(b.len(), 131);
        for (i, &p) in bools.iter().enumerate() {
            assert_eq!(b.get(i), p, "bit {i}");
        }
        assert_eq!(b.count(), bools.iter().filter(|&&p| p).count());
    }

    #[test]
    fn bitmap_set_and_intersections() {
        let mut a = Bitmap::zeros(100);
        let mut b = Bitmap::zeros(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        // Multiples of 6 in 0..100: 0, 6, ..., 96.
        assert_eq!(a.and_count(&b), 17);
        let both = a.and(&b);
        assert_eq!(both.count(), 17);
        assert!(both.get(6));
        assert!(!both.get(3));
    }

    #[test]
    #[should_panic(expected = "bitmap length mismatch")]
    fn bitmap_and_rejects_length_mismatch() {
        Bitmap::zeros(10).and_count(&Bitmap::zeros(11));
    }

    #[test]
    fn frozen_accessors_match_table() {
        let t = sample();
        let f = FrozenTable::freeze(&t);
        assert_eq!(f.len(), t.len());
        assert_eq!(f.n_cols(), 3);
        for r in 0..t.len() {
            assert_eq!(f.numeric(r, 0), t.numeric(r, 0), "row {r}");
            assert_eq!(f.categorical(r, 1), t.categorical(r, 1), "row {r}");
            assert_eq!(f.embedding(r, 2), t.embedding(r, 2), "row {r}");
            for c in 0..3 {
                assert_eq!(f.is_present(r, c), t.is_present(r, c), "({r}, {c})");
            }
        }
    }

    #[test]
    fn wrong_kind_reads_return_none() {
        let t = sample();
        let f = FrozenTable::freeze(&t);
        assert_eq!(f.numeric(0, 1), None);
        assert_eq!(f.categorical(0, 0), None);
        assert_eq!(f.embedding(0, 1), None);
    }

    #[test]
    fn empty_set_stays_present() {
        let t = sample();
        let f = FrozenTable::freeze(&t);
        assert_eq!(f.categorical(2, 1), Some(&[][..]));
        assert!(f.is_present(2, 1));
        assert!(!f.is_present(1, 1));
    }
}
