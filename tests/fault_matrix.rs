//! Fault-matrix tier: the pipeline under every injected fault mode.
//!
//! Each grid cell generates a task through a fault-injecting access layer
//! (`CM_FAULTS`-style plan) and runs curation end to end. The contract:
//!
//! * no panics and no poisoned outputs — every probabilistic label stays
//!   finite and in `[0, 1]` under every fault mode and under the mixed
//!   storm;
//! * the `DegradationReport` is populated (fault seed, per-service stats,
//!   per-LF abstain telemetry);
//! * identical fault seeds reproduce bit-identical labels;
//! * the storm scenario's labels are pinned as f64 bit patterns in
//!   `tests/fixtures/fault_labels.json`. `scripts/ci.sh` runs this suite
//!   at `CM_THREADS=1`, `2`, and `4`, so the pinned fixture also proves
//!   thread-count invariance of a faulted run.
//!
//! To regenerate after an *intentional* numeric change:
//! `CM_REGEN_FIXTURES=1 cargo test --test fault_matrix`.

use std::fmt::Write as _;
use std::path::PathBuf;

use cross_modal::json::Json;
use cross_modal::labelmodel::{CategoricalContainsLf, LabelingFunction, Vote};
use cross_modal::mining::MiningConfig;
use cross_modal::prelude::*;

/// The mixed-storm plan: every fault mode at once.
const STORM: &str = "seed=7;topics=unavailable@0.5;keywords=transient(2)@0.6;\
                     page_quality=latency(300)@0.5;user_reports=corrupt@0.4;\
                     kg_entities=stale;sentiment=unavailable@0.9";

fn task() -> TaskConfig {
    TaskConfig::paper(TaskId::Ct2).scaled(0.02)
}

fn fast_config() -> CurationConfig {
    CurationConfig {
        use_label_propagation: false,
        mining: MiningConfig { min_recall: 0.05, ..Default::default() },
        ..Default::default()
    }
}

fn run_plan(spec: &str) -> (TaskData, CurationOutput) {
    let plan = FaultPlan::parse(spec).unwrap_or_else(|e| panic!("bad plan {spec:?}: {e}"));
    let data =
        TaskData::generate_with_faults(task(), 11, Some(200), &plan, AccessPolicy::default())
            .unwrap_or_else(|e| panic!("generation under {spec:?} failed: {e}"));
    let curation = curate(&data, &fast_config());
    (data, curation)
}

fn assert_labels_sane(curation: &CurationOutput, ctx: &str) {
    assert!(!curation.probabilistic_labels.is_empty(), "{ctx}: no labels");
    for (i, p) in curation.probabilistic_labels.iter().enumerate() {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(p),
            "{ctx}: label {i} = {p} is not a probability"
        );
    }
}

#[test]
fn every_fault_mode_degrades_gracefully() {
    let grid = [
        "seed=7;topics=unavailable@0.6",
        "seed=7;keywords=transient(2)@0.5",
        "seed=7;page_quality=latency(120)@0.4",
        "seed=7;user_reports=corrupt@0.5",
        "seed=7;kg_entities=stale",
        STORM,
    ];
    for spec in grid {
        let (data, curation) = run_plan(spec);
        assert_labels_sane(&curation, spec);
        let summary = data.fault_summary.as_ref().unwrap_or_else(|| panic!("{spec}: no summary"));
        assert_eq!(summary.seed, 7, "{spec}");
        assert!(!summary.services.is_empty(), "{spec}: no per-service stats");
        for s in &summary.services {
            assert!(s.calls > 0, "{spec}: service {} never called", s.name);
        }
        let deg = &curation.degradation;
        assert_eq!(deg.fault_seed, 7, "{spec}");
        assert!(deg.faults.is_some(), "{spec}: degradation lost the fault summary");
        assert_eq!(
            deg.lf_abstain.len(),
            curation.lf_names.len(),
            "{spec}: abstain telemetry must cover every LF"
        );
        assert!((0.0..=1.0).contains(&deg.pool_coverage), "{spec}");
    }
}

#[test]
fn unavailable_storm_trips_breakers_and_reports_them() {
    let (data, curation) = run_plan(STORM);
    let summary = data.fault_summary.as_ref().unwrap();
    // sentiment at rate 0.9 with the default breaker threshold must trip.
    assert!(
        summary.tripped_services().iter().any(|s| s == "sentiment"),
        "expected sentiment to trip: {:?}",
        summary.tripped_services()
    );
    assert_eq!(curation.degradation.tripped_services, summary.tripped_services());
    // A tripped categorical service feeds mined LFs; under the storm at
    // least one LF must have a higher abstain rate on the pool than on the
    // (clean) dev corpus.
    assert!(
        curation.degradation.lf_abstain.iter().any(|l| l.pool_abstain_rate > l.dev_abstain_rate),
        "no LF shows the degradation signal"
    );
}

#[test]
fn identical_fault_seeds_are_bit_identical() {
    let (_, a) = run_plan(STORM);
    let (_, b) = run_plan(STORM);
    let bits = |c: &CurationOutput| -> Vec<u64> {
        c.probabilistic_labels.iter().map(|p| p.to_bits()).collect()
    };
    assert_eq!(bits(&a), bits(&b), "same fault seed must reproduce bit-identically");
    assert_eq!(a.degradation, b.degradation);
    let (_, c) = run_plan(&STORM.replace("seed=7", "seed=8"));
    assert_ne!(bits(&a), bits(&c), "different fault seeds must differ");
}

#[test]
fn disabled_faults_match_clean_curation_bitwise() {
    let clean = curate(&TaskData::generate(task(), 11, Some(200)), &fast_config());
    let via = curate(
        &TaskData::generate_with_faults(
            task(),
            11,
            Some(200),
            &FaultPlan::disabled(),
            AccessPolicy::default(),
        )
        .unwrap(),
        &fast_config(),
    );
    assert_eq!(
        clean.probabilistic_labels.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        via.probabilistic_labels.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
    );
    assert!(!via.degradation.is_degraded());
    assert!(via.degradation.faults.is_none());
}

/// An LF that abstains on every row (it demands an out-of-vocabulary id)
/// must flow through all three label models without skewing posteriors:
/// the label model drops it, and the surviving output is bit-identical to
/// a run that never saw it.
#[test]
fn all_abstain_lf_never_skews_any_label_model() {
    let data = TaskData::generate(task(), 11, Some(200));
    let topics = data.world.schema().column("topics").unwrap();
    let abstainer =
        || Box::new(CategoricalContainsLf::new(topics, vec![9999], false, Vote::Positive));
    let abstainer_name = abstainer().name().to_owned();
    for kind in [LabelModelKind::Anchored, LabelModelKind::Em, LabelModelKind::MajorityVote] {
        let cfg = CurationConfig { label_model: kind, ..fast_config() };
        let base_lfs = expert_lfs(data.world.schema()).unwrap();
        let mut spiked_lfs = expert_lfs(data.world.schema()).unwrap();
        spiked_lfs.push(abstainer());
        let base = curate_with_lfs(&data, &cfg, base_lfs, std::time::Duration::ZERO);
        let spiked = curate_with_lfs(&data, &cfg, spiked_lfs, std::time::Duration::ZERO);
        assert_eq!(
            base.probabilistic_labels.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            spiked.probabilistic_labels.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "{kind:?}: an all-abstain LF skewed the posteriors"
        );
        assert_eq!(base.covered, spiked.covered, "{kind:?}");
        assert_eq!(
            spiked.degradation.dropped_lfs,
            vec![abstainer_name.clone()],
            "{kind:?}: the all-abstain LF must be reported as dropped"
        );
        assert!(base.degradation.dropped_lfs.is_empty(), "{kind:?}");
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fault_labels.json")
}

fn encode(labels: &[f64]) -> String {
    let hex: Vec<Json> = labels
        .iter()
        .map(|l| {
            let mut s = String::with_capacity(16);
            let _ = write!(s, "{:016x}", l.to_bits());
            Json::Str(s)
        })
        .collect();
    Json::obj([
        ("task", Json::Str("ct2_scaled_0.02_seed11_limit200_storm_seed7".to_owned())),
        ("plan", Json::Str(STORM.to_owned())),
        ("encoding", Json::Str("f64-bits-hex".to_owned())),
        ("labels", Json::Arr(hex)),
    ])
    .to_string_pretty()
}

fn decode(text: &str) -> Vec<f64> {
    let json = Json::parse(text).unwrap_or_else(|e| panic!("fixture is not valid JSON: {e:?}"));
    let arr = json
        .get("labels")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("fixture has no labels array"));
    arr.iter()
        .map(|v| {
            let hex = v.as_str().unwrap_or_else(|| panic!("label is not a hex string"));
            let bits =
                u64::from_str_radix(hex, 16).unwrap_or_else(|e| panic!("bad hex {hex:?}: {e}"));
            f64::from_bits(bits)
        })
        .collect()
}

/// The storm scenario's labels, pinned bit-for-bit. Running this under
/// different `CM_THREADS` (as `scripts/ci.sh` does) proves a faulted run
/// is as thread-invariant as a clean one.
#[test]
fn storm_labels_match_pinned_fixture() {
    let (_, curation) = run_plan(STORM);
    let path = fixture_path();
    if std::env::var_os("CM_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, encode(&curation.probabilistic_labels))
            .unwrap_or_else(|e| panic!("cannot write fixture: {e}"));
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fault fixture {} ({e}); run CM_REGEN_FIXTURES=1 cargo test --test \
             fault_matrix to create it",
            path.display()
        )
    });
    let golden = decode(&text);
    assert_eq!(curation.probabilistic_labels.len(), golden.len(), "label count drifted");
    let drifted = curation
        .probabilistic_labels
        .iter()
        .zip(&golden)
        .filter(|(got, want)| got.to_bits() != want.to_bits())
        .count();
    assert_eq!(
        drifted,
        0,
        "{drifted}/{} faulted labels drifted from the pinned fixture; if the numeric change \
         is intentional, regenerate with CM_REGEN_FIXTURES=1",
        golden.len()
    );
}
