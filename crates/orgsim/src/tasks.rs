//! The five classification tasks of the Google case study (§6.1, Table 1).
//!
//! Each task is a *profile* of the generative world: how strongly each
//! feature set discriminates positives, how many behavioral archetypes the
//! positive class has (and how many are borderline modes with weak
//! categorical signal — label propagation's target), how severe the
//! modality shift is, and how informative the raw pre-trained embedding is
//! (the paper's evaluation baseline).
//!
//! Dataset sizes default to 1/1000 of Table 1 for the corpus and pool;
//! test sets are fixed at a few thousand points so AUPRC estimates stay
//! stable at this scale (the paper's 17 k–203 k human-labeled test sets have
//! no synthetic-budget analogue).

/// Task identifier, CT 1–CT 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskId {
    /// Topic classification; moderate features, mild borderline modes.
    Ct1,
    /// Object classification; easy positives (LP adds nothing — Table 3).
    Ct2,
    /// Topic classification; weak features, heavy modality shift
    /// (text transfer lands *below* the embedding baseline — Table 2).
    Ct3,
    /// Rare-event classification (0.9 % positive); most positive mass in
    /// borderline modes (LP recall 162× — Table 3).
    Ct4,
    /// Topic classification; strong features, many borderline modes,
    /// extreme cross-over (750 k — Table 2).
    Ct5,
}

impl TaskId {
    /// All tasks in paper order.
    pub const ALL: [TaskId; 5] = [TaskId::Ct1, TaskId::Ct2, TaskId::Ct3, TaskId::Ct4, TaskId::Ct5];

    /// Display name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TaskId::Ct1 => "CT 1",
            TaskId::Ct2 => "CT 2",
            TaskId::Ct3 => "CT 3",
            TaskId::Ct4 => "CT 4",
            TaskId::Ct5 => "CT 5",
        }
    }

    /// Parses a task name as written in specs or the paper: `"CT 1"`,
    /// `"ct1"`, and `"CT-4"` all resolve; anything else is `None`.
    pub fn from_name(name: &str) -> Option<TaskId> {
        let norm: String = name
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '-' && *c != '_')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match norm.as_str() {
            "ct1" => Some(TaskId::Ct1),
            "ct2" => Some(TaskId::Ct2),
            "ct3" => Some(TaskId::Ct3),
            "ct4" => Some(TaskId::Ct4),
            "ct5" => Some(TaskId::Ct5),
            _ => None,
        }
    }
}

/// Generative knobs defining a task's difficulty shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskProfile {
    /// Base positive rate (Table 1 "% Pos").
    pub positive_rate: f64,
    /// Number of positive behavioral archetypes.
    pub n_archetypes: usize,
    /// How many of those archetypes are borderline modes.
    pub n_borderline: usize,
    /// Multiplier on categorical signal for borderline archetypes.
    pub borderline_signal_discount: f64,
    /// Probability a positive entity expresses archetype-indicative
    /// categories, per feature set `[A, B, C, D]`.
    pub set_signal: [f64; 4],
    /// Probability a negative entity expresses an indicative category per
    /// attribute (caps LF precision below 1).
    pub contamination: f64,
    /// Magnitude of per-modality background-distribution shift in `[0, 1]`.
    pub modality_shift: f64,
    /// Strength of the label direction mixed into the pre-trained image
    /// embedding (controls the strength of the paper's baseline model).
    pub embedding_label_signal: f64,
    /// Within-archetype style spread (lower = tighter propagation clusters).
    pub style_noise: f64,
    /// Separation of positive vs negative numeric latents in `[0, 1]`.
    pub numeric_signal: f64,
    /// Label noise in the old (text) modality's curated corpus: years of
    /// human labels under drifting task definitions mean a fraction of the
    /// old labels no longer match the live task (§6.1 samples old curated
    /// data; §7.4 discusses offline/online drift).
    pub old_label_noise: f64,
}

/// A fully specified task: profile plus dataset sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskConfig {
    /// Which task.
    pub id: TaskId,
    /// Generative profile.
    pub profile: TaskProfile,
    /// Labeled old-modality (text) corpus size.
    pub n_text_labeled: usize,
    /// Unlabeled new-modality (image) pool size.
    pub n_image_unlabeled: usize,
    /// Held-out labeled image test-set size.
    pub n_image_test: usize,
}

impl TaskConfig {
    /// Paper-calibrated configuration at the default 1/1000 scale.
    pub fn paper(id: TaskId) -> Self {
        let (profile, n_text, n_unlabeled, n_test) = match id {
            TaskId::Ct1 => (
                TaskProfile {
                    positive_rate: 0.041,
                    n_archetypes: 6,
                    n_borderline: 2,
                    borderline_signal_discount: 0.30,
                    set_signal: [0.35, 0.40, 0.75, 0.70],
                    contamination: 0.040,
                    modality_shift: 0.35,
                    embedding_label_signal: 0.80,
                    style_noise: 0.35,
                    numeric_signal: 0.60,
                    old_label_noise: 0.05,
                },
                18_000,
                7_200,
                4_000,
            ),
            TaskId::Ct2 => (
                TaskProfile {
                    positive_rate: 0.093,
                    n_archetypes: 4,
                    n_borderline: 0,
                    borderline_signal_discount: 1.0,
                    set_signal: [0.50, 0.50, 0.85, 0.80],
                    contamination: 0.020,
                    modality_shift: 0.30,
                    embedding_label_signal: 0.70,
                    style_noise: 0.35,
                    numeric_signal: 0.70,
                    old_label_noise: 0.08,
                },
                26_000,
                7_400,
                4_000,
            ),
            TaskId::Ct3 => (
                TaskProfile {
                    positive_rate: 0.032,
                    n_archetypes: 6,
                    n_borderline: 2,
                    borderline_signal_discount: 0.35,
                    set_signal: [0.38, 0.42, 0.68, 0.62],
                    contamination: 0.040,
                    modality_shift: 0.45,
                    embedding_label_signal: 0.95,
                    style_noise: 0.45,
                    numeric_signal: 0.35,
                    old_label_noise: 0.06,
                },
                19_000,
                7_400,
                4_000,
            ),
            TaskId::Ct4 => (
                TaskProfile {
                    positive_rate: 0.009,
                    n_archetypes: 8,
                    n_borderline: 5,
                    borderline_signal_discount: 0.35,
                    set_signal: [0.50, 0.45, 0.80, 0.75],
                    contamination: 0.015,
                    modality_shift: 0.35,
                    embedding_label_signal: 0.70,
                    style_noise: 0.30,
                    numeric_signal: 0.80,
                    old_label_noise: 0.08,
                },
                25_000,
                7_300,
                8_000,
            ),
            TaskId::Ct5 => (
                TaskProfile {
                    positive_rate: 0.069,
                    n_archetypes: 7,
                    n_borderline: 4,
                    borderline_signal_discount: 0.35,
                    set_signal: [0.45, 0.50, 0.80, 0.75],
                    contamination: 0.025,
                    modality_shift: 0.30,
                    embedding_label_signal: 0.65,
                    style_noise: 0.30,
                    numeric_signal: 0.70,
                    old_label_noise: 0.05,
                },
                25_000,
                7_400,
                4_000,
            ),
        };
        Self {
            id,
            profile,
            n_text_labeled: n_text,
            n_image_unlabeled: n_unlabeled,
            n_image_test: n_test,
        }
    }

    /// Scales every dataset size by `factor` (minimum 64 rows each), for
    /// fast tests or larger benchmark runs.
    pub fn scaled(mut self, factor: f64) -> Self {
        let scale = |n: usize| (((n as f64) * factor) as usize).max(64);
        self.n_text_labeled = scale(self.n_text_labeled);
        self.n_image_unlabeled = scale(self.n_image_unlabeled);
        self.n_image_test = scale(self.n_image_test);
        self
    }

    /// Expected positive count in the test set (for sanity checks).
    pub fn expected_test_positives(&self) -> f64 {
        self.profile.positive_rate * self.n_image_test as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table1_rates() {
        assert_eq!(TaskConfig::paper(TaskId::Ct1).profile.positive_rate, 0.041);
        assert_eq!(TaskConfig::paper(TaskId::Ct2).profile.positive_rate, 0.093);
        assert_eq!(TaskConfig::paper(TaskId::Ct3).profile.positive_rate, 0.032);
        assert_eq!(TaskConfig::paper(TaskId::Ct4).profile.positive_rate, 0.009);
        assert_eq!(TaskConfig::paper(TaskId::Ct5).profile.positive_rate, 0.069);
    }

    #[test]
    fn ct2_has_no_borderline_modes() {
        // Table 3: label propagation gains exactly 1.0x on CT2.
        assert_eq!(TaskConfig::paper(TaskId::Ct2).profile.n_borderline, 0);
    }

    #[test]
    fn ct4_is_rarest_and_most_borderline() {
        let ct4 = TaskConfig::paper(TaskId::Ct4).profile;
        for id in TaskId::ALL {
            let p = TaskConfig::paper(id).profile;
            assert!(ct4.positive_rate <= p.positive_rate);
        }
        assert!(ct4.n_borderline * 2 > ct4.n_archetypes);
    }

    #[test]
    fn scaled_respects_floor() {
        let c = TaskConfig::paper(TaskId::Ct1).scaled(0.0001);
        assert_eq!(c.n_text_labeled, 64);
        assert_eq!(c.n_image_test, 64);
        let big = TaskConfig::paper(TaskId::Ct1).scaled(2.0);
        assert_eq!(big.n_text_labeled, 36_000);
    }

    #[test]
    fn borderline_never_exceeds_archetypes() {
        for id in TaskId::ALL {
            let p = TaskConfig::paper(id).profile;
            assert!(p.n_borderline <= p.n_archetypes);
            assert!(p.positive_rate > 0.0 && p.positive_rate < 0.5);
            for s in p.set_signal {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn task_names_are_paper_style() {
        assert_eq!(TaskId::Ct1.name(), "CT 1");
        assert_eq!(TaskId::ALL.len(), 5);
    }
}
