//! Regenerates **Table 3**: the relative improvement label propagation
//! (§4.4) brings to the training-data curation step — precision, recall,
//! and F1 of the weak-supervision output, plus the end model's AUPRC — for
//! every task.
//!
//! Expected shape (paper): propagation trades a little precision for large
//! recall gains on tasks whose positive mass hides in borderline modes
//! (CT 4, CT 5), is neutral on the "easy" task (CT 2 = 1.00x), and end-model
//! AUPRC never degrades much.
//!
//! The evaluation matrix lives in `specs/table3.json`; `CM_SCALE`,
//! `CM_SEEDS`, `CM_TASK`, and `CM_JSON` still override it.

use cm_bench::{
    fmt_ratio, load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_scenario,
    spec_seeds, task_selected, TaskRun,
};
use cm_json::{Json, ToJson};
use cm_pipeline::{curate, CurationConfig};

struct Row {
    task: String,
    precision_ratio: f64,
    recall_ratio: f64,
    f1_ratio: f64,
    auprc_ratio: f64,
    without_lp: (f64, f64, f64),
    with_lp: (f64, f64, f64),
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("precision_ratio", self.precision_ratio.to_json()),
            ("recall_ratio", self.recall_ratio.to_json()),
            ("f1_ratio", self.f1_ratio.to_json()),
            ("auprc_ratio", self.auprc_ratio.to_json()),
            ("without_lp", self.without_lp.to_json()),
            ("with_lp", self.with_lp.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("table3");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    let scenario = spec_scenario(&spec, "image-only I+ABCD");

    println!(
        "Table 3 (scale {scale}, {} seed(s)) — relative gain from label propagation",
        seeds.len()
    );
    println!("{:<6} {:>10} {:>10} {:>10} {:>10}", "Task", "Precision", "Recall", "F1", "AUPRC");
    let mut rows = Vec::new();
    for &id in &spec.tasks {
        if !task_selected(id) {
            continue;
        }
        let mut ratios: Vec<[f64; 4]> = Vec::new();
        let mut wo_acc = Vec::new();
        let mut w_acc = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(id, scale, seed, spec_reservoir(&spec, scale));
            let runner = run.runner();
            let base_cfg = run.curation_config(seed);
            let without = curate(
                &run.data,
                &CurationConfig { use_label_propagation: false, ..base_cfg.clone() },
            );
            let with = curate(&run.data, &base_cfg);

            let auprc_without = runner.run(&scenario, Some(&without)).unwrap().auprc;
            let auprc_with = runner.run(&scenario, Some(&with)).unwrap().auprc;

            let ratio = |a: f64, b: f64| if b > 1e-9 { a / b } else { 0.0 };
            ratios.push([
                ratio(with.ws_quality.precision, without.ws_quality.precision),
                ratio(with.ws_quality.recall, without.ws_quality.recall),
                ratio(with.ws_quality.f1, without.ws_quality.f1),
                ratio(auprc_with, auprc_without),
            ]);
            wo_acc.push([
                without.ws_quality.precision,
                without.ws_quality.recall,
                without.ws_quality.f1,
            ]);
            w_acc.push([with.ws_quality.precision, with.ws_quality.recall, with.ws_quality.f1]);
        }
        let col = |v: &[[f64; 4]], i: usize| mean(&v.iter().map(|r| r[i]).collect::<Vec<_>>());
        let col3 = |v: &[[f64; 3]], i: usize| mean(&v.iter().map(|r| r[i]).collect::<Vec<_>>());
        let row = Row {
            task: id.name().to_owned(),
            precision_ratio: col(&ratios, 0),
            recall_ratio: col(&ratios, 1),
            f1_ratio: col(&ratios, 2),
            auprc_ratio: col(&ratios, 3),
            without_lp: (col3(&wo_acc, 0), col3(&wo_acc, 1), col3(&wo_acc, 2)),
            with_lp: (col3(&w_acc, 0), col3(&w_acc, 1), col3(&w_acc, 2)),
        };
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10}",
            row.task,
            fmt_ratio(row.precision_ratio),
            fmt_ratio(row.recall_ratio),
            fmt_ratio(row.f1_ratio),
            fmt_ratio(row.auprc_ratio),
        );
        rows.push(row);
    }
    maybe_write_json(&rows);
}
