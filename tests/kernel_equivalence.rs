//! Differential tests for the columnar hot-path kernels: every rewritten
//! kernel must be **bit-identical** to the row-wise implementation it
//! replaced, on seeded random inputs with realistic missingness.
//!
//! Three oracles are pinned here:
//! - [`normalized_similarity`] vs the fused [`PairKernel`] (both the
//!   presence-word fast path and the `>64`-column wide fallback);
//! - `cm_mining::reference::mine_itemsets_reference` (the retired
//!   row-at-a-time miner) vs the vertical bitset engine;
//! - `Matrix::matmul_reference` (the unblocked serial GEMM) vs the
//!   cache-blocked kernel.
//!
//! A final layer re-checks the cm-par contract end to end: graphs,
//! itemsets, and label matrices at explicit thread counts 1/2/4.

use std::sync::Arc;

use cross_modal::featurespace::FrozenTable;
use cross_modal::featurespace::{
    normalized_similarity, CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable,
    FeatureValue, Label, ModalityKind, PairKernel, ServingMode, SimilarityConfig, Vocabulary,
};
use cross_modal::labelmodel::{CategoricalContainsLf, LabelMatrix, LabelingFunction, Vote};
use cross_modal::linalg::Matrix;
use cross_modal::mining::reference::mine_itemsets_reference;
use cross_modal::mining::{mine_itemsets_with, MiningConfig};
use cross_modal::orgsim::{TaskConfig, TaskId, World, WorldConfig};
use cross_modal::par::ParConfig;
use cross_modal::propagation::GraphBuilder;

/// xorshift64* — deterministic, dependency-free test randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A mixed-kind table (3 numeric, 2 categorical, 1 embedding) with ~25%
/// missingness per cell, seeded.
fn mixed_table(n: usize, seed: u64) -> FeatureTable {
    let schema = Arc::new(FeatureSchema::from_defs(vec![
        FeatureDef::numeric("n0", FeatureSet::A, ServingMode::Servable),
        FeatureDef::numeric("n1", FeatureSet::A, ServingMode::Servable),
        FeatureDef::numeric("n2", FeatureSet::B, ServingMode::Servable),
        FeatureDef::categorical(
            "c0",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "c", "d", "e"]),
        ),
        FeatureDef::categorical(
            "c1",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names((0..80).map(|i| format!("t{i}")).collect::<Vec<_>>()),
        ),
        FeatureDef::embedding("e0", 8, FeatureSet::D, ServingMode::Servable),
    ]));
    let mut rng = Rng::new(seed);
    let mut t = FeatureTable::new(schema);
    for _ in 0..n {
        let mut row: Vec<FeatureValue> = Vec::with_capacity(6);
        for c in 0..6 {
            if rng.f64() < 0.25 {
                row.push(FeatureValue::Missing);
                continue;
            }
            row.push(match c {
                0..=2 => FeatureValue::Numeric(rng.f64() * 40.0 - 20.0),
                3 => FeatureValue::Categorical(CatSet::from_ids(
                    (0..1 + rng.below(3)).map(|_| rng.below(5) as u32).collect(),
                )),
                4 => FeatureValue::Categorical(CatSet::from_ids(
                    // Ids up to 80 defeat the u64 category-mask fast path.
                    (0..1 + rng.below(4)).map(|_| rng.below(80) as u32).collect(),
                )),
                _ => FeatureValue::Embedding((0..8).map(|_| rng.f64() as f32 - 0.5).collect()),
            });
        }
        t.push_row(&row);
    }
    t
}

#[test]
fn pair_kernel_is_bit_identical_to_normalized_similarity() {
    let t = mixed_table(80, 11);
    let config = SimilarityConfig::uniform(vec![0, 1, 2, 3, 4, 5]).fit_scales(&t);
    let frozen = FrozenTable::freeze(&t);
    let kernel = PairKernel::compile(&frozen, &config);
    for i in 0..t.len() {
        for j in 0..t.len() {
            let fused = kernel.pair(i, j);
            let reference = normalized_similarity((&t, i), (&t, j), &config);
            assert_eq!(fused.to_bits(), reference.to_bits(), "pair ({i}, {j})");
        }
    }
}

#[test]
fn pair_kernel_wide_fallback_is_bit_identical() {
    // >64 plan columns forces the per-column-bitmap wide path.
    let defs: Vec<FeatureDef> = (0..70)
        .map(|i| FeatureDef::numeric(&format!("n{i}"), FeatureSet::A, ServingMode::Servable))
        .collect();
    let schema = Arc::new(FeatureSchema::from_defs(defs));
    let mut rng = Rng::new(23);
    let mut t = FeatureTable::new(schema);
    for _ in 0..40 {
        let row: Vec<FeatureValue> = (0..70)
            .map(|_| {
                if rng.f64() < 0.3 {
                    FeatureValue::Missing
                } else {
                    FeatureValue::Numeric(rng.f64() * 10.0)
                }
            })
            .collect();
        t.push_row(&row);
    }
    let config = SimilarityConfig::uniform((0..70).collect()).fit_scales(&t);
    let frozen = FrozenTable::freeze(&t);
    let kernel = PairKernel::compile(&frozen, &config);
    for i in 0..t.len() {
        for j in i..t.len() {
            let fused = kernel.pair(i, j);
            let reference = normalized_similarity((&t, i), (&t, j), &config);
            assert_eq!(fused.to_bits(), reference.to_bits(), "pair ({i}, {j})");
        }
    }
}

/// Field-by-field equality of two mined results, with the f64 statistics
/// compared exactly (identical integer operands must give identical
/// quotients).
fn assert_same_itemsets(
    a: &cross_modal::mining::MinedItemsets,
    b: &cross_modal::mining::MinedItemsets,
    context: &str,
) {
    assert_eq!(a.n_candidates, b.n_candidates, "{context}: n_candidates");
    assert_eq!(a.positive, b.positive, "{context}: positive itemsets");
    assert_eq!(a.negative, b.negative, "{context}: negative itemsets");
}

#[test]
fn bitset_miner_matches_rowwise_reference_on_org_data() {
    let w = World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct1).scaled(0.02), 5));
    let data = w.generate(ModalityKind::Text, 1200, 3);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    for order in [1usize, 2, 3] {
        let cfg = MiningConfig { max_order: order, ..MiningConfig::default() };
        let fast = mine_itemsets_with(&data.table, &data.labels, &cols, &cfg, &ParConfig::serial());
        let oracle = mine_itemsets_reference(&data.table, &data.labels, &cols, &cfg);
        assert_same_itemsets(&fast, &oracle, &format!("order {order}"));
    }
}

#[test]
fn bitset_miner_matches_reference_on_seeded_mixed_table() {
    let t = mixed_table(600, 77);
    let mut rng = Rng::new(99);
    let labels: Vec<Label> = (0..t.len())
        .map(|_| if rng.f64() < 0.2 { Label::Positive } else { Label::Negative })
        .collect();
    let cols = vec![0, 1, 2, 3, 4];
    let cfg = MiningConfig { max_order: 2, min_recall: 0.05, ..MiningConfig::default() };
    let fast = mine_itemsets_with(&t, &labels, &cols, &cfg, &ParConfig::serial());
    let oracle = mine_itemsets_reference(&t, &labels, &cols, &cfg);
    assert_same_itemsets(&fast, &oracle, "mixed table");
}

#[test]
fn blocked_matmul_matches_reference_on_seeded_shapes() {
    let mut rng = Rng::new(41);
    for (m, k, n) in [(5, 7, 3), (64, 64, 64), (127, 65, 33), (33, 128, 1), (2, 3, 129)] {
        let mut fill = |rows: usize, cols: usize| {
            Matrix::from_fn(rows, cols, |_, _| {
                // ~20% exact zeros exercise the sparsity gate.
                if rng.f64() < 0.2 {
                    0.0
                } else {
                    rng.f64() as f32 * 2.0 - 1.0
                }
            })
        };
        let a = fill(m, k);
        let b = fill(k, n);
        let blocked = a.matmul_with(&b, &ParConfig::serial());
        let reference = a.matmul_reference(&b);
        assert_eq!(blocked, reference, "shape {m}x{k}x{n}");
    }
}

/// The cm-par contract over the rewritten kernels: explicit thread counts
/// must never change a bit of any output.
#[test]
fn kernel_outputs_are_thread_count_invariant() {
    let w = World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct1).scaled(0.03), 9));
    let data = w.generate(ModalityKind::Text, 5000, 4);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);

    // Graph construction over the fused pair kernel.
    let sim = SimilarityConfig::uniform(cols.clone()).fit_scales(&data.table);
    let builder = GraphBuilder::approximate(8, data.table.len());
    let base_graph = builder.build_with(&data.table, &sim, 1, &ParConfig::threads(1));

    // Bitset mining (5k rows crosses MINE_PAR_ROWS).
    let cfg = MiningConfig { max_order: 2, ..MiningConfig::default() };
    let base_mined =
        mine_itemsets_with(&data.table, &data.labels, &cols, &cfg, &ParConfig::threads(1));

    // Frozen-view LF application.
    let lfs: Vec<Box<dyn LabelingFunction>> = cols
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, &c)| {
            Box::new(CategoricalContainsLf::new(
                c,
                vec![i as u32],
                false,
                if i % 2 == 0 { Vote::Positive } else { Vote::Negative },
            )) as Box<dyn LabelingFunction>
        })
        .collect();
    let base_votes = LabelMatrix::apply_with(&data.table, &lfs, &ParConfig::threads(1));

    for threads in [2usize, 4] {
        let par = ParConfig::threads(threads);
        assert_eq!(
            builder.build_with(&data.table, &sim, 1, &par),
            base_graph,
            "graph, threads = {threads}"
        );
        let mined = mine_itemsets_with(&data.table, &data.labels, &cols, &cfg, &par);
        assert_same_itemsets(&mined, &base_mined, &format!("threads = {threads}"));
        let votes = LabelMatrix::apply_with(&data.table, &lfs, &par);
        for r in 0..base_votes.n_rows() {
            assert_eq!(votes.row(r), base_votes.row(r), "row {r}, threads = {threads}");
        }
    }
}
