//! Ablations over the design choices DESIGN.md calls out (not a paper
//! table; supporting evidence for §7's discussion):
//!
//! 1. **label model** — dev-anchored vs EM generative vs majority vote;
//! 2. **itemset order** — order-1 vs order-2 mining, and the Snuba-style
//!    decision-stump generator the paper rejected (§4.3);
//! 3. **propagation variant** — synchronous (Jacobi) vs streaming
//!    (Gauss–Seidel) updates, and a k-NN degree sweep;
//! 4. **nonservable features** — LFs with vs without nonservable features.
//!
//! The run configuration lives in `specs/ablations.json`; `CM_SCALE`,
//! `CM_SEEDS`, and `CM_JSON` still override it.

use std::time::Instant;

use cm_bench::{
    load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_scenario, spec_seeds,
    TaskRun,
};
use cm_featurespace::{FeatureSet, SimilarityConfig};
use cm_json::{Json, ToJson};
use cm_mining::MiningConfig;
use cm_pipeline::{curate, CurationConfig, LabelModelKind};
use cm_propagation::{propagate, propagate_streaming, GraphBuilder, PropagationConfig};

#[derive(Default)]
struct Report {
    label_model: Vec<(String, f64, f64)>, // (name, ws_f1, end auprc)
    mining_order: Vec<(String, f64, f64, f64)>, // (name, ws_f1, coverage, seconds)
    propagation: Vec<(String, f64, f64)>, // (name, seconds, score agreement)
    nonservable: Vec<(String, f64)>,      // (name, end auprc)
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label_model", self.label_model.to_json()),
            ("mining_order", self.mining_order.to_json()),
            ("propagation", self.propagation.to_json()),
            ("nonservable", self.nonservable.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("ablations");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    let task = spec.tasks[0];
    let reservoir = spec_reservoir(&spec, scale);
    let sets = FeatureSet::SHARED;
    let end_model = spec_scenario(&spec, "image-only I+ABCD");
    let mut report = Report::default();
    println!("Ablations (CT 1, scale {scale}, {} seed(s))\n", seeds.len());

    // ---- 1. label model ----
    println!("label model          ws_F1   end AUPRC");
    for (name, kind) in [
        ("anchored", LabelModelKind::Anchored),
        ("em", LabelModelKind::Em),
        ("majority", LabelModelKind::MajorityVote),
    ] {
        let mut f1s = Vec::new();
        let mut aps = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(task, scale, seed, reservoir);
            let cfg = CurationConfig { label_model: kind, ..run.curation_config(seed) };
            let out = curate(&run.data, &cfg);
            f1s.push(out.ws_quality.f1);
            aps.push(run.runner().run(&end_model, Some(&out)).unwrap().auprc);
        }
        println!("{name:<18} {:>7.3} {:>11.4}", mean(&f1s), mean(&aps));
        report.label_model.push((name.into(), mean(&f1s), mean(&aps)));
    }

    // ---- 2. LF generator: mining order + Snuba-style stumps ----
    println!("\nLF generator         ws_F1   coverage   seconds");
    for (name, order) in [("order-1", 1usize), ("order-2", 2)] {
        let mut f1s = Vec::new();
        let mut covs = Vec::new();
        let mut secs = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(task, scale, seed, reservoir);
            let base = run.curation_config(seed);
            let cfg = CurationConfig {
                use_label_propagation: false,
                mining: MiningConfig { max_order: order, ..base.mining.clone() },
                ..base
            };
            let t = Instant::now();
            let out = curate(&run.data, &cfg);
            secs.push(t.elapsed().as_secs_f64());
            f1s.push(out.ws_quality.f1);
            covs.push(out.ws_quality.coverage);
        }
        println!("{name:<18} {:>7.3} {:>10.3} {:>9.2}", mean(&f1s), mean(&covs), mean(&secs));
        report.mining_order.push((name.into(), mean(&f1s), mean(&covs), mean(&secs)));
    }
    {
        // Snuba-lite: decision stumps over dev, used as the LF suite.
        let mut f1s = Vec::new();
        let mut covs = Vec::new();
        let mut secs = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(task, scale, seed, reservoir);
            let base = run.curation_config(seed);
            let cfg = cm_pipeline::CurationConfig { use_label_propagation: false, ..base };
            let columns = run.data.world.schema().columns_in_sets(&FeatureSet::SHARED, false);
            let t = Instant::now();
            let lfs = cm_mining::generate_stump_lfs(
                &run.data.text.table,
                &run.data.text.labels,
                &columns,
                &cm_mining::StumpConfig::default(),
            );
            let out = cm_pipeline::curate_with_lfs(&run.data, &cfg, lfs, t.elapsed());
            secs.push(t.elapsed().as_secs_f64());
            f1s.push(out.ws_quality.f1);
            covs.push(out.ws_quality.coverage);
        }
        println!(
            "{:<18} {:>7.3} {:>10.3} {:>9.2}",
            "snuba-stumps",
            mean(&f1s),
            mean(&covs),
            mean(&secs)
        );
        report.mining_order.push(("snuba-stumps".into(), mean(&f1s), mean(&covs), mean(&secs)));
    }

    // ---- 3. propagation variant + k sweep ----
    println!("\npropagation          seconds   max |Δscore| vs sync-k10");
    {
        let run = TaskRun::new(task, scale, seeds[0], Some(64));
        let d = &run.data;
        let mut columns = d.shared_columns(&sets);
        let emb = d.world.schema().column("img_embedding").unwrap();
        columns.push(emb);
        let mut combined = d.text.table.gather(&(0..d.text.len().min(2000)).collect::<Vec<_>>());
        combined.extend_from(&d.pool.table);
        let sim = SimilarityConfig::uniform(columns).fit_scales(&combined);
        let seeds_lp: Vec<(usize, f64)> =
            (0..2000.min(d.text.len())).map(|r| (r, d.text.labels[r].as_f64())).collect();
        let prop_cfg = PropagationConfig { max_iters: 50, tol: 1e-5, prior: 0.05 };
        let mut reference: Option<Vec<f64>> = None;
        for (name, k, streaming) in [
            ("sync k=10", 10usize, false),
            ("stream k=10", 10, true),
            ("sync k=5", 5, false),
            ("sync k=20", 20, false),
        ] {
            let t = Instant::now();
            let graph = GraphBuilder::approximate(k, combined.len()).build(&combined, &sim, 1);
            let scores = if streaming {
                propagate_streaming(&graph, &seeds_lp, &prop_cfg)
            } else {
                propagate(&graph, &seeds_lp, &prop_cfg)
            };
            let secs = t.elapsed().as_secs_f64();
            let delta = match &reference {
                None => {
                    reference = Some(scores);
                    0.0
                }
                Some(r) => r.iter().zip(&scores).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max),
            };
            println!("{name:<18} {secs:>9.2} {delta:>12.4}");
            report.propagation.push((name.into(), secs, delta));
        }
    }

    // ---- 4. nonservable features in LFs ----
    println!("\nLF features               end AUPRC");
    for (name, nonservable) in [("with nonservable", true), ("servable only", false)] {
        let mut aps = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(task, scale, seed, reservoir);
            let cfg =
                CurationConfig { include_nonservable: nonservable, ..run.curation_config(seed) };
            let out = curate(&run.data, &cfg);
            aps.push(run.runner().run(&end_model, Some(&out)).unwrap().auprc);
        }
        println!("{name:<24} {:>10.4}", mean(&aps));
        report.nonservable.push((name.into(), mean(&aps)));
    }
    maybe_write_json(&report);
}
