//@ path: crates/demo/src/lib.rs
// Seeded negative (lexer): banned tokens inside string literals, raw
// strings (including multi-line, any hash depth), char/byte literals,
// and nested block comments never match. These are the exact shapes the
// old per-line scanner mis-scanned.

/* A block comment mentioning v.unwrap() and panic!("boom")
   across lines, with /* a nested comment: thread::spawn */
   still inside the outer comment. */

pub fn f() -> String {
    let plain = "call .unwrap() and panic!(\"later\") maybe";
    let multi = "a string that spans
        lines and mentions x.expect(\"nothing\") and Instant::now()";
    let raw = r#"raw: v.unwrap() and "quoted" panic!("x")"#;
    let raw_multi = r##"multi-line raw string:
        table.row(0) and thread::spawn(f) and dbg!(y)
        even r#"nested-looking"# content"##;
    let byte_str = b"bytes with .unwrap() inside";
    let ch = '"';
    let byte = b'\'';
    let lifetime_ok: &'static str = "lifetimes lex fine";
    format!("{plain}{multi}{raw}{raw_multi}{byte_str:?}{ch}{byte}{lifetime_ok}")
}
