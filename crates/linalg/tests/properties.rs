//! Property-based tests for the linear-algebra kernels.

use cm_linalg::{dot, softmax_in_place, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn vector(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() <= tol, "{x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A B) C == A (B C) within float tolerance.
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 5), c in matrix(5, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-2);
    }

    /// A (B + C) == A B + A C.
    #[test]
    fn matmul_distributes(a in matrix(3, 4), b in matrix(4, 3), c in matrix(4, 3)) {
        let mut sum = b.clone();
        sum.add_assign(&c);
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        assert_close(&left, &right, 1e-3);
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_close(&left, &right, 1e-4);
    }

    /// matvec agrees with matmul against a column matrix.
    #[test]
    fn matvec_matches_matmul(a in matrix(4, 3), x in vector(3)) {
        let via_vec = a.matvec(&x);
        let col = Matrix::from_vec(3, 1, x);
        let via_mat = a.matmul(&col);
        for (i, v) in via_vec.iter().enumerate() {
            prop_assert!((v - via_mat[(i, 0)]).abs() < 1e-4);
        }
    }

    /// dot is symmetric and |dot| obeys Cauchy-Schwarz.
    #[test]
    fn dot_axioms(x in vector(6), y in vector(6)) {
        let xy = dot(&x, &y);
        let yx = dot(&y, &x);
        prop_assert!((xy - yx).abs() < 1e-4);
        let bound = cm_linalg::l2_norm(&x) * cm_linalg::l2_norm(&y);
        prop_assert!(xy.abs() <= bound * (1.0 + 1e-4) + 1e-5);
    }

    /// softmax outputs a probability vector and preserves argmax.
    #[test]
    fn softmax_is_a_distribution(mut x in vector(5)) {
        let argmax_before = cm_linalg::argmax(&x);
        softmax_in_place(&mut x);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert_eq!(cm_linalg::argmax(&x), argmax_before);
    }

    /// Frobenius norm is zero iff the matrix is zero; scaling scales it.
    #[test]
    fn frobenius_scaling(a in matrix(3, 3), s in -4.0f32..4.0) {
        let n = a.frobenius_norm();
        let mut b = a.clone();
        b.scale(s);
        prop_assert!((b.frobenius_norm() - s.abs() * n).abs() < 1e-2 * (1.0 + n));
    }
}
