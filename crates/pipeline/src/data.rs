//! Task data bundles and the shared dense view (pipeline step A, §3).

use std::collections::HashSet;

use cm_faults::{AccessLayer, AccessPolicy, FaultPlan, FaultSummary};
use cm_featurespace::{
    CmError, CmResult, DenseEncoder, ErrorKind, FeatureSet, FeatureTable, ModalityKind,
};
use cm_linalg::Matrix;
use cm_orgsim::{ModalityDataset, TaskConfig, World, WorldConfig};

/// Everything one task run needs: the world, the Table-1 datasets, and a
/// reservoir of labeled image data for fully supervised comparisons
/// (standing in for the paper's human-curated image labels).
pub struct TaskData {
    /// The generative world.
    pub world: World,
    /// Labeled old-modality corpus.
    pub text: ModalityDataset,
    /// Unlabeled new-modality pool (ground truth retained for diagnostics
    /// only).
    pub pool: ModalityDataset,
    /// Held-out labeled image test set.
    pub test: ModalityDataset,
    /// Labeled image reservoir for fully supervised baselines and Figure 5
    /// sweeps.
    pub labeled_image: ModalityDataset,
    /// Per-service fault statistics when the datasets were generated through
    /// a fault-injecting access layer; `None` on clean generation.
    pub fault_summary: Option<FaultSummary>,
}

impl TaskData {
    /// Generates a task's datasets. `n_labeled_image` sizes the fully
    /// supervised reservoir (defaults to the pool size when `None`).
    pub fn generate(task: TaskConfig, seed: u64, n_labeled_image: Option<usize>) -> Self {
        let n_labeled = n_labeled_image.unwrap_or(task.n_image_unlabeled);
        let world = World::build(WorldConfig::new(task, seed));
        let (text, pool, test) = world.generate_task_datasets(seed ^ 0xD1CE);
        let labeled_image = world.generate(ModalityKind::Image, n_labeled, seed ^ 0xBEEF);
        Self { world, text, pool, test, labeled_image, fault_summary: None }
    }

    /// Generates a task's datasets with new-modality featurization routed
    /// through a fault-injecting resilient access layer.
    ///
    /// The labeled text corpus and the labeled image reservoir are generated
    /// clean — they model *archived* organizational data, featurized before
    /// the faults under study — while the unlabeled pool and the test set
    /// (live traffic) go through the layer. Dataset seeds match
    /// [`TaskData::generate`] exactly, so with a disabled plan the result is
    /// bit-identical to clean generation.
    ///
    /// # Errors
    /// Propagates [`ErrorKind::NotFound`] / [`ErrorKind::InvalidConfig`]
    /// from [`AccessLayer::new`] on a plan naming unknown services, and any
    /// ingestion-boundary error if a corrupted value slips past the layer.
    pub fn generate_with_faults(
        task: TaskConfig,
        seed: u64,
        n_labeled_image: Option<usize>,
        plan: &FaultPlan,
        policy: AccessPolicy,
    ) -> CmResult<Self> {
        let n_labeled = n_labeled_image.unwrap_or(task.n_image_unlabeled);
        let n_pool = task.n_image_unlabeled;
        let n_test = task.n_image_test;
        let n_text = task.n_text_labeled;
        let world = World::build(WorldConfig::new(task, seed));
        // Same per-dataset seeds as `generate_task_datasets(seed ^ 0xD1CE)`.
        let ds = seed ^ 0xD1CE;
        let text = world.generate(ModalityKind::Text, n_text, ds ^ 0x1);
        let mut access = AccessLayer::new(plan, policy, &world.service_descriptors(), seed)?;
        let pool = world.generate_via(ModalityKind::Image, n_pool, ds ^ 0x2, &mut access, 0)?;
        let test = world.generate_via(
            ModalityKind::Image,
            n_test,
            ds ^ 0x3,
            &mut access,
            n_pool as u64,
        )?;
        let labeled_image = world.generate(ModalityKind::Image, n_labeled, seed ^ 0xBEEF);
        let fault_summary = access.is_enabled().then(|| access.summary());
        Ok(Self { world, text, pool, test, labeled_image, fault_summary })
    }

    /// Columns of the shared feature sets in `sets`, in schema order.
    pub fn shared_columns(&self, sets: &[FeatureSet]) -> Vec<usize> {
        self.world.schema().columns_in_sets(sets, false)
    }
}

/// A dense view: an encoder fitted over training tables for a fixed column
/// selection, so every dataset (train, pool, test) is encoded into one
/// layout.
pub struct DenseView {
    encoder: DenseEncoder,
    columns: Vec<usize>,
}

impl DenseView {
    /// Fits the view on the concatenation of `fit_tables` restricted to
    /// `columns`.
    ///
    /// # Errors
    /// Returns [`ErrorKind::InvalidConfig`] if `fit_tables` is empty and
    /// propagates [`ErrorKind::OutOfBounds`] from the encoder on column
    /// indices outside the schema.
    pub fn fit(fit_tables: &[&FeatureTable], columns: Vec<usize>) -> CmResult<Self> {
        let Some(first) = fit_tables.first() else {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                "DenseView::fit",
                "need at least one table to fit on".to_owned(),
            ));
        };
        let mut combined = FeatureTable::new(std::sync::Arc::clone(first.schema()));
        for t in fit_tables {
            combined.extend_from(t);
        }
        let encoder = DenseEncoder::fit(&combined, &columns)?;
        Ok(Self { encoder, columns })
    }

    /// Encodes a table.
    pub fn encode(&self, table: &FeatureTable) -> Matrix {
        self.encoder.transform(table)
    }

    /// The fitted encoder.
    pub fn encoder(&self) -> &DenseEncoder {
        &self.encoder
    }

    /// The source columns this view encodes.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }
}

/// Masks (marks missing) every dense slot whose source column's feature set
/// is not allowed — how a single shared layout serves scenarios where text
/// and image use different feature-set ladders (Figure 6's `T + ABC`,
/// `I + AB` steps).
pub fn mask_disallowed_sets(
    m: &mut Matrix,
    view: &DenseView,
    schema: &cm_featurespace::FeatureSchema,
    allowed: &[FeatureSet],
) {
    let allowed_sets: HashSet<FeatureSet> = allowed.iter().copied().collect();
    for slot in view.encoder().layout().slots() {
        // Slots come from a fitted encoder, so their source columns are in
        // range unless the schema was swapped out from under the view.
        let Some(def) = schema.def(slot.source_column) else {
            continue;
        };
        if allowed_sets.contains(&def.set) {
            continue;
        }
        for r in 0..m.rows() {
            let row = m.row_mut(r);
            row[slot.offset..slot.offset + slot.width].fill(0.0);
            row[slot.missing_indicator] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use cm_orgsim::TaskId;

    use super::*;

    fn data() -> TaskData {
        TaskData::generate(cm_orgsim::TaskConfig::paper(TaskId::Ct1).scaled(0.01), 3, Some(100))
    }

    #[test]
    fn generate_builds_all_datasets() {
        let d = data();
        assert!(d.text.len() >= 64);
        assert!(d.pool.len() >= 64);
        assert!(d.test.len() >= 64);
        assert_eq!(d.labeled_image.len(), 100);
        assert_eq!(d.text.modality, ModalityKind::Text);
        assert_eq!(d.labeled_image.modality, ModalityKind::Image);
    }

    #[test]
    fn generate_with_faults_disabled_matches_generate() {
        let task = cm_orgsim::TaskConfig::paper(TaskId::Ct1).scaled(0.01);
        let clean = TaskData::generate(task.clone(), 3, Some(100));
        let via = TaskData::generate_with_faults(
            task,
            3,
            Some(100),
            &FaultPlan::disabled(),
            AccessPolicy::default(),
        )
        .unwrap();
        assert!(via.fault_summary.is_none());
        for (a, b) in [
            (&clean.text, &via.text),
            (&clean.pool, &via.pool),
            (&clean.test, &via.test),
            (&clean.labeled_image, &via.labeled_image),
        ] {
            assert_eq!(a.labels, b.labels);
            for r in 0..a.len() {
                assert_eq!(a.table.row(r), b.table.row(r));
            }
        }
    }

    #[test]
    fn generate_with_faults_records_a_summary() {
        let task = cm_orgsim::TaskConfig::paper(TaskId::Ct1).scaled(0.01);
        let plan = FaultPlan::parse("seed=9;topics=unavailable@0.8;keywords=transient(1)").unwrap();
        let d = TaskData::generate_with_faults(task, 3, Some(50), &plan, AccessPolicy::default())
            .unwrap();
        let summary = d.fault_summary.expect("enabled plan must record a summary");
        assert_eq!(summary.seed, 9);
        assert_eq!(summary.services.len(), 2);
        let topics = summary.services.iter().find(|s| s.name == "topics").unwrap();
        assert!(topics.calls > 0);
        assert!(topics.faulted > 0);
    }

    #[test]
    fn shared_columns_exclude_modality_specific() {
        let d = data();
        let cols = d.shared_columns(&FeatureSet::SHARED);
        assert_eq!(cols.len(), 15);
        let emb = d.world.schema().column("img_embedding").unwrap();
        assert!(!cols.contains(&emb));
    }

    #[test]
    fn dense_view_round_trip() {
        let d = data();
        let cols = d.shared_columns(&[FeatureSet::A]);
        let view = DenseView::fit(&[&d.text.table, &d.pool.table], cols.clone()).unwrap();
        let xt = view.encode(&d.text.table);
        let xi = view.encode(&d.pool.table);
        assert_eq!(xt.cols(), xi.cols());
        assert_eq!(xt.rows(), d.text.len());
        assert_eq!(view.columns(), &cols[..]);
    }

    #[test]
    fn masking_blanks_disallowed_sets() {
        let d = data();
        let cols = d.shared_columns(&[FeatureSet::A, FeatureSet::B]);
        let view = DenseView::fit(&[&d.text.table], cols).unwrap();
        let mut m = view.encode(&d.text.table);
        let before = m.clone();
        mask_disallowed_sets(&mut m, &view, d.world.schema(), &[FeatureSet::A]);
        // Set-B slots must now be all-missing.
        let schema = d.world.schema();
        let mut changed = false;
        for slot in view.encoder().layout().slots() {
            let set = schema.def(slot.source_column).unwrap().set;
            for r in 0..m.rows() {
                if set == FeatureSet::B {
                    assert_eq!(m[(r, slot.missing_indicator)], 1.0);
                    for c in slot.offset..slot.offset + slot.width {
                        assert_eq!(m[(r, c)], 0.0);
                    }
                } else {
                    for c in slot.offset..=slot.missing_indicator {
                        assert_eq!(m[(r, c)], before[(r, c)]);
                    }
                }
            }
            changed |= set == FeatureSet::B;
        }
        assert!(changed, "fixture must contain set-B columns");
    }
}
