//! The generative label model: estimates LF accuracies from agreement
//! structure and produces probabilistic labels (§4.1, step 3).
//!
//! This is the conditionally-independent Snorkel model (the one Snorkel
//! Drybell deploys): each LF has an abstain propensity and an accuracy;
//! given the true label, votes are independent. Parameters are fitted with
//! EM; probabilistic labels are the E-step posteriors at convergence.

use cm_linalg::StableSum;
use cm_par::ParConfig;

use crate::matrix::LabelMatrix;

/// Below this many vote cells (`rows * LFs`) the EM fit stays on the serial
/// code path regardless of the requested thread count, so small fits never
/// pay spawn overhead and path selection depends only on input size.
const EM_PAR_THRESHOLD: usize = 50_000;

/// Minimum rows per chunk for the parallel EM steps. Part of the chunk
/// plan, so it must not depend on the thread count.
const EM_MIN_ROWS_PER_CHUNK: usize = 256;

/// Configuration for [`GenerativeModel::fit`].
#[derive(Debug, Clone)]
pub struct GenerativeConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on mean absolute posterior change.
    pub tol: f64,
    /// Class prior `P(y = 1)`. `Some(p)` keeps it fixed (the paper knows
    /// task positive rates from the old modality); `None` re-estimates it
    /// each M-step.
    pub class_prior: Option<f64>,
    /// Initial LF accuracy.
    pub init_accuracy: f64,
    /// Accuracy clamp range, enforcing Snorkel's better-than-random
    /// assumption and numeric safety.
    pub accuracy_bounds: (f64, f64),
}

impl Default for GenerativeConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
            class_prior: None,
            init_accuracy: 0.7,
            accuracy_bounds: (0.55, 0.995),
        }
    }
}

/// Mergeable sufficient statistics of one EM iteration: per-LF agreement
/// mass and vote totals (the M-step numerators/denominators), plus the
/// posterior sum (prior update) and absolute posterior delta (convergence).
///
/// Float masses live in [`StableSum`] superaccumulators and totals are
/// integers, so `merge` is exact — associative and commutative. Folding
/// per-chunk or per-shard moments in any order and then rendering yields
/// bit-identical parameters to a whole-matrix pass, which is what lets the
/// sharded curation layer fit the label model out of core.
#[derive(Debug, Clone)]
pub struct EmMoments {
    agree: Vec<StableSum>,
    total: Vec<u64>,
    delta: StableSum,
    posterior_sum: StableSum,
    n_rows: u64,
}

impl EmMoments {
    /// An empty accumulator for `n_lfs` labeling functions.
    pub fn new(n_lfs: usize) -> Self {
        Self {
            agree: vec![StableSum::new(); n_lfs],
            total: vec![0; n_lfs],
            delta: StableSum::new(),
            posterior_sum: StableSum::new(),
            n_rows: 0,
        }
    }

    /// Folds one row into the moments: `fresh` is this iteration's E-step
    /// posterior for the row, `previous` the posterior it replaces.
    ///
    /// # Panics
    /// Panics if the vote width differs from the accumulator's LF count.
    pub fn observe_row(&mut self, votes: &[i8], fresh: f64, previous: f64) {
        assert_eq!(votes.len(), self.total.len(), "LF count mismatch");
        self.n_rows += 1;
        self.delta.add((fresh - previous).abs());
        self.posterior_sum.add(fresh);
        for (j, &v) in votes.iter().enumerate() {
            if v != 0 {
                self.total[j] += 1;
                self.agree[j].add(if v > 0 { fresh } else { 1.0 - fresh });
            }
        }
    }

    /// Exact merge of another accumulator into this one.
    ///
    /// # Panics
    /// Panics if the LF counts differ.
    pub fn merge(&mut self, other: &EmMoments) {
        assert_eq!(self.total.len(), other.total.len(), "LF count mismatch");
        for (a, b) in self.agree.iter_mut().zip(&other.agree) {
            a.merge(b);
        }
        for (t, o) in self.total.iter_mut().zip(&other.total) {
            *t += *o;
        }
        self.delta.merge(&other.delta);
        self.posterior_sum.merge(&other.posterior_sum);
        self.n_rows += other.n_rows;
    }

    /// Rows folded in so far.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// The M-step accuracy estimate for LF `j`, or `None` if it abstained
    /// everywhere (its accuracy then stays at the previous value).
    pub fn accuracy(&self, j: usize) -> Option<f64> {
        (self.total[j] > 0).then(|| self.agree[j].value() / self.total[j] as f64)
    }

    /// Mean posterior (the re-estimated class prior), or `None` on zero rows.
    pub fn mean_posterior(&self) -> Option<f64> {
        (self.n_rows > 0).then(|| self.posterior_sum.value() / self.n_rows as f64)
    }

    /// Mean absolute posterior change this iteration (convergence metric),
    /// or `None` on zero rows.
    pub fn mean_delta(&self) -> Option<f64> {
        (self.n_rows > 0).then(|| self.delta.value() / self.n_rows as f64)
    }
}

/// A fitted generative label model.
#[derive(Debug, Clone)]
pub struct GenerativeModel {
    accuracies: Vec<f64>,
    class_prior: f64,
    iterations: usize,
}

/// Parameters carried from one fit into the next: the warm start of a
/// mini-batch EM refit in the incremental curation loop. Seeding the next
/// fit from the previous posterior's parameters means a handful of refit
/// iterations keep tracking the vote distribution instead of re-deriving
/// it from scratch on every arrival batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Per-LF accuracies from the previous fit (clamped to the new fit's
    /// accuracy bounds before use).
    pub accuracies: Vec<f64>,
    /// Class prior from the previous fit.
    pub class_prior: f64,
}

impl GenerativeModel {
    /// Fits the model on a label matrix with EM.
    ///
    /// # Panics
    /// Panics if the matrix has no LFs.
    pub fn fit(matrix: &LabelMatrix, config: &GenerativeConfig) -> Self {
        Self::fit_with(matrix, config, &ParConfig::from_env())
    }

    /// [`GenerativeModel::fit`] with an explicit parallel configuration.
    ///
    /// Produces bit-identical parameters and posteriors for any thread
    /// count: every float reduction lives in an exact [`StableSum`]
    /// superaccumulator (via [`EmMoments`]), so neither the chunk plan nor
    /// the worker count can perturb a single bit. The resident fit is the
    /// single-segment case of [`GenerativeModel::fit_segments`].
    ///
    /// # Panics
    /// Panics if the matrix has no LFs.
    pub fn fit_with(matrix: &LabelMatrix, config: &GenerativeConfig, par: &ParConfig) -> Self {
        Self::fit_segments(&[matrix], config, par)
    }

    /// Fits the model on a row-partitioned label matrix, segment by
    /// segment — the out-of-core entry point used by the sharded curation
    /// layer.
    ///
    /// Each EM iteration makes one fused E+M pass per segment: row
    /// posteriors are recomputed from the current parameters (row-local,
    /// so unaffected by partitioning) and folded into [`EmMoments`], whose
    /// merge is exact. Parameters, iteration count, and convergence are
    /// therefore **bit-identical for any segmentation** of the same rows —
    /// `fit_segments(&[a, b, c], ..)` equals `fit_with(&concat(a, b, c), ..)`
    /// at every shard size and thread count.
    ///
    /// # Panics
    /// Panics if there are no LFs or the segments disagree on LF count.
    pub fn fit_segments(
        segments: &[&LabelMatrix],
        config: &GenerativeConfig,
        par: &ParConfig,
    ) -> Self {
        Self::fit_segments_warm(segments, config, None, par)
    }

    /// [`GenerativeModel::fit_segments`] with an optional warm start: the
    /// EM iteration begins from the given `(accuracies, prior)` instead of
    /// `config.init_accuracy`. With `None` this is exactly the cold fit.
    /// The incremental serving loop passes the previous batch's parameters
    /// here together with a small `config.max_iters`, turning the full EM
    /// into a mini-batch refit.
    ///
    /// A fixed `config.class_prior` still wins over the warm start's prior
    /// (the caller pinned it on purpose).
    ///
    /// # Panics
    /// Panics if there are no LFs, the segments disagree on LF count, or
    /// the warm start's accuracy count differs from the matrix's LF count.
    pub fn fit_segments_warm(
        segments: &[&LabelMatrix],
        config: &GenerativeConfig,
        warm: Option<&WarmStart>,
        par: &ParConfig,
    ) -> Self {
        let n_lfs = segments.first().map_or(0, |m| m.n_lfs());
        assert!(n_lfs > 0, "cannot fit a generative model with zero LFs");
        assert!(segments.iter().all(|m| m.n_lfs() == n_lfs), "segments disagree on LF count");
        let (lo, hi) = config.accuracy_bounds;
        assert!(lo > 0.5 && hi < 1.0 && lo < hi, "invalid accuracy bounds");
        let total_rows: usize = segments.iter().map(|m| m.n_rows()).sum();
        let mut accuracies = match warm {
            Some(w) => {
                assert_eq!(w.accuracies.len(), n_lfs, "warm start LF count mismatch");
                w.accuracies.iter().map(|a| a.clamp(lo, hi)).collect()
            }
            None => vec![config.init_accuracy.clamp(lo, hi); n_lfs],
        };
        let mut prior = config
            .class_prior
            .or(warm.map(|w| w.class_prior))
            .unwrap_or(0.5)
            .clamp(1e-4, 1.0 - 1e-4);

        // Size-only gate on the whole corpus: small fits run the serial
        // plan, big ones run the caller's plan. Exact accumulation makes
        // the choice invisible in the output either way.
        let par = if total_rows * n_lfs < EM_PAR_THRESHOLD {
            ParConfig::serial().with_min_chunk(EM_MIN_ROWS_PER_CHUNK)
        } else {
            par.clone().with_min_chunk(EM_MIN_ROWS_PER_CHUNK)
        };

        let mut posteriors: Vec<Vec<f64>> =
            segments.iter().map(|m| vec![0.5f64; m.n_rows()]).collect();
        let mut iterations = 0;
        for iter in 0..config.max_iters {
            iterations = iter + 1;
            let mut moments = EmMoments::new(n_lfs);
            for (seg, post) in segments.iter().zip(posteriors.iter_mut()) {
                // Fused E+M pass: per-chunk fresh posteriors plus moment
                // partials, merged exactly.
                let chunks = cm_par::par_map_chunks(&par, seg.n_rows(), |range| {
                    let mut fresh = Vec::with_capacity(range.len());
                    let mut part = EmMoments::new(n_lfs);
                    for r in range {
                        let q = posterior_for_row(seg.row(r), &accuracies, prior);
                        part.observe_row(seg.row(r), q, post[r]);
                        fresh.push(q);
                    }
                    (fresh, part)
                })
                .unwrap_or_else(|e| e.resume());
                let mut offset = 0usize;
                for (fresh, part) in chunks {
                    post[offset..offset + fresh.len()].copy_from_slice(&fresh);
                    offset += fresh.len();
                    moments.merge(&part);
                }
            }
            for (j, acc) in accuracies.iter_mut().enumerate() {
                if let Some(a) = moments.accuracy(j) {
                    *acc = a.clamp(lo, hi);
                }
            }
            if config.class_prior.is_none() {
                if let Some(p) = moments.mean_posterior() {
                    prior = p.clamp(1e-4, 1.0 - 1e-4);
                }
            }
            let delta = moments.mean_delta().unwrap_or(0.0);
            if delta < config.tol && iter > 0 {
                break;
            }
        }
        Self { accuracies, class_prior: prior, iterations }
    }

    /// Estimated LF accuracies.
    pub fn accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    /// Estimated (or fixed) class prior.
    pub fn class_prior(&self) -> f64 {
        self.class_prior
    }

    /// EM iterations run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The fitted parameters, packaged to seed the next refit.
    pub fn warm_start(&self) -> WarmStart {
        WarmStart { accuracies: self.accuracies.clone(), class_prior: self.class_prior }
    }

    /// Reconstruct a model from previously fitted parameters (checkpoint
    /// restore). The model predicts exactly as the original did.
    pub fn from_params(accuracies: Vec<f64>, class_prior: f64, iterations: usize) -> Self {
        assert!(!accuracies.is_empty(), "model needs at least one LF accuracy");
        GenerativeModel { accuracies, class_prior, iterations }
    }

    /// Probabilistic labels for a (possibly different) label matrix.
    ///
    /// Rows where every LF abstains get the class prior.
    ///
    /// # Panics
    /// Panics if the LF count differs from the fitted matrix.
    pub fn predict(&self, matrix: &LabelMatrix) -> Vec<f64> {
        self.predict_with(matrix, &ParConfig::from_env())
    }

    /// [`GenerativeModel::predict`] with an explicit parallel configuration.
    /// Posteriors are row-independent, so any thread count yields the same
    /// bits; small matrices stay serial.
    ///
    /// # Panics
    /// Panics if the LF count differs from the fitted matrix.
    pub fn predict_with(&self, matrix: &LabelMatrix, par: &ParConfig) -> Vec<f64> {
        assert_eq!(matrix.n_lfs(), self.accuracies.len(), "LF count mismatch");
        if matrix.n_rows() * matrix.n_lfs() < EM_PAR_THRESHOLD {
            return (0..matrix.n_rows())
                .map(|r| posterior_for_row(matrix.row(r), &self.accuracies, self.class_prior))
                .collect();
        }
        cm_par::par_map(&par.clone().with_min_chunk(EM_MIN_ROWS_PER_CHUNK), matrix.n_rows(), |r| {
            posterior_for_row(matrix.row(r), &self.accuracies, self.class_prior)
        })
        .unwrap_or_else(|e| e.resume())
    }
}

/// `P(y = 1 | votes)` under the independent model.
fn posterior_for_row(votes: &[i8], accuracies: &[f64], prior: f64) -> f64 {
    let mut log_pos = prior.ln();
    let mut log_neg = (1.0 - prior).ln();
    let mut any = false;
    for (&v, &a) in votes.iter().zip(accuracies) {
        match v {
            1 => {
                any = true;
                log_pos += a.ln();
                log_neg += (1.0 - a).ln();
            }
            -1 => {
                any = true;
                log_pos += (1.0 - a).ln();
                log_neg += a.ln();
            }
            _ => {}
        }
    }
    if !any {
        return prior;
    }
    let m = log_pos.max(log_neg);
    let pos = (log_pos - m).exp();
    let neg = (log_neg - m).exp();
    pos / (pos + neg)
}

/// Majority-vote baseline: mean of non-abstain votes mapped to `[0, 1]`;
/// rows with no votes get 0.5.
pub fn majority_vote(matrix: &LabelMatrix) -> Vec<f64> {
    (0..matrix.n_rows())
        .map(|r| {
            let row = matrix.row(r);
            let n = row.iter().filter(|&&v| v != 0).count();
            if n == 0 {
                return 0.5;
            }
            let sum: i32 = row.iter().map(|&v| i32::from(v)).sum();
            if sum > 0 {
                1.0
            } else if sum < 0 {
                0.0
            } else {
                0.5
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use cm_linalg::rng::Rng;
    use cm_linalg::rng::StdRng;

    use super::*;

    /// Builds a synthetic label matrix: `n` rows with true labels at the
    /// given positive rate, and LFs with the given accuracies/propensities.
    fn synthetic(
        n: usize,
        pos_rate: f64,
        lf_specs: &[(f64, f64)], // (accuracy, propensity)
        seed: u64,
    ) -> (LabelMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut votes = Vec::with_capacity(n * lf_specs.len());
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.gen::<f64>() < pos_rate;
            truth.push(y);
            for &(acc, prop) in lf_specs {
                let v = if rng.gen::<f64>() >= prop {
                    0
                } else {
                    let correct = rng.gen::<f64>() < acc;
                    match (y, correct) {
                        (true, true) | (false, false) => 1,
                        _ => -1,
                    }
                };
                votes.push(v);
            }
        }
        let names = (0..lf_specs.len()).map(|i| format!("lf{i}")).collect();
        (LabelMatrix::from_votes(n, lf_specs.len(), votes, names), truth)
    }

    #[test]
    fn em_recovers_accuracy_ordering() {
        let (m, _) = synthetic(5000, 0.3, &[(0.95, 0.8), (0.7, 0.8), (0.6, 0.8)], 1);
        let model = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let acc = model.accuracies();
        assert!(acc[0] > acc[1], "acc {acc:?}");
        assert!(acc[1] > acc[2], "acc {acc:?}");
        assert!((acc[0] - 0.95).abs() < 0.08, "acc0 {}", acc[0]);
    }

    #[test]
    fn posterior_beats_majority_vote_with_unequal_lfs() {
        let (m, truth) = synthetic(8000, 0.4, &[(0.95, 0.9), (0.56, 0.9), (0.56, 0.9)], 2);
        let model = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let probs = model.predict(&m);
        let mv = majority_vote(&m);
        let err = |pred: &[f64]| -> f64 {
            pred.iter()
                .zip(&truth)
                .filter(|(p, _)| **p != 0.5)
                .map(|(p, &t)| if (*p >= 0.5) == t { 0.0 } else { 1.0 })
                .sum::<f64>()
        };
        assert!(
            err(&probs) < err(&mv),
            "generative err {} !< majority err {}",
            err(&probs),
            err(&mv)
        );
    }

    #[test]
    fn prior_estimation_tracks_true_rate() {
        let (m, truth) = synthetic(10_000, 0.15, &[(0.9, 0.9), (0.85, 0.9)], 3);
        let model = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let true_rate = truth.iter().filter(|&&t| t).count() as f64 / truth.len() as f64;
        assert!(
            (model.class_prior() - true_rate).abs() < 0.05,
            "prior {} vs true {}",
            model.class_prior(),
            true_rate
        );
    }

    #[test]
    fn fixed_prior_is_respected() {
        let (m, _) = synthetic(1000, 0.3, &[(0.9, 0.9)], 4);
        let cfg = GenerativeConfig { class_prior: Some(0.2), ..Default::default() };
        let model = GenerativeModel::fit(&m, &cfg);
        assert_eq!(model.class_prior(), 0.2);
    }

    #[test]
    fn all_abstain_rows_get_prior() {
        let m = LabelMatrix::from_votes(2, 1, vec![0, 1], vec!["a".into()]);
        let cfg = GenerativeConfig { class_prior: Some(0.25), ..Default::default() };
        let model = GenerativeModel::fit(&m, &cfg);
        let probs = model.predict(&m);
        assert_eq!(probs[0], 0.25);
        // A single positive vote lifts the posterior above the prior (the
        // degenerate 2-row matrix can't push it past 0.5).
        assert!(probs[1] > probs[0]);
    }

    #[test]
    fn majority_vote_ties_and_empty() {
        let m =
            LabelMatrix::from_votes(3, 2, vec![1, -1, 1, 0, 0, 0], vec!["a".into(), "b".into()]);
        let mv = majority_vote(&m);
        assert_eq!(mv, vec![0.5, 1.0, 0.5]);
    }

    #[test]
    fn fit_is_deterministic() {
        let (m, _) = synthetic(2000, 0.3, &[(0.9, 0.8), (0.7, 0.8)], 5);
        let a = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let b = GenerativeModel::fit(&m, &GenerativeConfig::default());
        assert_eq!(a.accuracies(), b.accuracies());
        assert_eq!(a.predict(&m), b.predict(&m));
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        // 20k rows x 3 LFs = 60k cells, above the parallel threshold.
        let (m, _) = synthetic(20_000, 0.3, &[(0.9, 0.8), (0.7, 0.8), (0.6, 0.5)], 11);
        let cfg = GenerativeConfig::default();
        let base = GenerativeModel::fit_with(&m, &cfg, &ParConfig::threads(1));
        let base_probs = base.predict_with(&m, &ParConfig::threads(1));
        for threads in [2usize, 4, 8] {
            let par = ParConfig::threads(threads);
            let model = GenerativeModel::fit_with(&m, &cfg, &par);
            assert_eq!(model.accuracies(), base.accuracies(), "threads = {threads}");
            assert_eq!(
                model.class_prior().to_bits(),
                base.class_prior().to_bits(),
                "threads = {threads}"
            );
            assert_eq!(model.iterations(), base.iterations(), "threads = {threads}");
            let probs = model.predict_with(&m, &par);
            assert_eq!(probs, base_probs, "threads = {threads}");
        }
    }

    /// The out-of-core contract: fitting segment-by-segment must reproduce
    /// the whole-matrix fit bit for bit, for any cut pattern and any
    /// thread count.
    #[test]
    fn fit_segments_matches_whole_fit_bitwise() {
        let (m, _) = synthetic(20_000, 0.3, &[(0.9, 0.8), (0.7, 0.8), (0.6, 0.5)], 11);
        let cfg = GenerativeConfig::default();
        let whole = GenerativeModel::fit_with(&m, &cfg, &ParConfig::threads(2));
        let split = |cuts: &[usize]| -> Vec<LabelMatrix> {
            let mut segs = Vec::new();
            let mut start = 0;
            for &end in cuts.iter().chain([&m.n_rows()]) {
                let mut votes = Vec::new();
                for r in start..end {
                    votes.extend_from_slice(m.row(r));
                }
                segs.push(LabelMatrix::from_votes(
                    end - start,
                    m.n_lfs(),
                    votes,
                    m.names().to_vec(),
                ));
                start = end;
            }
            segs
        };
        for cuts in [vec![1usize], vec![8192], vec![4999, 10_000, 15_000], vec![m.n_rows()]] {
            let segs = split(&cuts);
            for threads in [1usize, 2, 4] {
                let refs: Vec<&LabelMatrix> = segs.iter().collect();
                let model =
                    GenerativeModel::fit_segments(&refs, &cfg, &ParConfig::threads(threads));
                assert_eq!(
                    model.accuracies(),
                    whole.accuracies(),
                    "cuts = {cuts:?}, threads = {threads}"
                );
                assert_eq!(model.class_prior().to_bits(), whole.class_prior().to_bits());
                assert_eq!(model.iterations(), whole.iterations());
            }
        }
    }

    #[test]
    fn em_moments_merge_is_order_free() {
        let (m, _) = synthetic(300, 0.3, &[(0.9, 0.8), (0.7, 0.6)], 13);
        let part = |start: usize, end: usize| {
            let mut p = EmMoments::new(m.n_lfs());
            for r in start..end {
                // Any deterministic (fresh, previous) pair exercises all
                // accumulator fields.
                let q = 0.25 + 0.5 * (r % 7) as f64 / 7.0;
                p.observe_row(m.row(r), q, 0.5);
            }
            p
        };
        let (a, b, c) = (part(0, 100), part(100, 170), part(170, 300));
        let mut fwd = EmMoments::new(m.n_lfs());
        fwd.merge(&a);
        fwd.merge(&b);
        fwd.merge(&c);
        let mut rev = EmMoments::new(m.n_lfs());
        rev.merge(&c);
        rev.merge(&a);
        rev.merge(&b);
        assert_eq!(fwd.n_rows(), 300);
        assert_eq!(fwd.n_rows(), rev.n_rows());
        for j in 0..m.n_lfs() {
            assert_eq!(fwd.accuracy(j).map(f64::to_bits), rev.accuracy(j).map(f64::to_bits));
        }
        assert_eq!(fwd.mean_posterior().map(f64::to_bits), rev.mean_posterior().map(f64::to_bits));
        assert_eq!(fwd.mean_delta().map(f64::to_bits), rev.mean_delta().map(f64::to_bits));
    }

    #[test]
    #[should_panic(expected = "zero LFs")]
    fn fit_rejects_empty_lf_set() {
        let m = LabelMatrix::from_votes(1, 0, vec![], vec![]);
        GenerativeModel::fit(&m, &GenerativeConfig::default());
    }

    #[test]
    #[should_panic(expected = "LF count mismatch")]
    fn predict_rejects_mismatched_matrix() {
        let (m, _) = synthetic(100, 0.3, &[(0.9, 0.9)], 6);
        let model = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let (m2, _) = synthetic(100, 0.3, &[(0.9, 0.9), (0.8, 0.9)], 7);
        model.predict(&m2);
    }

    /// A warm start built from the cold-start constants must reproduce the
    /// cold fit bit for bit — the warm path is the cold path with
    /// different initial numbers, not a different algorithm.
    #[test]
    fn warm_start_at_cold_init_matches_cold_fit_bitwise() {
        let (m, _) = synthetic(5000, 0.3, &[(0.9, 0.8), (0.7, 0.8), (0.6, 0.5)], 17);
        let cfg = GenerativeConfig::default();
        let (lo, hi) = cfg.accuracy_bounds;
        let warm = WarmStart {
            accuracies: vec![cfg.init_accuracy.clamp(lo, hi); m.n_lfs()],
            class_prior: 0.5,
        };
        for threads in [1usize, 4] {
            let par = ParConfig::threads(threads);
            let cold = GenerativeModel::fit_with(&m, &cfg, &par);
            let warmed = GenerativeModel::fit_segments_warm(&[&m], &cfg, Some(&warm), &par);
            assert_eq!(cold.accuracies(), warmed.accuracies(), "threads = {threads}");
            assert_eq!(cold.class_prior().to_bits(), warmed.class_prior().to_bits());
            assert_eq!(cold.iterations(), warmed.iterations());
        }
    }

    /// Refitting from a converged model's own parameters converges almost
    /// immediately and lands near where it started: the mini-batch refit
    /// contract the serving loop relies on.
    #[test]
    fn warm_started_refit_converges_faster_and_stays_close() {
        let (m, _) = synthetic(20_000, 0.3, &[(0.9, 0.8), (0.7, 0.8), (0.6, 0.5)], 11);
        let cfg = GenerativeConfig::default();
        let par = ParConfig::threads(2);
        let cold = GenerativeModel::fit_with(&m, &cfg, &par);
        let warm = cold.warm_start();
        let refit = GenerativeModel::fit_segments_warm(&[&m], &cfg, Some(&warm), &par);
        assert!(
            refit.iterations() < cold.iterations(),
            "warm refit took {} iterations, cold fit {}",
            refit.iterations(),
            cold.iterations()
        );
        for (a, b) in cold.accuracies().iter().zip(refit.accuracies()) {
            assert!((a - b).abs() < 1e-3, "accuracy drifted: {a} vs {b}");
        }
        assert!((cold.class_prior() - refit.class_prior()).abs() < 1e-3);
    }

    /// A model rebuilt from its exported parameters predicts identically —
    /// the checkpoint restore contract.
    #[test]
    fn from_params_round_trips_predictions() {
        let (m, _) = synthetic(3000, 0.2, &[(0.9, 0.7), (0.8, 0.5), (0.6, 0.3)], 8);
        let model = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let rebuilt = GenerativeModel::from_params(
            model.accuracies().to_vec(),
            model.class_prior(),
            model.iterations(),
        );
        assert_eq!(model.predict(&m), rebuilt.predict(&m));
        assert_eq!(model.warm_start(), rebuilt.warm_start());
    }

    #[test]
    #[should_panic(expected = "warm start LF count mismatch")]
    fn warm_start_rejects_wrong_lf_count() {
        let (m, _) = synthetic(100, 0.3, &[(0.9, 0.9), (0.8, 0.8)], 6);
        let warm = WarmStart { accuracies: vec![0.7], class_prior: 0.5 };
        GenerativeModel::fit_segments_warm(
            &[&m],
            &GenerativeConfig::default(),
            Some(&warm),
            &ParConfig::serial(),
        );
    }

    #[test]
    fn posteriors_are_probabilities() {
        let (m, _) = synthetic(3000, 0.2, &[(0.9, 0.7), (0.8, 0.5), (0.6, 0.3)], 8);
        let model = GenerativeModel::fit(&m, &GenerativeConfig::default());
        for p in model.predict(&m) {
            assert!((0.0..=1.0).contains(&p), "posterior {p} out of range");
            assert!(!p.is_nan());
        }
    }
}
