//! Minimal JSON for a hermetic workspace.
//!
//! The repository builds with zero registry access, so the small
//! `serde`/`serde_json` surface it used — result writers in `cm-bench`,
//! schema/report round-trips — is served by this dependency-free crate: a
//! [`Json`] value type, a compact and a pretty writer, a recursive-descent
//! parser, and a [`ToJson`] conversion trait.
//!
//! Object keys keep insertion order so emitted reports diff cleanly.

use std::fmt::Write as _;

pub mod spanned;

pub use spanned::{JsonNode, NodeKind, ObjEntry};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array by converting each element.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a usize, if this is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    item.write(out, indent, depth + 1);
                }
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, pairs.is_empty(), '{', '}', |out| {
                for (i, (k, v)) in pairs.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
            }),
        }
    }

    /// Parses a JSON document (one top-level value, trailing whitespace ok).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like most lenient writers.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

pub(crate) struct Parser<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl Parser<'_> {
    pub(crate) fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    pub(crate) fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub(crate) fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    pub(crate) fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        // Surrogate pair handling for \uD800-\uDBFF followed by \uDC00-\uDFFF.
        if (0xD800..0xDC00).contains(&code) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        self.number_f64().map(Json::Num)
    }

    pub(crate) fn number_f64(&mut self) -> Result<f64, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map_err(|_| JsonError { message: format!("invalid number {text:?}"), offset: start })
    }
}

/// Conversion into a [`Json`] value; the hermetic stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_tojson_int!(usize, u64, u32, i64, i32);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! impl_tuple_to_json {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}

impl_tuple_to_json!(A: 0, B: 1);
impl_tuple_to_json!(A: 0, B: 1, C: 2);
impl_tuple_to_json!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3.25", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text);
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::obj([
            ("name", Json::Str("ct1".into())),
            ("auprc", Json::Num(0.5125)),
            ("seeds", Json::arr([1usize, 2, 3])),
            ("nested", Json::obj([("empty", Json::Arr(vec![])), ("null", Json::Null)])),
        ]);
        let compact = v.to_string_compact();
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"name\": \"ct1\""));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("line\nbreak \"quote\" \\slash\ttab \u{1}".into());
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("\u{1F600}".into()));
    }

    #[test]
    fn object_lookup_and_order() {
        let v = Json::parse(r#"{"b": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("missing"), None);
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"], "object keys keep insertion order");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }
}
