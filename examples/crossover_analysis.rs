//! Cross-over analysis (the Figure 5 question): how many hand-labeled
//! images would the team need before a classic fully supervised pipeline
//! beats the cross-modal one they can ship today?
//!
//! ```sh
//! cargo run --release --example crossover_analysis
//! ```

use cross_modal::prelude::*;

fn main() {
    let task = TaskConfig::paper(TaskId::Ct2).scaled(0.1);
    let data = TaskData::generate(task, 11, Some(4_000));
    let curation = curate(&data, &CurationConfig::default());
    let runner = ScenarioRunner {
        data: &data,
        model: ModelKind::Mlp { hidden: vec![32] },
        train: TrainConfig { epochs: 20, patience: None, ..TrainConfig::default() },
    };
    let sets = FeatureSet::SHARED;
    let cross = runner.run(&Scenario::cross_modal(&sets), Some(&curation)).unwrap();
    println!("cross-modal pipeline (0 hand labels): AUPRC {:.4}\n", cross.auprc);

    println!("{:>12} {:>10} {:>16}", "hand labels", "AUPRC", "vs cross-modal");
    let mut curve = Vec::new();
    for n in [100usize, 250, 500, 1000, 2000, 4000] {
        if n > data.labeled_image.len() {
            break;
        }
        let eval = runner.run(&Scenario::fully_supervised(&sets, n), None).unwrap();
        let cmp = if eval.auprc >= cross.auprc { "ahead" } else { "behind" };
        println!("{n:>12} {:>10.4} {cmp:>16}", eval.auprc);
        curve.push((n as f64, eval.auprc));
    }

    match find_crossover(&CrossoverSeries::new(curve), cross.auprc) {
        Some(n) => println!(
            "\ncross-over at ~{n:.0} hand-labeled images: below that budget, ship the\n\
             cross-modal pipeline today and label later (the paper's days-vs-months claim)."
        ),
        None => println!(
            "\nno cross-over within the swept budget: the cross-modal pipeline wins\n\
             everywhere we measured."
        ),
    }
}
