//! # cm-shard
//!
//! Sharded out-of-core curation: fixed-size column segments streamed under
//! an explicit memory budget, with per-shard sufficient statistics merged
//! deterministically in shard-index order.
//!
//! The resident curation path (`cm-pipeline::curate`) holds the whole
//! unlabeled pool in one [`cm_featurespace::FeatureTable`]. The paper's
//! pools are tens of millions of rows; this crate provides the discipline
//! that lets curation scale past resident memory while staying
//! **bit-identical** to the resident path at any shard size and any
//! `CM_THREADS`:
//!
//! - [`config`] — `CM_SHARD_ROWS` / `CM_MEM_BUDGET` knobs ([`ShardConfig`],
//!   [`MemBudget`]) and the [`MemTracker`] that charges every held
//!   allocation against the budget and records the peak;
//! - [`corpus`] — [`SegmentedCorpus`]: a logical row range assembled from
//!   resident head tables plus an `orgsim` generation stream, emitted as
//!   fixed-size segments, re-streamable for multi-pass algorithms;
//! - [`knn`] — the sharded k-NN graph builder and segmented similarity
//!   scale fit, replaying `cm-propagation`'s exact and anchor plans over
//!   segment sweeps so the edges (and hence propagation scores) match the
//!   resident builder bit for bit.
//!
//! Bit-identity rests on the substrates refactored alongside this crate:
//! every reduction the pipeline performs over rows (LF vote counts,
//! anchored rate counts, EM moments, Apriori supports, similarity scale
//! fits) is an explicit associative-merge type whose resident computation
//! is *defined* as the single-segment case, with exact ([`u64`] /
//! `StableSum`) arithmetic making the merge independent of segmentation.

pub mod config;
pub mod corpus;
pub mod knn;

pub use config::{MemBudget, MemTracker, ShardConfig};
pub use corpus::{for_each_pool_segment, SegmentedCorpus, StreamSpec};
pub use knn::{build_graph_sharded, fit_scales_sharded};
