//! Densification of the common feature space into model-ready matrices.
//!
//! The discriminative models (§5) consume plain dense matrices. The encoder
//! is *fitted* on a training table (to learn numeric standardization
//! statistics and categorical widths) and then applied to any table with the
//! same schema, so train/validation/test and old/new-modality tables share
//! one layout — the mechanical core of early fusion.

use cm_linalg::Matrix;

use crate::error::{CmError, CmResult, ErrorKind};
use crate::table::FeatureTable;
use crate::value::FeatureKind;

/// Per-source-column slice of the dense layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseSlot {
    /// Source column in the [`FeatureTable`].
    pub source_column: usize,
    /// First dense output column.
    pub offset: usize,
    /// Number of dense value columns (excluding the missing indicator).
    pub width: usize,
    /// Dense column holding the missing indicator (1.0 = missing).
    pub missing_indicator: usize,
}

/// The fitted mapping from table columns to dense matrix columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayout {
    slots: Vec<DenseSlot>,
    total_width: usize,
}

impl DenseLayout {
    /// Total dense width.
    pub fn width(&self) -> usize {
        self.total_width
    }

    /// Slot metadata per encoded source column.
    pub fn slots(&self) -> &[DenseSlot] {
        &self.slots
    }
}

#[derive(Debug, Clone)]
enum SlotCodec {
    /// mean/std fitted over *present* training values.
    Numeric { mean: f64, std: f64 },
    /// Multi-hot over `width` category ids; ids >= width are dropped.
    Categorical { width: usize },
    /// Raw embedding of width `dim`.
    Embedding { dim: usize },
}

/// Fitted dense encoder; see the module docs.
#[derive(Debug, Clone)]
pub struct DenseEncoder {
    layout: DenseLayout,
    codecs: Vec<SlotCodec>,
}

impl DenseEncoder {
    /// Fits an encoder over the selected `columns` of `train`.
    ///
    /// Numeric columns are standardized with statistics of their present
    /// values; categorical widths come from the schema vocabulary, widened if
    /// the training data contains larger ids (the simulator interns ids lazily).
    ///
    /// # Errors
    /// Returns [`ErrorKind::OutOfBounds`] if a column index is out of range
    /// for the schema (previously this indexed directly and panicked).
    pub fn fit(train: &FeatureTable, columns: &[usize]) -> CmResult<Self> {
        let schema = train.schema();
        let mut codecs = Vec::with_capacity(columns.len());
        let mut slots = Vec::with_capacity(columns.len());
        let mut offset = 0usize;
        for &col in columns {
            let def = schema.def(col).ok_or_else(|| {
                CmError::new(
                    ErrorKind::OutOfBounds,
                    "DenseEncoder::fit",
                    format!("column {col} out of range for schema of width {}", schema.len()),
                )
            })?;
            let (codec, width) = match def.kind {
                FeatureKind::Numeric => {
                    // Non-finite values are masked like missing ones: one
                    // NaN must not poison the column's statistics.
                    let mut n = 0usize;
                    let mut sum = 0.0f64;
                    for r in 0..train.len() {
                        if let Some(v) = train.numeric(r, col).filter(|v| v.is_finite()) {
                            n += 1;
                            sum += v;
                        }
                    }
                    let mean = if n > 0 { sum / n as f64 } else { 0.0 };
                    let mut var = 0.0f64;
                    for r in 0..train.len() {
                        if let Some(v) = train.numeric(r, col).filter(|v| v.is_finite()) {
                            var += (v - mean).powi(2);
                        }
                    }
                    let std = if n > 1 { (var / n as f64).sqrt() } else { 0.0 };
                    let std = if std < 1e-9 { 1.0 } else { std };
                    (SlotCodec::Numeric { mean, std }, 1)
                }
                FeatureKind::Categorical => {
                    let mut width = def.vocab.len();
                    for r in 0..train.len() {
                        if let Some(ids) = train.categorical(r, col) {
                            if let Some(&max) = ids.last() {
                                width = width.max(max as usize + 1);
                            }
                        }
                    }
                    (SlotCodec::Categorical { width }, width)
                }
                FeatureKind::Embedding { dim } => (SlotCodec::Embedding { dim }, dim),
            };
            slots.push(DenseSlot {
                source_column: col,
                offset,
                width,
                missing_indicator: offset + width,
            });
            offset += width + 1;
            codecs.push(codec);
        }
        Ok(Self { layout: DenseLayout { slots, total_width: offset }, codecs })
    }

    /// The fitted layout.
    pub fn layout(&self) -> &DenseLayout {
        &self.layout
    }

    /// Encodes a table into a dense matrix with the fitted layout.
    pub fn transform(&self, table: &FeatureTable) -> Matrix {
        let mut out = Matrix::zeros(table.len(), self.layout.total_width);
        for r in 0..table.len() {
            let row = out.row_mut(r);
            for (slot, codec) in self.layout.slots.iter().zip(&self.codecs) {
                let col = slot.source_column;
                match codec {
                    SlotCodec::Numeric { mean, std } => {
                        match table.numeric(r, col).filter(|v| v.is_finite()) {
                            Some(v) => row[slot.offset] = ((v - mean) / std) as f32,
                            // Missing and non-finite alike: imputed zero
                            // plus a hot missing indicator.
                            None => row[slot.missing_indicator] = 1.0,
                        }
                    }
                    SlotCodec::Categorical { width } => match table.categorical(r, col) {
                        Some(ids) => {
                            for &id in ids {
                                if (id as usize) < *width {
                                    row[slot.offset + id as usize] = 1.0;
                                }
                            }
                        }
                        None => row[slot.missing_indicator] = 1.0,
                    },
                    SlotCodec::Embedding { dim } => {
                        match table.embedding(r, col).filter(|e| e.iter().all(|x| x.is_finite())) {
                            Some(e) => row[slot.offset..slot.offset + dim].copy_from_slice(e),
                            None => row[slot.missing_indicator] = 1.0,
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::schema::{FeatureDef, FeatureSchema, FeatureSet, ServingMode};
    use crate::value::{CatSet, FeatureValue};
    use crate::vocab::Vocabulary;

    fn table() -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
            FeatureDef::categorical(
                "c",
                FeatureSet::B,
                ServingMode::Servable,
                Vocabulary::from_names(["x", "y", "z"]),
            ),
            FeatureDef::embedding("e", 2, FeatureSet::ModalitySpecific, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        t.push_row(&[
            FeatureValue::Numeric(1.0),
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 2])),
            FeatureValue::Embedding(vec![0.5, -0.5]),
        ]);
        t.push_row(&[FeatureValue::Numeric(3.0), FeatureValue::Missing, FeatureValue::Missing]);
        t
    }

    #[test]
    fn layout_has_expected_widths() {
        let t = table();
        let enc = DenseEncoder::fit(&t, &[0, 1, 2]).unwrap();
        // numeric: 1+1, categorical: 3+1, embedding: 2+1
        assert_eq!(enc.layout().width(), 2 + 4 + 3);
        let slots = enc.layout().slots();
        assert_eq!(slots[0].width, 1);
        assert_eq!(slots[1].width, 3);
        assert_eq!(slots[2].width, 2);
        assert_eq!(slots[1].offset, 2);
        assert_eq!(slots[1].missing_indicator, 5);
    }

    #[test]
    fn numeric_is_standardized_and_missing_flagged() {
        let t = table();
        let enc = DenseEncoder::fit(&t, &[0, 1, 2]).unwrap();
        let m = enc.transform(&t);
        // mean 2, std 1 -> values -1 and 1
        assert!((m[(0, 0)] + 1.0).abs() < 1e-6);
        assert!((m[(1, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m[(1, 1)], 0.0); // numeric present in both rows
    }

    #[test]
    fn categorical_multi_hot_and_missing() {
        let t = table();
        let enc = DenseEncoder::fit(&t, &[0, 1, 2]).unwrap();
        let m = enc.transform(&t);
        // row 0: ids {0,2} -> columns 2 and 4 hot, 3 cold
        assert_eq!(m[(0, 2)], 1.0);
        assert_eq!(m[(0, 3)], 0.0);
        assert_eq!(m[(0, 4)], 1.0);
        assert_eq!(m[(0, 5)], 0.0);
        // row 1: missing -> all cold, indicator hot
        assert_eq!(m[(1, 2)], 0.0);
        assert_eq!(m[(1, 5)], 1.0);
    }

    #[test]
    fn embedding_copied_and_missing_zeroed() {
        let t = table();
        let enc = DenseEncoder::fit(&t, &[0, 1, 2]).unwrap();
        let m = enc.transform(&t);
        assert_eq!(m[(0, 6)], 0.5);
        assert_eq!(m[(0, 7)], -0.5);
        assert_eq!(m[(0, 8)], 0.0);
        assert_eq!(m[(1, 6)], 0.0);
        assert_eq!(m[(1, 8)], 1.0);
    }

    #[test]
    fn column_subset_changes_layout() {
        let t = table();
        let enc = DenseEncoder::fit(&t, &[1]).unwrap();
        assert_eq!(enc.layout().width(), 4);
        let m = enc.transform(&t);
        assert_eq!(m.cols(), 4);
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    fn transform_applies_train_stats_to_new_table() {
        let train = table();
        let enc = DenseEncoder::fit(&train, &[0]).unwrap();
        let mut test = FeatureTable::new(Arc::clone(train.schema()));
        test.push_row(&[FeatureValue::Numeric(2.0), FeatureValue::Missing, FeatureValue::Missing]);
        let m = enc.transform(&test);
        assert!((m[(0, 0)]).abs() < 1e-6); // (2-2)/1
    }

    #[test]
    fn non_finite_numerics_are_masked_like_missing() {
        let train = table();
        let enc = DenseEncoder::fit(&train, &[0, 2]).unwrap();
        let mut test = FeatureTable::new(Arc::clone(train.schema()));
        // push_row (the unchecked legacy path) lets the NaN through; the
        // encoder must still mask it rather than poison the matrix.
        test.push_row(&[
            FeatureValue::Numeric(f64::NAN),
            FeatureValue::Missing,
            FeatureValue::Embedding(vec![f32::NAN, 0.0]),
        ]);
        let m = enc.transform(&test);
        assert!(m.as_slice().iter().all(|v| v.is_finite()), "no NaN may survive densification");
        assert_eq!(m[(0, 1)], 1.0, "numeric missing indicator");
        assert_eq!(m[(0, 4)], 1.0, "embedding missing indicator");
    }

    #[test]
    fn fit_ignores_non_finite_training_values() {
        let mut t = table();
        t.push_row(&[
            FeatureValue::Numeric(f64::INFINITY),
            FeatureValue::Missing,
            FeatureValue::Missing,
        ]);
        let enc = DenseEncoder::fit(&t, &[0]).unwrap();
        let m = enc.transform(&t);
        // Stats still come from {1.0, 3.0}: mean 2, std 1.
        assert!((m[(0, 0)] + 1.0).abs() < 1e-6);
        assert!((m[(1, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn out_of_vocab_ids_are_dropped() {
        let train = table();
        let enc = DenseEncoder::fit(&train, &[1]).unwrap();
        let mut test = FeatureTable::new(Arc::clone(train.schema()));
        test.push_row(&[
            FeatureValue::Missing,
            FeatureValue::Categorical(CatSet::from_ids(vec![7])),
            FeatureValue::Missing,
        ]);
        let m = enc.transform(&test);
        assert!(m.row(0)[..3].iter().all(|&v| v == 0.0));
        assert_eq!(m[(0, 3)], 0.0); // present, so no missing flag
    }
}
