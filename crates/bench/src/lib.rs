//! Shared harness for the table/figure regenerator binaries.
//!
//! Every binary accepts two environment knobs:
//!
//! - `CM_SCALE` — multiplier on the default 1/1000-of-paper dataset sizes
//!   (default varies per binary; larger = slower, closer to paper shape);
//! - `CM_SEED` — master seed (default 42).
//!
//! Binaries print a fixed-width table to stdout and, when `CM_JSON` is set,
//! a JSON report to the path it names (consumed when updating
//! EXPERIMENTS.md).

use cm_models::{ModelKind, TrainConfig};
use cm_orgsim::{TaskConfig, TaskId};
use cm_pipeline::{CurationConfig, ScenarioRunner, TaskData};

pub mod spec;
pub use spec::{load_spec, spec_reservoir, spec_scale, spec_scenario, spec_seed, spec_seeds};

/// A prepared run of one task: data plus the paper's per-task model choice.
pub struct TaskRun {
    /// Task identity.
    pub id: TaskId,
    /// Generated datasets.
    pub data: TaskData,
    /// Model family (the paper deploys neural networks for CT 1–4 and
    /// logistic regression for CT 5, §6.3).
    pub model: ModelKind,
    /// Training hyperparameters.
    pub train: TrainConfig,
}

impl TaskRun {
    /// Generates a task run at `scale` (multiplier on the 1/1000-of-paper
    /// sizes). `n_labeled_image` sizes the fully supervised reservoir.
    pub fn new(id: TaskId, scale: f64, seed: u64, n_labeled_image: Option<usize>) -> Self {
        let task = TaskConfig::paper(id).scaled(scale);
        let data = TaskData::generate(task, seed, n_labeled_image);
        let model = match id {
            TaskId::Ct5 => ModelKind::Logistic,
            _ => ModelKind::Mlp { hidden: vec![32] },
        };
        let train = TrainConfig {
            epochs: 15,
            batch_size: 128,
            lr: 0.01,
            l2: 1e-4,
            seed,
            patience: None,
            class_balance: true,
        };
        Self { id, data, model, train }
    }

    /// A scenario runner over this run's data.
    pub fn runner(&self) -> ScenarioRunner<'_> {
        ScenarioRunner { data: &self.data, model: self.model.clone(), train: self.train.clone() }
    }

    /// Default curation configuration for this run.
    pub fn curation_config(&self, seed: u64) -> CurationConfig {
        CurationConfig { seed, ..CurationConfig::default() }
    }
}

/// Reads `CM_SCALE`, falling back to `default`.
pub fn env_scale(default: f64) -> f64 {
    std::env::var("CM_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads `CM_SEED`, falling back to 42.
pub fn env_seed() -> u64 {
    std::env::var("CM_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42)
}

/// Seeds to average over: `CM_SEEDS` consecutive seeds (default `default`)
/// starting at [`env_seed`]. At 1/1000 of the paper's data volumes,
/// single-seed AUPRCs carry visible variance; every reported cell is a mean
/// over these seeds.
pub fn env_seeds(default: usize) -> Vec<u64> {
    let n = std::env::var("CM_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(default);
    let base = env_seed();
    (0..n as u64).map(|i| base + i * 1000).collect()
}

/// Arithmetic mean; 0.0 on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Parses a `CM_TASK` filter (e.g. `CT3`) against a task id.
pub fn task_selected(id: TaskId) -> bool {
    match std::env::var("CM_TASK") {
        Ok(f) => id.name().replace(' ', "").eq_ignore_ascii_case(&f),
        Err(_) => true,
    }
}

/// Writes a JSON report to the path named by `CM_JSON`, if set.
pub fn maybe_write_json<T: cm_json::ToJson>(report: &T) {
    if let Ok(path) = std::env::var("CM_JSON") {
        let json = report.to_json().to_string_pretty();
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote JSON report to {path}"),
            Err(e) => eprintln!("failed to write JSON report to {path}: {e}"),
        }
    }
}

/// Formats a ratio as the paper prints them (`1.52x`, `162x`).
pub fn fmt_ratio(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}x")
    } else if r >= 10.0 {
        format!("{r:.1}x")
    } else {
        format!("{r:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_run_uses_paper_model_families() {
        let run = TaskRun::new(TaskId::Ct5, 0.005, 1, Some(64));
        assert_eq!(run.model, ModelKind::Logistic);
        let run = TaskRun::new(TaskId::Ct1, 0.005, 1, Some(64));
        assert!(matches!(run.model, ModelKind::Mlp { .. }));
    }

    #[test]
    fn ratio_formatting_matches_paper_style() {
        assert_eq!(fmt_ratio(1.52), "1.52x");
        assert_eq!(fmt_ratio(44.0), "44.0x");
        assert_eq!(fmt_ratio(162.0), "162x");
    }

    #[test]
    fn env_scale_defaults() {
        std::env::remove_var("CM_SCALE");
        assert_eq!(env_scale(0.3), 0.3);
    }
}
