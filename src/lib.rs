//! # cross-modal
//!
//! A production-quality Rust reproduction of *"Leveraging Organizational
//! Resources to Adapt Models to New Data Modalities"* (Suri et al., VLDB
//! 2020): a pipeline that adapts existing classification tasks to new data
//! modalities in days instead of months by exploiting organizational
//! resources — model-based services, aggregate statistics, and rule-based
//! heuristics — to build a common feature space, weakly supervise the new
//! modality, and train multi-modal models.
//!
//! ## Quick start
//!
//! ```
//! use cross_modal::prelude::*;
//!
//! // A tiny task: labeled text corpus, unlabeled image pool, image test
//! // set, all drawn from a synthetic organizational world.
//! let task = TaskConfig::paper(TaskId::Ct2).scaled(0.01);
//! let data = TaskData::generate(task, 42, None);
//!
//! // Step B: curate probabilistic labels for the image pool from the text
//! // corpus (itemset-mined LFs + label propagation + label model).
//! let curation = curate(&data, &CurationConfig::default());
//! assert_eq!(curation.probabilistic_labels.len(), data.pool.len());
//!
//! // Step C: train the cross-modal early-fusion model and evaluate it.
//! let runner = ScenarioRunner {
//!     data: &data,
//!     model: ModelKind::Logistic,
//!     train: TrainConfig { epochs: 5, ..TrainConfig::default() },
//! };
//! let eval = runner.run(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation)).unwrap();
//! assert!(eval.auprc > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`par`] | deterministic chunked parallel substrate (`CM_THREADS`) |
//! | [`linalg`] | dense matrices, vector kernels, initializers |
//! | [`featurespace`] | the common feature space: schema, columnar tables, similarity |
//! | [`orgsim`] | the synthetic organizational world (data + services) |
//! | [`labelmodel`] | labeling functions, label matrix, label models |
//! | [`mining`] | Apriori itemset mining -> automatic LF generation |
//! | [`propagation`] | similarity graphs and label propagation |
//! | [`shard`] | sharded out-of-core curation (`CM_SHARD_ROWS`, `CM_MEM_BUDGET`) |
//! | [`models`] | logistic regression and MLPs with noise-aware losses |
//! | [`fusion`] | early / intermediate / DeViSE multi-modal training |
//! | [`eval`] | PR curves, AUPRC, cross-over analysis |
//! | [`faults`] | deterministic fault injection + resilient service access (`CM_FAULTS`) |
//! | [`pipeline`] | the end-to-end cross-modal adaptation pipeline |
//! | [`serve`] | incremental curation service: checkpointed recovery, backpressure (`CM_CRASH_AT`) |
//! | [`check`] | declarative experiment specs + span-aware pre-execution validation |

pub use cm_check as check;
pub use cm_eval as eval;
pub use cm_faults as faults;
pub use cm_featurespace as featurespace;
pub use cm_fusion as fusion;
pub use cm_json as json;
pub use cm_labelmodel as labelmodel;
pub use cm_linalg as linalg;
pub use cm_mining as mining;
pub use cm_models as models;
pub use cm_orgsim as orgsim;
pub use cm_par as par;
pub use cm_pipeline as pipeline;
pub use cm_propagation as propagation;
pub use cm_serve as serve;
pub use cm_shard as shard;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use cm_eval::{auprc, find_crossover, CrossoverSeries};
    pub use cm_faults::{AccessPolicy, FaultMode, FaultPlan, FaultSummary};
    pub use cm_featurespace::{
        FeatureSchema, FeatureSet, FeatureTable, FeatureValue, Label, ModalityKind,
    };
    pub use cm_models::{ModelKind, TrainConfig};
    pub use cm_orgsim::{ModalityDataset, TaskConfig, TaskId, World, WorldConfig};
    pub use cm_pipeline::{
        curate, curate_streamed, curate_streamed_with, curate_with_lfs, expert_lfs, CurationConfig,
        CurationOutput, DegradationReport, FusionStrategy, LabelModelKind, LabelSource, Scenario,
        ScenarioRunner, StreamStats, StreamedCuration, TaskData,
    };
    pub use cm_serve::{QualityGuards, QueueConfig, RunOutcome, ServeConfig, ServeReport};
    pub use cm_shard::{MemBudget, MemTracker, ShardConfig};
}
