//! Bounded admission queue with watermark backpressure.
//!
//! Arrival batches are *live traffic*: the world keeps producing them
//! whether or not the service can keep up, so every offered batch must be
//! dispositioned explicitly. The policy, in order:
//!
//! 1. **Shed** when the queue is at capacity or admitting the batch would
//!    push queued bytes past the memory budget ([`cm_shard::MemTracker`]
//!    enforcement — overload becomes a counted [`SheddingReport`] entry,
//!    never an OOM or panic).
//! 2. **Defer** when the queue has reached its high watermark: the batch
//!    is handed back to the caller to re-offer next tick, ahead of new
//!    arrivals. A batch deferred twice is shed — deferral buys one tick of
//!    drain, not unbounded buffering.
//! 3. **Admit** otherwise.
//!
//! Everything here is deterministic bookkeeping; no clocks, no RNG.

use std::collections::VecDeque;

use cm_json::{Json, JsonError, ToJson};
use cm_orgsim::ModalityDataset;
use cm_shard::{MemBudget, MemTracker};

/// Sizing of the admission queue.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum queued batches; offers beyond this are shed.
    pub capacity: usize,
    /// Depth at which new offers start being deferred.
    pub high_watermark: usize,
    /// Byte budget for queued batch payloads (`CM_MEM_BUDGET` scale).
    pub budget: MemBudget,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self { capacity: 8, high_watermark: 6, budget: MemBudget::default() }
    }
}

/// An arrival batch waiting for (re-)admission or processing.
#[derive(Debug, Clone)]
pub struct QueuedBatch {
    /// The featurized arrival rows.
    pub batch: ModalityDataset,
    /// Simulated time the batch arrived (latency accounting).
    pub arrival_ms: u64,
    /// Times the watermark controller has deferred this batch.
    pub deferrals: u32,
}

/// Disposition of one offered batch.
#[derive(Debug)]
pub enum Admission {
    /// Queued for processing.
    Admitted,
    /// Handed back to re-offer next tick (the batch rides inside).
    Deferred(Box<QueuedBatch>),
    /// Dropped; rows are counted in the [`SheddingReport`].
    Shed,
}

/// Structured overload telemetry — the contract that overload produces a
/// report, not a crash.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SheddingReport {
    /// Batches offered for admission (re-offers of deferred batches count
    /// again).
    pub offered: usize,
    /// Batches admitted.
    pub admitted: usize,
    /// Batches deferred by the watermark controller.
    pub deferred: usize,
    /// Batches shed.
    pub shed_batches: usize,
    /// Rows lost to shedding.
    pub shed_rows: usize,
    /// Peak queue depth.
    pub peak_depth: usize,
    /// Peak queued payload bytes.
    pub peak_bytes: usize,
}

impl ToJson for SheddingReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("offered", self.offered.to_json()),
            ("admitted", self.admitted.to_json()),
            ("deferred", self.deferred.to_json()),
            ("shed_batches", self.shed_batches.to_json()),
            ("shed_rows", self.shed_rows.to_json()),
            ("peak_depth", self.peak_depth.to_json()),
            ("peak_bytes", self.peak_bytes.to_json()),
        ])
    }
}

impl SheddingReport {
    /// Parses a report previously emitted by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let num = |field: &str| -> Result<usize, JsonError> {
            v.get(field).and_then(Json::as_usize).ok_or_else(|| JsonError {
                message: format!("missing or mistyped field {field:?}"),
                offset: 0,
            })
        };
        Ok(Self {
            offered: num("offered")?,
            admitted: num("admitted")?,
            deferred: num("deferred")?,
            shed_batches: num("shed_batches")?,
            shed_rows: num("shed_rows")?,
            peak_depth: num("peak_depth")?,
            peak_bytes: num("peak_bytes")?,
        })
    }
}

/// The bounded admission queue. See the module docs for the policy.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: QueueConfig,
    items: VecDeque<QueuedBatch>,
    tracker: MemTracker,
    report: SheddingReport,
}

impl AdmissionQueue {
    /// An empty queue with the given sizing.
    pub fn new(config: QueueConfig) -> Self {
        let tracker = MemTracker::new(config.budget);
        Self { config, items: VecDeque::new(), tracker, report: SheddingReport::default() }
    }

    /// Rebuilds a queue from checkpointed contents and counters.
    ///
    /// # Panics
    /// Panics if the checkpointed items exceed the configured budget —
    /// they were admitted under it, so a mismatch means the config and
    /// checkpoint disagree.
    pub fn restore(config: QueueConfig, items: Vec<QueuedBatch>, report: SheddingReport) -> Self {
        let mut q = Self::new(config);
        for item in items {
            let bytes = item.batch.table.approx_bytes();
            // lint: allow(expect) — documented panic: admitted-under-budget invariant
            q.tracker.charge(bytes, "restored queue batch").expect("checkpoint exceeds budget");
            q.items.push_back(item);
        }
        q.report = report;
        q
    }

    /// Offers one batch; see the module docs for the disposition order.
    pub fn offer(&mut self, mut item: QueuedBatch) -> Admission {
        self.report.offered += 1;
        let bytes = item.batch.table.approx_bytes();
        let over_budget = self.tracker.current().saturating_add(bytes) > self.tracker.budget();
        if self.items.len() >= self.config.capacity || over_budget || item.deferrals >= 1 {
            if self.items.len() < self.config.high_watermark && !over_budget {
                // Pressure cleared while the batch waited; admit it.
            } else {
                self.report.shed_batches += 1;
                self.report.shed_rows += item.batch.len();
                return Admission::Shed;
            }
        } else if self.items.len() >= self.config.high_watermark {
            self.report.deferred += 1;
            item.deferrals += 1;
            return Admission::Deferred(Box::new(item));
        }
        // lint: allow(expect) — within budget by the admission check above
        self.tracker.charge(bytes, "queued batch").expect("admission check missed the budget");
        self.items.push_back(item);
        self.report.admitted += 1;
        self.report.peak_depth = self.report.peak_depth.max(self.items.len());
        self.report.peak_bytes = self.report.peak_bytes.max(self.tracker.current());
        Admission::Admitted
    }

    /// Takes the oldest admitted batch.
    pub fn pop(&mut self) -> Option<QueuedBatch> {
        let item = self.items.pop_front()?;
        self.tracker.release(item.batch.table.approx_bytes());
        Some(item)
    }

    /// Queued batches.
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queued payload bytes currently charged.
    pub fn queued_bytes(&self) -> usize {
        self.tracker.current()
    }

    /// The overload telemetry so far.
    pub fn report(&self) -> &SheddingReport {
        &self.report
    }

    /// The queued batches, oldest first (checkpoint serialization).
    pub fn items(&self) -> impl Iterator<Item = &QueuedBatch> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, Label, ModalityKind,
        ServingMode,
    };

    use super::*;

    fn batch(rows: usize) -> QueuedBatch {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::numeric(
            "x",
            FeatureSet::A,
            ServingMode::Servable,
        )]));
        let mut table = FeatureTable::new(schema);
        for i in 0..rows {
            table.push_row(&[FeatureValue::Numeric(i as f64)]);
        }
        QueuedBatch {
            batch: ModalityDataset {
                modality: ModalityKind::Image,
                table,
                labels: vec![Label::Negative; rows],
                borderline: vec![false; rows],
            },
            arrival_ms: 0,
            deferrals: 0,
        }
    }

    fn config(capacity: usize, high: usize) -> QueueConfig {
        QueueConfig { capacity, high_watermark: high, budget: MemBudget::bytes(1 << 20) }
    }

    #[test]
    fn admits_until_high_watermark_then_defers_then_sheds() {
        let mut q = AdmissionQueue::new(config(4, 2));
        assert!(matches!(q.offer(batch(3)), Admission::Admitted));
        assert!(matches!(q.offer(batch(3)), Admission::Admitted));
        // At the watermark: defer once...
        let Admission::Deferred(b) = q.offer(batch(3)) else {
            panic!("expected deferral at the high watermark");
        };
        assert_eq!(b.deferrals, 1);
        // ...and a second deferral of the same batch under pressure sheds.
        assert!(matches!(q.offer(*b), Admission::Shed));
        let r = q.report();
        assert_eq!((r.admitted, r.deferred, r.shed_batches, r.shed_rows), (2, 1, 1, 3));
    }

    #[test]
    fn deferred_batch_is_admitted_once_pressure_clears() {
        let mut q = AdmissionQueue::new(config(4, 2));
        q.offer(batch(3));
        q.offer(batch(3));
        let Admission::Deferred(b) = q.offer(batch(3)) else { panic!("expected deferral") };
        q.pop().unwrap();
        q.pop().unwrap();
        assert!(matches!(q.offer(*b), Admission::Admitted));
    }

    #[test]
    fn capacity_and_budget_both_shed() {
        let mut q = AdmissionQueue::new(config(2, 2));
        q.offer(batch(1));
        q.offer(batch(1));
        assert!(matches!(q.offer(batch(1)), Admission::Shed), "over capacity");
        let tiny = QueueConfig { capacity: 8, high_watermark: 8, budget: MemBudget::bytes(1) };
        let mut q = AdmissionQueue::new(tiny);
        assert!(matches!(q.offer(batch(64)), Admission::Shed), "over budget");
        assert_eq!(q.report().shed_batches, 1);
    }

    #[test]
    fn restore_recharges_the_tracker() {
        let mut q = AdmissionQueue::new(config(4, 3));
        q.offer(batch(2));
        q.offer(batch(2));
        let items: Vec<QueuedBatch> = q.items().cloned().collect();
        let restored = AdmissionQueue::restore(config(4, 3), items, q.report().clone());
        assert_eq!(restored.depth(), q.depth());
        assert_eq!(restored.queued_bytes(), q.queued_bytes());
        assert_eq!(restored.report(), q.report());
    }

    #[test]
    fn shedding_report_round_trips_through_json() {
        let r = SheddingReport {
            offered: 10,
            admitted: 6,
            deferred: 2,
            shed_batches: 2,
            shed_rows: 64,
            peak_depth: 4,
            peak_bytes: 4096,
        };
        let back =
            SheddingReport::from_json(&Json::parse(&r.to_json().to_string_pretty()).unwrap())
                .unwrap();
        assert_eq!(r, back);
    }
}
