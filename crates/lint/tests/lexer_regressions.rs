//! Lexer regression suite pinning the multi-line blind spots of the old
//! per-line scanner that `xtask lint` used before cm-lint.
//!
//! The old scanner stripped strings and comments one line at a time, so
//! any literal or comment that *spanned* lines leaked its continuation
//! lines back into "code" — banned tokens inside them were flagged — and
//! conversely a call split across a line break was invisible. Each test
//! here fixes one of those shapes with exact token spans or engine
//! verdicts so the blind spots cannot quietly return.

use std::path::Path;

use cm_lint::lexer::{lex, TokKind};
use cm_lint::{lint_source, LintConfig};

/// Non-comment tokens of `source`, as (kind, text) pairs.
fn code_toks(source: &str) -> Vec<(TokKind, String)> {
    lex(source).into_iter().filter(|t| !t.kind.is_comment()).map(|t| (t.kind, t.text)).collect()
}

/// Rules reported for `source` linted under a neutral library path.
fn rules(source: &str) -> Vec<&'static str> {
    lint_source(source, Path::new("crates/demo/src/lib.rs"), &LintConfig::repo_default())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn multi_line_string_is_one_token() {
    let src = "let s = \"call .unwrap() and\n    panic!(\\\"x\\\") later\";\nlet t = 1;";
    let toks = lex(src);
    let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].line(), 1);
    // The token after the literal sits on line 2 — the span crossed the
    // newline inside one token instead of resetting per line.
    let semi = toks.iter().find(|t| t.is_punct(';')).expect("semicolon");
    assert_eq!(semi.line(), 2);
    // And nothing inside the literal lints.
    assert!(rules(src).is_empty());
}

#[test]
fn nested_block_comment_is_one_token() {
    let src = "/* outer .unwrap() /* inner thread::spawn */ still comment */ fn f() {}";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert!(toks[0].text.contains("inner"));
    assert!(toks[0].text.ends_with("*/"));
    // The old scanner had no block-comment state at all; the banned
    // tokens inside must not lint.
    assert!(rules(src).is_empty());
}

#[test]
fn multi_line_block_comment_does_not_leak_continuation_lines() {
    let src =
        "/* line one mentions v.unwrap()\n   line two mentions panic!(\"x\")\n*/\npub fn f() {}\n";
    assert!(rules(src).is_empty());
}

#[test]
fn raw_strings_span_lines_and_hold_quotes() {
    let src = "let r = r##\"contains \"quotes\" and r#\"inner\"# and\n  table.row(0) too\"##;";
    let toks = code_toks(src);
    let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].1.contains("table.row(0)"));
    // Hot-path virtual path: even where table-row applies, the raw
    // string's content must not lint.
    let findings =
        lint_source(src, Path::new("crates/mining/src/demo.rs"), &LintConfig::repo_default());
    assert!(findings.is_empty());
}

#[test]
fn raw_identifier_is_not_a_raw_string() {
    let toks = code_toks("fn r#type(r#fn: u32) -> u32 { r#fn }");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    assert!(!toks.iter().any(|(k, _)| *k == TokKind::Str));
    // ident_text strips the prefix.
    let lexed = lex("r#type");
    assert!(lexed[0].is_ident("type"));
}

#[test]
fn char_literals_versus_lifetimes() {
    let toks = lex("let c: char = '\"'; let b = b'\\''; let s: &'static str = \"x\";");
    let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
    assert_eq!(chars.len(), 2, "'\\\"' and b'\\'' are char/byte literals");
    let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
    assert_eq!(lifetimes.len(), 1);
    assert_eq!(lifetimes[0].text, "'static");
}

#[test]
fn quote_chars_in_literals_do_not_derail_string_state() {
    // The old scanner's char-literal heuristic could treat '"' as an
    // opening string quote and blank the rest of the line.
    let src = "let q = '\"'; let x = v.unwrap();";
    assert_eq!(rules(src), vec!["unwrap"]);
}

#[test]
fn cross_line_call_is_matched() {
    // The marquee blind spot: the old scanner could never see a banned
    // call whose `(` lands on the next line.
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap\n        ()\n}\n";
    let findings =
        lint_source(src, Path::new("crates/demo/src/lib.rs"), &LintConfig::repo_default());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "unwrap");
    // Anchored at the receiver dot on line 2.
    assert_eq!((findings[0].line, findings[0].col), (2, 6));
}

#[test]
fn cross_line_path_is_matched() {
    let src = "let t = std::time::Instant::\n    now();";
    assert_eq!(rules(src), vec!["instant-now"]);
}

#[test]
fn unterminated_literal_is_tolerated() {
    // Tolerance: a broken file still lexes (to EOF) rather than panicking,
    // and the tokens before the breakage are intact.
    let toks = lex("let a = v.unwrap(); let s = \"never closed");
    assert!(toks.iter().any(|t| t.is_ident("unwrap")));
    assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::Str));
}

#[test]
fn spans_are_byte_and_line_accurate() {
    let src = "ab + cd\n  efg";
    let toks = lex(src);
    let efg = toks.iter().find(|t| t.is_ident("efg")).expect("efg token");
    assert_eq!((efg.span.line, efg.span.col), (2, 3));
    assert_eq!(efg.span.slice(src), "efg");
}
