//! k-NN similarity-graph construction.

use cm_featurespace::{FeatureTable, FrozenTable, PairKernel, SimilarityConfig};
use cm_linalg::rng::SliceRandom;
use cm_linalg::rng::StdRng;
use cm_par::ParConfig;

use crate::graph::SparseGraph;

/// Minimum rows per chunk for the parallel similarity scans. Part of the
/// chunk plan, so it must not depend on the thread count.
const KNN_MIN_ROWS_PER_CHUNK: usize = 16;

/// Neighbor-search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnMethod {
    /// Exact all-pairs search; O(n²) similarities. Fine below ~10 k rows.
    Exact,
    /// Anchor-based approximate search (a single-machine stand-in for
    /// Expander's distributed build): rows are routed to their `probes`
    /// most-similar anchors out of `n_anchors` sampled rows, and exact
    /// similarities are computed only against co-routed rows, capped at
    /// `max_candidates` per row.
    Anchors {
        /// Number of anchor rows sampled.
        n_anchors: usize,
        /// Anchors each row is routed to.
        probes: usize,
        /// Cap on exact comparisons per row.
        max_candidates: usize,
    },
}

/// Builds k-NN graphs over a feature table.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    /// Neighbors kept per row.
    pub k: usize,
    /// Search strategy.
    pub method: KnnMethod,
    /// Minimum similarity for an edge to exist at all.
    pub min_weight: f64,
}

impl GraphBuilder {
    /// Exact builder with a weight floor of 0.05.
    pub fn exact(k: usize) -> Self {
        Self { k, method: KnnMethod::Exact, min_weight: 0.05 }
    }

    /// Approximate builder with defaults scaled to `n` rows.
    pub fn approximate(k: usize, n: usize) -> Self {
        let n_anchors = ((n as f64).sqrt() as usize).clamp(16, 512);
        Self {
            k,
            method: KnnMethod::Anchors { n_anchors, probes: 4, max_candidates: 256 },
            min_weight: 0.05,
        }
    }

    /// Builds the graph. `seed` only matters for the anchor method.
    pub fn build(&self, table: &FeatureTable, config: &SimilarityConfig, seed: u64) -> SparseGraph {
        self.build_with(table, config, seed, &ParConfig::from_env())
    }

    /// [`GraphBuilder::build`] with an explicit parallel configuration.
    ///
    /// Freezes the table and compiles the similarity configuration into a
    /// [`PairKernel`] once, then scans with it. Row chunks scan for
    /// neighbors independently and their edge lists concatenate in chunk
    /// index order, so the graph is identical for any thread count; the
    /// kernel performs the reference arithmetic in the reference order, so
    /// the weights are bit-identical to the pre-kernel builder.
    pub fn build_with(
        &self,
        table: &FeatureTable,
        config: &SimilarityConfig,
        seed: u64,
        par: &ParConfig,
    ) -> SparseGraph {
        let frozen = FrozenTable::freeze(table);
        self.build_frozen_with(&frozen, config, seed, par)
    }

    /// Whether a corpus of `n` rows takes the exact all-pairs path (either
    /// by method choice or the small-input fallback). Sharded builds must
    /// make the same choice from the same `n`, so this is the one place
    /// the decision lives.
    pub fn uses_exact(&self, n: usize) -> bool {
        match self.method {
            KnnMethod::Exact => true,
            // Too small for anchors to pay off; fall back to exact.
            KnnMethod::Anchors { n_anchors, .. } => n <= n_anchors * 4,
        }
    }

    /// [`GraphBuilder::build_with`] over an existing frozen view, for
    /// callers that already hold one.
    pub fn build_frozen_with(
        &self,
        frozen: &FrozenTable<'_>,
        config: &SimilarityConfig,
        seed: u64,
        par: &ParConfig,
    ) -> SparseGraph {
        let n = frozen.len();
        let kernel = PairKernel::compile(frozen, config);
        let par = par.clone().with_min_chunk(KNN_MIN_ROWS_PER_CHUNK);
        let edges = if self.uses_exact(n) {
            self.build_exact(n, &kernel, &par)
        } else {
            let KnnMethod::Anchors { n_anchors, probes, max_candidates } = self.method else {
                unreachable!("non-exact path implies the anchor method")
            };
            self.build_anchors(n, &kernel, n_anchors, probes, max_candidates, seed, &par)
        };
        SparseGraph::from_edges(n, &edges)
    }

    fn build_exact(
        &self,
        n: usize,
        kernel: &PairKernel<'_>,
        par: &ParConfig,
    ) -> Vec<(u32, u32, f32)> {
        let chunks = cm_par::par_map_chunks(par, n, |range| {
            let mut edges = Vec::new();
            for i in range {
                let mut top = TopK::new(self.k);
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let s = kernel.pair(i, j);
                    if s >= self.min_weight {
                        top.push(j as u32, s as f32);
                    }
                }
                top.drain_into(i as u32, &mut edges);
            }
            edges
        })
        .unwrap_or_else(|e| e.resume());
        chunks.into_iter().flatten().collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn build_anchors(
        &self,
        n: usize,
        kernel: &PairKernel<'_>,
        n_anchors: usize,
        probes: usize,
        max_candidates: usize,
        seed: u64,
        par: &ParConfig,
    ) -> Vec<(u32, u32, f32)> {
        let anchor_ids = anchor_plan(n, n_anchors, seed);

        // Route every row to its top `probes` anchors. Rows route
        // independently, so the parallel map is order-preserving.
        let mut anchor_members: Vec<Vec<u32>> = vec![Vec::new(); n_anchors];
        let routes: Vec<Vec<usize>> = cm_par::par_map(par, n, |i| {
            let scores: Vec<f64> = anchor_ids.iter().map(|&row| kernel.pair(i, row)).collect();
            route_row(&scores, probes)
        })
        .unwrap_or_else(|e| e.resume());
        for (i, route) in routes.iter().enumerate() {
            for &a in route {
                anchor_members[a].push(i as u32);
            }
        }
        // Scan each row's co-routed candidates; chunk edge lists
        // concatenate in chunk index order.
        let chunks = cm_par::par_map_chunks(par, n, |range| {
            let mut edges = Vec::new();
            let mut candidates: Vec<u32> = Vec::new();
            for i in range {
                candidates.clear();
                for &a in &routes[i] {
                    candidates.extend_from_slice(&anchor_members[a]);
                }
                candidates.sort_unstable();
                candidates.dedup();
                let stride = candidate_stride(candidates.len(), max_candidates);
                let mut top = TopK::new(self.k);
                for &j in candidates.iter().step_by(stride) {
                    if j as usize == i {
                        continue;
                    }
                    let s = kernel.pair(i, j as usize);
                    if s >= self.min_weight {
                        top.push(j, s as f32);
                    }
                }
                top.drain_into(i as u32, &mut edges);
            }
            edges
        })
        .unwrap_or_else(|e| e.resume());
        chunks.into_iter().flatten().collect()
    }
}

/// The anchor rows the approximate method samples for a corpus of `n`
/// rows: a seeded shuffle of all row ids, truncated to `n_anchors`.
/// Depends only on `(n, n_anchors, seed)`, so a sharded build derives the
/// identical plan without holding the corpus.
pub fn anchor_plan(n: usize, n_anchors: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut anchor_ids: Vec<usize> = (0..n).collect();
    anchor_ids.shuffle(&mut rng);
    anchor_ids.truncate(n_anchors);
    anchor_ids
}

/// Routes one row to its top `probes` anchor slots given the row's
/// similarity to each anchor, in anchor-slot order. The sort is stable and
/// descending by similarity, so ties keep ascending slot order — sharded
/// routing must reproduce exactly this ranking.
pub fn route_row(scores: &[f64], probes: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    scored.sort_by(|x, y| y.1.total_cmp(&x.1));
    scored.truncate(probes);
    scored.into_iter().map(|(a, _)| a).collect()
}

/// Stride that subsamples a candidate bucket down to the `max_candidates`
/// cap (huge buckets stay bounded; small ones scan fully).
pub fn candidate_stride(n_candidates: usize, max_candidates: usize) -> usize {
    (n_candidates / max_candidates.max(1)).max(1)
}

/// Small fixed-capacity top-k accumulator, kept sorted descending by
/// weight. Insertion order breaks ties (earlier wins), so feeding
/// candidates in the resident scan order reproduces the resident edges.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    items: Vec<(u32, f32)>,
}

impl TopK {
    /// An empty accumulator keeping the best `k` entries.
    pub fn new(k: usize) -> Self {
        Self { k, items: Vec::with_capacity(k + 1) }
    }

    /// Offers one candidate.
    pub fn push(&mut self, id: u32, w: f32) {
        if self.items.len() == self.k {
            // items kept sorted descending; last is the weakest.
            if w <= self.items[self.k - 1].1 {
                return;
            }
            self.items.pop();
        }
        let pos = self.items.partition_point(|&(_, x)| x >= w);
        self.items.insert(pos, (id, w));
    }

    /// Appends the kept entries as `(src, dst, weight)` edges, best first.
    pub fn drain_into(self, src: u32, edges: &mut Vec<(u32, u32, f32)>) {
        for (dst, w) in self.items {
            edges.push((src, dst, w));
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode, Vocabulary,
    };

    use super::*;

    /// Two clean clusters: rows < n/2 share ids {0,1}; the rest share {2,3}.
    fn clustered(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "c", "d"]),
        )]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            let ids = if i < n / 2 { vec![0, 1] } else { vec![2, 3] };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(ids))]);
        }
        t
    }

    #[test]
    fn exact_knn_links_within_clusters() {
        let t = clustered(40);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let g = GraphBuilder::exact(5).build(&t, &cfg, 0);
        for v in 0..40 {
            let (neigh, w) = g.neighbors(v);
            assert!(!neigh.is_empty());
            for (&u, &wt) in neigh.iter().zip(w) {
                assert_eq!((v < 20), ((u as usize) < 20), "cross-cluster edge {v}-{u}");
                assert!((wt - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn k_limits_out_edges_before_symmetrization() {
        let t = clustered(40);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let g = GraphBuilder::exact(3).build(&t, &cfg, 0);
        // Post-symmetrization degree can exceed k, but total edge count is
        // bounded by n * k.
        assert!(g.n_edges() <= 40 * 3);
    }

    #[test]
    fn min_weight_prunes_weak_edges() {
        let t = clustered(10);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let mut b = GraphBuilder::exact(9);
        b.min_weight = 1.1; // nothing qualifies
        let g = b.build(&t, &cfg, 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn anchors_fall_back_to_exact_on_small_inputs() {
        let t = clustered(30);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let approx = GraphBuilder {
            k: 4,
            method: KnnMethod::Anchors { n_anchors: 16, probes: 2, max_candidates: 64 },
            min_weight: 0.05,
        }
        .build(&t, &cfg, 1);
        let exact = GraphBuilder::exact(4).build(&t, &cfg, 1);
        assert_eq!(approx, exact);
    }

    #[test]
    fn anchor_method_recovers_cluster_structure() {
        let t = clustered(600);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let g = GraphBuilder {
            k: 5,
            method: KnnMethod::Anchors { n_anchors: 32, probes: 3, max_candidates: 64 },
            min_weight: 0.05,
        }
        .build(&t, &cfg, 2);
        let mut cross = 0usize;
        let mut total = 0usize;
        for v in 0..600 {
            let (neigh, _) = g.neighbors(v);
            for &u in neigh {
                total += 1;
                if (v < 300) != ((u as usize) < 300) {
                    cross += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(cross, 0, "{cross}/{total} cross-cluster edges");
    }

    #[test]
    fn builder_is_deterministic() {
        let t = clustered(200);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let b = GraphBuilder::approximate(4, 200);
        assert_eq!(b.build(&t, &cfg, 7), b.build(&t, &cfg, 7));
    }

    #[test]
    fn graphs_are_identical_across_thread_counts() {
        let t = clustered(300);
        let cfg = SimilarityConfig::uniform(vec![0]);
        for b in [GraphBuilder::exact(4), GraphBuilder::approximate(4, 300)] {
            let base = b.build_with(&t, &cfg, 7, &ParConfig::threads(1));
            for threads in [2usize, 4, 8] {
                let g = b.build_with(&t, &cfg, 7, &ParConfig::threads(threads));
                assert_eq!(g, base, "method {:?}, threads = {threads}", b.method);
            }
        }
    }

    #[test]
    fn topk_keeps_best() {
        let mut top = TopK::new(2);
        top.push(1, 0.1);
        top.push(2, 0.9);
        top.push(3, 0.5);
        top.push(4, 0.05);
        let mut edges = Vec::new();
        top.drain_into(0, &mut edges);
        let ids: Vec<u32> = edges.iter().map(|e| e.1).collect();
        assert_eq!(ids, vec![2, 3]);
    }
}
