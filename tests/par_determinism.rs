//! Serial ≡ parallel equivalence layer for every `cm-par`-wired hot path.
//!
//! The substrate's contract: the chunk plan depends only on input size,
//! chunk results merge in chunk index order, and the serial fallback runs
//! the identical plan inline — so 1 thread and N threads must produce
//! bit-identical outputs everywhere. Each test here exercises one wired
//! path at explicit `ParConfig` values (never `CM_THREADS`, so the tests
//! are immune to the environment they run under).

use std::sync::Arc;

use cross_modal::eval::bootstrap_auprc_ci_with;
use cross_modal::featurespace::{
    CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, Label, ServingMode,
    SimilarityConfig, Vocabulary,
};
use cross_modal::labelmodel::{
    CategoricalContainsLf, GenerativeConfig, GenerativeModel, LabelMatrix, LabelingFunction, Vote,
};
use cross_modal::linalg::Matrix;
use cross_modal::mining::{mine_itemsets_with, MiningConfig};
use cross_modal::models::logistic::{LogisticConfig, LogisticRegression};
use cross_modal::par::ParConfig;
use cross_modal::propagation::GraphBuilder;

const THREADS: [usize; 3] = [2, 4, 8];

/// A categorical table big enough to cross every parallel threshold.
fn cat_table(n: usize) -> cross_modal::featurespace::FeatureTable {
    let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
        "c",
        FeatureSet::A,
        ServingMode::Servable,
        Vocabulary::from_names(["w", "x", "y", "z"]),
    )]));
    let mut t = cross_modal::featurespace::FeatureTable::new(schema);
    for i in 0..n {
        t.push_row(&[FeatureValue::Categorical(CatSet::single((i % 4) as u32))]);
    }
    t
}

fn lfs() -> Vec<Box<dyn LabelingFunction>> {
    vec![
        Box::new(CategoricalContainsLf::new(0, vec![0], false, Vote::Positive)),
        Box::new(CategoricalContainsLf::new(0, vec![1], false, Vote::Negative)),
        Box::new(CategoricalContainsLf::new(0, vec![2], false, Vote::Positive)),
    ]
}

#[test]
fn vote_matrix_is_bit_identical() {
    let t = cat_table(30_000);
    let base = LabelMatrix::apply_with(&t, &lfs(), &ParConfig::threads(1));
    let base_stats = base.vote_stats_with(&ParConfig::threads(1));
    for threads in THREADS {
        let par = ParConfig::threads(threads);
        let m = LabelMatrix::apply_with(&t, &lfs(), &par);
        for r in 0..base.n_rows() {
            assert_eq!(m.row(r), base.row(r), "row {r}, threads = {threads}");
        }
        let stats = m.vote_stats_with(&par);
        assert_eq!(stats, base_stats, "threads = {threads}");
    }
}

#[test]
fn label_model_weights_are_bit_identical() {
    let t = cat_table(25_000);
    let m = LabelMatrix::apply_with(&t, &lfs(), &ParConfig::threads(1));
    let cfg = GenerativeConfig::default();
    let base = GenerativeModel::fit_with(&m, &cfg, &ParConfig::threads(1));
    let base_probs = base.predict_with(&m, &ParConfig::threads(1));
    for threads in THREADS {
        let par = ParConfig::threads(threads);
        let model = GenerativeModel::fit_with(&m, &cfg, &par);
        assert_eq!(model.accuracies(), base.accuracies(), "threads = {threads}");
        assert_eq!(
            model.class_prior().to_bits(),
            base.class_prior().to_bits(),
            "threads = {threads}"
        );
        assert_eq!(model.predict_with(&m, &par), base_probs, "threads = {threads}");
    }
}

#[test]
fn propagation_edge_lists_are_identical() {
    let t = cat_table(400);
    let cfg = SimilarityConfig::uniform(vec![0]);
    for builder in [GraphBuilder::exact(6), GraphBuilder::approximate(6, 400)] {
        let base = builder.build_with(&t, &cfg, 3, &ParConfig::threads(1));
        for threads in THREADS {
            let g = builder.build_with(&t, &cfg, 3, &ParConfig::threads(threads));
            assert_eq!(g, base, "threads = {threads}");
        }
    }
}

#[test]
fn logistic_weights_are_bit_identical() {
    let n = 4096;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let cls = if i % 3 == 0 { 1.0f32 } else { -1.0 };
            let jitter = ((i * 37 % 100) as f32) / 100.0 - 0.5;
            vec![cls + jitter, -cls + jitter * 0.5, jitter]
        })
        .collect();
    let x = Matrix::from_rows(&rows);
    let y: Vec<f64> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
    // Batch 2048 splits into multiple 256-item gradient chunks.
    let cfg = LogisticConfig { epochs: 4, batch_size: 2048, ..Default::default() };
    let base = LogisticRegression::fit_with(&x, &y, None, &cfg, &ParConfig::threads(1));
    for threads in THREADS {
        let par = ParConfig::threads(threads);
        let model = LogisticRegression::fit_with(&x, &y, None, &cfg, &par);
        assert_eq!(model.weights(), base.weights(), "threads = {threads}");
        assert_eq!(model.bias().to_bits(), base.bias().to_bits(), "threads = {threads}");
    }
}

#[test]
fn bootstrap_cis_are_bit_identical() {
    let n = 400;
    let scores: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64 / 1000.0).collect();
    let positives: Vec<bool> = (0..n).map(|i| i % 6 == 0).collect();
    let base = bootstrap_auprc_ci_with(&scores, &positives, 300, 0.1, 17, &ParConfig::threads(1));
    for threads in THREADS {
        let ci = bootstrap_auprc_ci_with(
            &scores,
            &positives,
            300,
            0.1,
            17,
            &ParConfig::threads(threads),
        );
        assert_eq!(ci.0.to_bits(), base.0.to_bits(), "threads = {threads}");
        assert_eq!(ci.1.to_bits(), base.1.to_bits(), "threads = {threads}");
    }
}

#[test]
fn mined_itemsets_are_identical() {
    let t = cat_table(8000);
    let labels: Vec<Label> =
        (0..8000).map(|i| if i % 4 == 0 { Label::Positive } else { Label::Negative }).collect();
    let cfg = MiningConfig::default();
    let base = mine_itemsets_with(&t, &labels, &[0], &cfg, &ParConfig::threads(1));
    for threads in THREADS {
        let mined = mine_itemsets_with(&t, &labels, &[0], &cfg, &ParConfig::threads(threads));
        assert_eq!(mined.positive, base.positive, "threads = {threads}");
        assert_eq!(mined.negative, base.negative, "threads = {threads}");
        assert_eq!(mined.n_candidates, base.n_candidates, "threads = {threads}");
    }
}

#[test]
fn matmul_is_bit_identical() {
    let fill = |seed: u32, rows: usize, cols: usize| {
        let mut m = Matrix::zeros(rows, cols);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) & 0xFF) as f32
                / 255.0
                - 0.5;
        }
        m
    };
    // 150^3 > the matmul flop threshold, so the parallel path engages.
    let a = fill(1, 150, 150);
    let b = fill(2, 150, 150);
    let base = a.matmul_with(&b, &ParConfig::threads(1));
    for threads in THREADS {
        let c = a.matmul_with(&b, &ParConfig::threads(threads));
        assert_eq!(c.as_slice(), base.as_slice(), "threads = {threads}");
    }
}
