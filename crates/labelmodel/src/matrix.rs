//! The label matrix: LF votes over a dataset, plus aggregate vote
//! statistics (coverage, overlap, conflict — Snorkel's standard
//! diagnostics).

use cm_featurespace::{FeatureTable, FrozenTable};
use cm_par::ParConfig;

use crate::lf::{LabelingFunction, Vote};

/// `n_rows * n_lfs` work above which LF application and vote statistics
/// fan out across `cm-par`. The paper applies LFs with MapReduce for the
/// same reason (§6.3). Depends only on the matrix shape, so the code path
/// never varies with the thread count.
const PAR_THRESHOLD: usize = 50_000;

/// Minimum rows per parallel chunk; fixed per call site so chunked folds
/// group identically at every thread count.
const MIN_ROWS_PER_CHUNK: usize = 512;

/// Aggregate vote statistics over a [`LabelMatrix`], computed in one pass.
///
/// Counts are folded across row chunks **in chunk index order** (the
/// `cm-par` determinism contract), so every field is bit-identical between
/// serial and parallel runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VoteStats {
    /// Fraction of rows where at least one LF does not abstain.
    pub coverage: f64,
    /// Fraction of rows labeled by two or more LFs.
    pub overlap: f64,
    /// Fraction of rows with at least one positive and one negative vote.
    pub conflict: f64,
}

/// Integer partials behind [`VoteStats`]: the explicitly mergeable
/// sufficient statistic for coverage/overlap/conflict.
///
/// Summing counts is exact, which is what makes the derived ratios
/// reduction-order-proof — within a matrix (chunk partials folded in
/// chunk index order) and across matrix *segments* (per-segment counts
/// merged in segment order by the sharded curation layer). Merging is
/// associative and commutative, so any partition of the rows yields the
/// same [`VoteStats`] bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteCounts {
    /// Rows where at least one LF does not abstain.
    pub covered: usize,
    /// Rows labeled by two or more LFs.
    pub overlapped: usize,
    /// Rows with at least one positive and one negative vote.
    pub conflicted: usize,
    /// Rows counted (the ratio denominator).
    pub n_rows: usize,
}

impl VoteCounts {
    /// Exact integer merge of two partial counts.
    #[must_use]
    pub fn merge(self, other: VoteCounts) -> VoteCounts {
        VoteCounts {
            covered: self.covered + other.covered,
            overlapped: self.overlapped + other.overlapped,
            conflicted: self.conflicted + other.conflicted,
            n_rows: self.n_rows + other.n_rows,
        }
    }
}

impl VoteStats {
    /// The ratios a merged count renders to: each statistic is one
    /// integer-over-integer division, so counts merged from any
    /// segmentation produce identical stats. Zero rows yields the
    /// all-zero default.
    pub fn from_counts(counts: VoteCounts) -> VoteStats {
        if counts.n_rows == 0 {
            return VoteStats::default();
        }
        let n = counts.n_rows as f64;
        VoteStats {
            coverage: counts.covered as f64 / n,
            overlap: counts.overlapped as f64 / n,
            conflict: counts.conflicted as f64 / n,
        }
    }
}

/// Dense `n_rows x n_lfs` matrix of vote encodings (`+1/-1/0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelMatrix {
    n_rows: usize,
    n_lfs: usize,
    votes: Vec<i8>,
    names: Vec<String>,
}

impl LabelMatrix {
    /// Applies every LF to every row of `table`.
    ///
    /// LF application parallelizes across row chunks through the `cm-par`
    /// substrate (thread count from `CM_THREADS`) when the workload is
    /// large enough to pay for it; votes are pure per-row writes, so the
    /// matrix is bit-identical at every thread count.
    pub fn apply(table: &FeatureTable, lfs: &[Box<dyn LabelingFunction>]) -> Self {
        Self::apply_with(table, lfs, &ParConfig::from_env())
    }

    /// [`LabelMatrix::apply`] with an explicit parallel configuration.
    ///
    /// # Panics
    /// Re-raises a worker panic (an LF panicking on a row behaves exactly
    /// as it would serially).
    pub fn apply_with(
        table: &FeatureTable,
        lfs: &[Box<dyn LabelingFunction>],
        par: &ParConfig,
    ) -> Self {
        let n_rows = table.len();
        let n_lfs = lfs.len();
        let names = lfs.iter().map(|lf| lf.name().to_owned()).collect();
        let mut votes = vec![0i8; n_rows * n_lfs];
        apply_into(table, lfs, &mut votes, par);
        Self { n_rows, n_lfs, votes, names }
    }

    /// Applies every LF to `table`, appending the votes in place — the
    /// zero-copy segment path of the sharded driver. Bit-identical to
    /// [`LabelMatrix::apply_with`] on `table` followed by
    /// [`LabelMatrix::append_rows`], without the intermediate segment
    /// matrix: same freeze, same parallel threshold, same chunking over
    /// the same rows, writing straight into this matrix's buffer.
    ///
    /// # Panics
    /// Panics unless `lfs` matches this matrix's columns; re-raises a
    /// worker panic like [`LabelMatrix::apply_with`].
    pub fn apply_append_with(
        &mut self,
        table: &FeatureTable,
        lfs: &[Box<dyn LabelingFunction>],
        par: &ParConfig,
    ) {
        assert_eq!(lfs.len(), self.n_lfs, "segment LF count mismatch");
        assert!(
            lfs.iter().map(|lf| lf.name()).eq(self.names.iter().map(String::as_str)),
            "segment LF name mismatch"
        );
        let n_rows = table.len();
        let base = self.votes.len();
        self.votes.resize(base + n_rows * self.n_lfs, 0);
        apply_into(table, lfs, &mut self.votes[base..], par);
        self.n_rows += n_rows;
    }

    /// Builds a matrix from raw encodings (row-major).
    ///
    /// # Panics
    /// Panics if the data length or any encoding is invalid.
    pub fn from_votes(n_rows: usize, n_lfs: usize, votes: Vec<i8>, names: Vec<String>) -> Self {
        assert_eq!(votes.len(), n_rows * n_lfs, "vote matrix shape mismatch");
        assert_eq!(names.len(), n_lfs, "LF name count mismatch");
        assert!(votes.iter().all(|v| (-1..=1).contains(v)), "votes must be in {{-1, 0, 1}}");
        Self { n_rows, n_lfs, votes, names }
    }

    /// Number of data points.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of labeling functions.
    pub fn n_lfs(&self) -> usize {
        self.n_lfs
    }

    /// LF names in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The vote of LF `lf` on row `row`.
    #[inline]
    pub fn vote(&self, row: usize, lf: usize) -> Vote {
        Vote::from_i8(self.votes[row * self.n_lfs + lf])
    }

    /// Raw encoded votes of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[i8] {
        &self.votes[row * self.n_lfs..(row + 1) * self.n_lfs]
    }

    /// Fraction of rows where at least one LF does not abstain.
    pub fn coverage(&self) -> f64 {
        self.vote_stats().coverage
    }

    /// Coverage, overlap, and conflict in one parallel pass.
    pub fn vote_stats(&self) -> VoteStats {
        self.vote_stats_with(&ParConfig::from_env())
    }

    /// [`LabelMatrix::vote_stats`] with an explicit parallel
    /// configuration. Chunk counts are integers folded in chunk index
    /// order, so the resulting ratios are bit-identical at every thread
    /// count — the regression test below pins them.
    ///
    /// # Panics
    /// Re-raises a worker panic.
    pub fn vote_stats_with(&self, par: &ParConfig) -> VoteStats {
        VoteStats::from_counts(self.vote_counts_with(par))
    }

    /// The mergeable [`VoteCounts`] sufficient statistic for this matrix.
    pub fn vote_counts(&self) -> VoteCounts {
        self.vote_counts_with(&ParConfig::from_env())
    }

    /// [`LabelMatrix::vote_counts`] with an explicit parallel
    /// configuration. Integer counts, so the result is exact and merging
    /// per-segment counts reproduces the whole-matrix counts for any row
    /// partition.
    ///
    /// # Panics
    /// Re-raises a worker panic.
    pub fn vote_counts_with(&self, par: &ParConfig) -> VoteCounts {
        if self.n_rows == 0 {
            return VoteCounts::default();
        }
        let count_rows = |range: std::ops::Range<usize>| {
            let mut c = VoteCounts { n_rows: range.len(), ..VoteCounts::default() };
            for r in range {
                let row = self.row(r);
                let labeled = row.iter().filter(|&&v| v != 0).count();
                c.covered += usize::from(labeled >= 1);
                c.overlapped += usize::from(labeled >= 2);
                c.conflicted +=
                    usize::from(row.iter().any(|&v| v > 0) && row.iter().any(|&v| v < 0));
            }
            c
        };
        let work = self.n_rows.saturating_mul(self.n_lfs.max(1));
        if work < PAR_THRESHOLD {
            count_rows(0..self.n_rows)
        } else {
            let par = par.clone().with_min_chunk(MIN_ROWS_PER_CHUNK);
            match cm_par::par_map_reduce(&par, self.n_rows, count_rows, VoteCounts::merge) {
                Ok(c) => c.unwrap_or_default(),
                Err(e) => e.resume(),
            }
        }
    }

    /// Per-LF coverage: fraction of rows the LF labels.
    pub fn lf_coverage(&self, lf: usize) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let n = (0..self.n_rows).filter(|&r| self.row(r)[lf] != 0).count();
        n as f64 / self.n_rows as f64
    }

    /// Fraction of rows labeled by two or more LFs.
    pub fn overlap(&self) -> f64 {
        self.vote_stats().overlap
    }

    /// Fraction of rows with at least one positive and one negative vote.
    pub fn conflict(&self) -> f64 {
        self.vote_stats().conflict
    }

    /// Rows labeled by at least one LF (the trainable subset).
    pub fn covered_rows(&self) -> Vec<usize> {
        (0..self.n_rows).filter(|&r| self.row(r).iter().any(|&v| v != 0)).collect()
    }

    /// Columns that abstain on every row — the degenerate LFs a tripped
    /// service leaves behind.
    pub fn all_abstain_columns(&self) -> Vec<usize> {
        (0..self.n_lfs).filter(|&lf| (0..self.n_rows).all(|r| self.row(r)[lf] == 0)).collect()
    }

    /// A copy of the matrix with the `drop` columns removed (indices into
    /// the current column order; duplicates and out-of-range indices are
    /// ignored). Used to excise degraded LFs before the label model fits,
    /// since an all-abstain column still shifts generative posteriors.
    pub fn without_columns(&self, drop: &[usize]) -> LabelMatrix {
        // A boolean mask makes the column filter O(n_lfs + |drop|) instead
        // of O(n_lfs * |drop|), and gives the kept count up front so the
        // vote buffer allocates its exact final capacity.
        let mut dropped = vec![false; self.n_lfs];
        for &i in drop {
            if i < self.n_lfs {
                dropped[i] = true;
            }
        }
        let keep: Vec<usize> = (0..self.n_lfs).filter(|&i| !dropped[i]).collect();
        let mut votes = Vec::with_capacity(self.n_rows * keep.len());
        for r in 0..self.n_rows {
            let row = self.row(r);
            votes.extend(keep.iter().map(|&i| row[i]));
        }
        LabelMatrix {
            n_rows: self.n_rows,
            n_lfs: keep.len(),
            votes,
            names: keep.iter().map(|&i| self.names[i].clone()).collect(),
        }
    }

    /// Concatenates row segments into one matrix. Votes are pure per-row
    /// values, so applying LFs segment-by-segment and concatenating is
    /// bit-identical to applying them to the whole table — the invariant
    /// the sharded curation layer rests on.
    ///
    /// An empty `parts` yields the empty matrix.
    ///
    /// # Panics
    /// Panics if the segments disagree on LF columns.
    pub fn concat(parts: &[&LabelMatrix]) -> LabelMatrix {
        let Some(first) = parts.first() else {
            return LabelMatrix { n_rows: 0, n_lfs: 0, votes: Vec::new(), names: Vec::new() };
        };
        let mut votes = Vec::with_capacity(parts.iter().map(|p| p.votes.len()).sum());
        let mut n_rows = 0;
        for p in parts {
            assert_eq!(p.n_lfs, first.n_lfs, "segment LF count mismatch");
            assert_eq!(p.names, first.names, "segment LF name mismatch");
            votes.extend_from_slice(&p.votes);
            n_rows += p.n_rows;
        }
        LabelMatrix { n_rows, n_lfs: first.n_lfs, votes, names: first.names.clone() }
    }

    /// An empty matrix over `names` with buffer space for `n_rows` rows
    /// reserved up front — the destination for streaming appends
    /// ([`LabelMatrix::append_rows`], [`LabelMatrix::push_row`]), which
    /// then fill one allocation in place instead of gathering per-segment
    /// matrices and copying them all again at the end.
    pub fn with_row_capacity(n_rows: usize, names: Vec<String>) -> LabelMatrix {
        let n_lfs = names.len();
        LabelMatrix { n_rows: 0, n_lfs, votes: Vec::with_capacity(n_rows * n_lfs), names }
    }

    /// Appends `part`'s rows in place. Votes are pure per-row values, so
    /// appending segment-by-segment is bit-identical to
    /// [`LabelMatrix::concat`] over the same parts in the same order —
    /// without holding every part resident at once.
    ///
    /// # Panics
    /// Panics if `part` disagrees on LF columns.
    pub fn append_rows(&mut self, part: &LabelMatrix) {
        assert_eq!(part.n_lfs, self.n_lfs, "segment LF count mismatch");
        assert_eq!(part.names, self.names, "segment LF name mismatch");
        self.votes.extend_from_slice(&part.votes);
        self.n_rows += part.n_rows;
    }

    /// Appends one row of votes.
    ///
    /// # Panics
    /// Panics unless `row` holds exactly one vote per LF column.
    pub fn push_row(&mut self, row: &[i8]) {
        assert_eq!(row.len(), self.n_lfs, "row width mismatch");
        self.votes.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Approximate resident size in bytes (vote buffer dominates); used by
    /// the sharded driver's memory accounting.
    pub fn approx_bytes(&self) -> usize {
        self.votes.len() * std::mem::size_of::<i8>()
            + self.names.iter().map(|n| n.len() + std::mem::size_of::<String>()).sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Resident bytes counting reserved-but-unfilled vote capacity — what
    /// a memory tracker should charge for a preallocated streaming target
    /// the moment it is created.
    pub fn capacity_bytes(&self) -> usize {
        self.votes.capacity() * std::mem::size_of::<i8>()
            + self.names.iter().map(|n| n.len() + std::mem::size_of::<String>()).sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

/// The one vote-fill path both [`LabelMatrix::apply_with`] and
/// [`LabelMatrix::apply_append_with`] go through: `votes` is exactly
/// `table.len() * lfs.len()` cells (a fresh buffer or the tail of a
/// preallocated one — the chunking sees only the slice, so the bits
/// cannot differ between the two callers).
fn apply_into(
    table: &FeatureTable,
    lfs: &[Box<dyn LabelingFunction>],
    votes: &mut [i8],
    par: &ParConfig,
) {
    let n_rows = table.len();
    let n_lfs = lfs.len();
    // Freeze once per matrix: every LF then reads contiguous columns
    // instead of dispatching through the schema per row.
    let frozen = FrozenTable::freeze(table);
    let work = n_rows.saturating_mul(n_lfs);
    if work < PAR_THRESHOLD || n_rows < 2 {
        fill_votes(&frozen, lfs, votes, 0, n_rows);
    } else {
        let par = par.clone().with_min_chunk(MIN_ROWS_PER_CHUNK);
        if let Err(e) = cm_par::par_chunks_mut(&par, votes, n_lfs, |start, chunk| {
            fill_votes_from(&frozen, lfs, chunk, start);
        }) {
            e.resume();
        }
    }
}

fn fill_votes(
    frozen: &FrozenTable<'_>,
    lfs: &[Box<dyn LabelingFunction>],
    votes: &mut [i8],
    start: usize,
    end: usize,
) {
    let n_lfs = lfs.len();
    for r in start..end {
        for (j, lf) in lfs.iter().enumerate() {
            votes[r * n_lfs + j] = lf.vote_frozen(frozen, r).as_i8();
        }
    }
}

/// Fills a chunk of the vote buffer whose first row is `start` (the shape
/// `cm_par::par_chunks_mut` hands out).
fn fill_votes_from(
    frozen: &FrozenTable<'_>,
    lfs: &[Box<dyn LabelingFunction>],
    chunk: &mut [i8],
    start: usize,
) {
    let n_lfs = lfs.len();
    for (i, rec) in chunk.chunks_exact_mut(n_lfs).enumerate() {
        for (j, lf) in lfs.iter().enumerate() {
            rec[j] = lf.vote_frozen(frozen, start + i).as_i8();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, ServingMode,
        Vocabulary,
    };

    use super::*;
    use crate::lf::CategoricalContainsLf;

    fn table(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::A,
            ServingMode::Servable,
            Vocabulary::from_names(["x", "y"]),
        )]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            t.push_row(&[FeatureValue::Categorical(CatSet::single((i % 2) as u32))]);
        }
        t
    }

    fn lfs() -> Vec<Box<dyn LabelingFunction>> {
        vec![
            Box::new(CategoricalContainsLf::new(0, vec![0], false, Vote::Positive)),
            Box::new(CategoricalContainsLf::new(0, vec![1], false, Vote::Negative)),
        ]
    }

    #[test]
    fn apply_collects_votes() {
        let t = table(4);
        let m = LabelMatrix::apply(&t, &lfs());
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_lfs(), 2);
        assert_eq!(m.vote(0, 0), Vote::Positive);
        assert_eq!(m.vote(0, 1), Vote::Abstain);
        assert_eq!(m.vote(1, 0), Vote::Abstain);
        assert_eq!(m.vote(1, 1), Vote::Negative);
    }

    #[test]
    fn coverage_overlap_conflict() {
        // LF0 labels even rows +, LF1 labels odd rows -: full coverage,
        // no overlap, no conflict.
        let m = LabelMatrix::apply(&table(10), &lfs());
        assert_eq!(m.coverage(), 1.0);
        assert_eq!(m.overlap(), 0.0);
        assert_eq!(m.conflict(), 0.0);
        assert_eq!(m.lf_coverage(0), 0.5);
    }

    #[test]
    fn conflict_detected() {
        let m = LabelMatrix::from_votes(2, 2, vec![1, -1, 0, 0], vec!["a".into(), "b".into()]);
        assert_eq!(m.conflict(), 0.5);
        assert_eq!(m.overlap(), 0.5);
        assert_eq!(m.coverage(), 0.5);
        assert_eq!(m.covered_rows(), vec![0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // 30k rows x 2 LFs crosses the parallel threshold.
        let t = table(30_000);
        let serial = {
            let mut votes = vec![0i8; 30_000 * 2];
            fill_votes(&FrozenTable::freeze(&t), &lfs(), &mut votes, 0, 30_000);
            LabelMatrix::from_votes(30_000, 2, votes, vec!["a".into(), "b".into()])
        };
        for threads in [1usize, 2, 4, 8] {
            let m_par = LabelMatrix::apply_with(&t, &lfs(), &ParConfig::threads(threads));
            assert_eq!(m_par.votes, serial.votes, "threads = {threads}");
        }
    }

    /// Regression test for the float-reduction-order hazard in the old
    /// scoped-thread statistics path: chunk partials must be folded in
    /// chunk index order, and the summed statistic is pinned exactly.
    ///
    /// Vote pattern over 40 000 rows (80k work, above the parallel
    /// threshold), by `row % 8`: 0 => both abstain; 1,2 => one positive
    /// vote; 3,4 => one negative vote; 5,6 => two agreeing votes;
    /// 7 => conflicting votes. Exact statistics: coverage 7/8,
    /// overlap 3/8, conflict 1/8.
    #[test]
    fn vote_stats_are_pinned_and_thread_count_invariant() {
        let n = 40_000usize;
        let mut votes = Vec::with_capacity(n * 2);
        for r in 0..n {
            let pair: [i8; 2] = match r % 8 {
                0 => [0, 0],
                1 | 2 => [1, 0],
                3 | 4 => [0, -1],
                5 | 6 => [1, 1],
                _ => [1, -1],
            };
            votes.extend_from_slice(&pair);
        }
        let m = LabelMatrix::from_votes(n, 2, votes, vec!["a".into(), "b".into()]);
        let serial = m.vote_stats_with(&ParConfig::serial());
        assert_eq!(serial.coverage, 0.875);
        assert_eq!(serial.overlap, 0.375);
        assert_eq!(serial.conflict, 0.125);
        let summed = serial.coverage + serial.overlap + serial.conflict;
        assert_eq!(summed.to_bits(), 1.375f64.to_bits());
        for threads in [2usize, 4, 8] {
            let par = m.vote_stats_with(&ParConfig::threads(threads));
            assert_eq!(par, serial, "threads = {threads}");
            let par_summed = par.coverage + par.overlap + par.conflict;
            assert_eq!(par_summed.to_bits(), summed.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_votes_checks_shape() {
        LabelMatrix::from_votes(2, 2, vec![0; 3], vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "votes must be in")]
    fn from_votes_checks_encoding() {
        LabelMatrix::from_votes(1, 1, vec![5], vec!["a".into()]);
    }

    #[test]
    fn all_abstain_columns_and_without_columns() {
        let m = LabelMatrix::from_votes(
            3,
            3,
            vec![1, 0, -1, 0, 0, 1, 1, 0, 0],
            vec!["a".into(), "b".into(), "c".into()],
        );
        assert_eq!(m.all_abstain_columns(), vec![1]);
        let reduced = m.without_columns(&[1]);
        assert_eq!(reduced.n_lfs(), 2);
        assert_eq!(reduced.names(), &["a".to_owned(), "c".to_owned()]);
        assert_eq!(reduced.row(0), &[1, -1]);
        assert_eq!(reduced.row(1), &[0, 1]);
        assert_eq!(reduced.row(2), &[1, 0]);
        // Out-of-range and duplicate drops are ignored.
        let same = m.without_columns(&[7, 7]);
        assert_eq!(same.row(0), m.row(0));
        assert_eq!(same.n_lfs(), 3);
    }

    /// Any partition of the rows into segments must merge to the same
    /// counts (and therefore the same stats bits) as the whole matrix —
    /// the associative-merge contract `cm-shard` relies on.
    #[test]
    fn vote_counts_merge_over_any_partition_matches_whole() {
        let n = 40_000usize;
        let mut votes = Vec::with_capacity(n * 2);
        for r in 0..n {
            let pair: [i8; 2] = match r % 8 {
                0 => [0, 0],
                1 | 2 => [1, 0],
                3 | 4 => [0, -1],
                5 | 6 => [1, 1],
                _ => [1, -1],
            };
            votes.extend_from_slice(&pair);
        }
        let m = LabelMatrix::from_votes(n, 2, votes, vec!["a".into(), "b".into()]);
        let whole = m.vote_counts_with(&ParConfig::serial());
        assert_eq!(whole.n_rows, n);
        for cuts in [vec![1, 2, 3], vec![512], vec![9973, 20_000], vec![n]] {
            let mut merged = VoteCounts::default();
            let mut start = 0;
            for end in cuts.iter().copied().chain([n]) {
                let seg_votes = m.votes[start * 2..end * 2].to_vec();
                let seg = LabelMatrix::from_votes(end - start, 2, seg_votes, m.names.clone());
                merged = merged.merge(seg.vote_counts_with(&ParConfig::serial()));
                start = end;
            }
            assert_eq!(merged, whole, "cuts = {cuts:?}");
            assert_eq!(VoteStats::from_counts(merged), m.vote_stats_with(&ParConfig::serial()));
        }
    }

    #[test]
    fn concat_of_segments_matches_whole_apply() {
        let t = table(100);
        let whole = LabelMatrix::apply(&t, &lfs());
        let mut segs = Vec::new();
        for (start, end) in [(0usize, 1usize), (1, 37), (37, 100)] {
            let schema = t.schema();
            let mut seg = FeatureTable::new(Arc::clone(schema));
            for r in start..end {
                seg.push_row(&t.row(r));
            }
            segs.push(LabelMatrix::apply(&seg, &lfs()));
        }
        let parts: Vec<&LabelMatrix> = segs.iter().collect();
        assert_eq!(LabelMatrix::concat(&parts), whole);

        // The streaming append path the sharded driver actually takes:
        // same parts, same order, one preallocated buffer — same bits,
        // whether appended whole or pushed row by row.
        let mut streamed = LabelMatrix::with_row_capacity(whole.n_rows(), whole.names().to_vec());
        for seg in &segs {
            streamed.append_rows(seg);
        }
        assert_eq!(streamed, whole);
        let mut by_row = LabelMatrix::with_row_capacity(whole.n_rows(), whole.names().to_vec());
        for seg in &segs {
            for r in 0..seg.n_rows() {
                by_row.push_row(seg.row(r));
            }
        }
        assert_eq!(by_row, whole);
    }

    #[test]
    fn empty_matrix_statistics() {
        let m = LabelMatrix::from_votes(0, 1, vec![], vec!["a".into()]);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.overlap(), 0.0);
        assert_eq!(m.conflict(), 0.0);
    }
}
