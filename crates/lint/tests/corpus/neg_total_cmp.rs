//@ path: crates/demo/src/lib.rs
// Seeded negative (float-ordering): total_cmp comparators are the
// sanctioned spelling.

pub fn f(scores: &mut [f64], xs: &[f32]) -> f64 {
    scores.sort_by(|a, b| a.total_cmp(b));
    let hi = scores.iter().copied().max_by(f64::total_cmp).unwrap_or(0.0);
    let lo = xs.iter().copied().min_by(f32::total_cmp).unwrap_or(0.0);
    hi + f64::from(lo)
}
