//! Randomized tests on cross-crate invariants (seeded, in-tree PRNG).

use cross_modal::eval::{auprc, roc_auc};
use cross_modal::featurespace::{
    normalized_similarity, CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable,
    FeatureValue, ServingMode, SimilarityConfig, Vocabulary,
};
use cross_modal::labelmodel::{majority_vote, LabelMatrix};
use cross_modal::linalg::rng::{Rng, StdRng};
use std::sync::Arc;

const CASES: u64 = 64;

fn schema() -> Arc<FeatureSchema> {
    Arc::new(FeatureSchema::from_defs(vec![
        FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
        FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names((0..8).map(|i| format!("v{i}"))),
        ),
    ]))
}

fn random_row(rng: &mut StdRng) -> Vec<FeatureValue> {
    let num = if rng.gen_bool(0.7) {
        FeatureValue::Numeric(rng.gen_range(-100.0..100.0))
    } else {
        FeatureValue::Missing
    };
    let cats = if rng.gen_bool(0.7) {
        let n = rng.gen_range(0..5usize);
        let mut ids: Vec<u32> = (0..n).map(|_| rng.gen_range(0..8u32)).collect();
        ids.sort_unstable();
        ids.dedup();
        FeatureValue::Categorical(CatSet::from_ids(ids))
    } else {
        FeatureValue::Missing
    };
    vec![num, cats]
}

fn random_table(
    rng: &mut StdRng,
    min_rows: usize,
    max_rows: usize,
) -> (FeatureTable, Vec<Vec<FeatureValue>>) {
    let n = rng.gen_range(min_rows..max_rows);
    let rows: Vec<Vec<FeatureValue>> = (0..n).map(|_| random_row(rng)).collect();
    let mut table = FeatureTable::new(schema());
    for row in &rows {
        table.push_row(row);
    }
    (table, rows)
}

/// Round trip: rows pushed into a table come back value-identical.
#[test]
fn table_round_trips_rows() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7AB1E ^ case);
        let (table, rows) = random_table(&mut rng, 1, 20);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(&table.row(r), row, "case {case}");
        }
    }
}

/// gather is a projection: gathering all indices reproduces the table.
#[test]
fn gather_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6A7 ^ case);
        let (table, _) = random_table(&mut rng, 1, 15);
        let all: Vec<usize> = (0..table.len()).collect();
        let g = table.gather(&all);
        for r in 0..table.len() {
            assert_eq!(table.row(r), g.row(r), "case {case}");
        }
    }
}

/// Similarity is symmetric, bounded, and maximal on identical rows.
#[test]
fn similarity_axioms() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51 ^ case);
        let (table, _) = random_table(&mut rng, 2, 12);
        let cfg = SimilarityConfig::uniform(vec![0, 1]);
        for i in 0..table.len() {
            for j in 0..table.len() {
                let a = normalized_similarity((&table, i), (&table, j), &cfg);
                let b = normalized_similarity((&table, j), (&table, i), &cfg);
                assert!((a - b).abs() < 1e-12, "case {case}");
                assert!((0.0..=1.0).contains(&a), "case {case}");
            }
            let present = table.is_present(i, 0) || table.is_present(i, 1);
            if present {
                let self_sim = normalized_similarity((&table, i), (&table, i), &cfg);
                assert!((self_sim - 1.0).abs() < 1e-9, "case {case}");
            }
        }
    }
}

/// AUPRC is invariant under strictly monotone score transforms and
/// bounded by [0, 1]; ROC-AUC of complemented labels mirrors around 0.5.
#[test]
fn ranking_metric_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xAA ^ case);
        let n = rng.gen_range(3..40usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let ap = auprc(&scores, &labels);
        assert!((0.0..=1.0 + 1e-12).contains(&ap), "case {case}");
        // Monotone transform: exp(x/25) keeps the order (and stays finite).
        let transformed: Vec<f64> = scores.iter().map(|&s| (s / 25.0).exp()).collect();
        let ap_t = auprc(&transformed, &labels);
        assert!((ap - ap_t).abs() < 1e-9, "case {case}: {ap} vs {ap_t}");

        let auc = roc_auc(&scores, &labels);
        let inverted: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let auc_inv = roc_auc(&inverted, &labels);
        let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
        if has_both {
            assert!((auc + auc_inv - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}

/// Majority vote respects unanimity: rows where all non-abstain votes
/// agree get the extreme label.
#[test]
fn majority_vote_unanimity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x30 ^ case);
        let n_lfs = 4;
        let n_rows = rng.gen_range(1..15usize);
        let votes: Vec<i8> =
            (0..n_rows * n_lfs).map(|_| [-1i8, 0, 1][rng.gen_range(0..3usize)]).collect();
        let names = (0..n_lfs).map(|i| format!("lf{i}")).collect();
        let m = LabelMatrix::from_votes(n_rows, n_lfs, votes, names);
        let mv = majority_vote(&m);
        for (r, &value) in mv.iter().enumerate() {
            let row = m.row(r);
            let pos = row.iter().filter(|&&v| v > 0).count();
            let neg = row.iter().filter(|&&v| v < 0).count();
            if pos > 0 && neg == 0 {
                assert_eq!(value, 1.0, "case {case}");
            } else if neg > 0 && pos == 0 {
                assert_eq!(value, 0.0, "case {case}");
            } else if pos == 0 && neg == 0 {
                assert_eq!(value, 0.5, "case {case}");
            }
            assert!((0.0..=1.0).contains(&value), "case {case}");
        }
    }
}
