//! Label propagation over the common feature space (paper §4.4).
//!
//! The paper's Expander-based label propagation finds *borderline* examples:
//! data points of the new modality whose categorical signal is too weak for
//! mined LFs, but which sit near labeled old-modality points in the graph
//! induced by Algorithm 1's weights. This crate provides:
//!
//! - [`graph`] — a CSR sparse similarity graph;
//! - [`builder`] — k-NN graph construction over one or more feature tables
//!   (exact for small data, anchor-based approximate for large pools —
//!   single-machine stand-ins for Expander's distributed build);
//! - [`propagate`] — Zhu–Ghahramani iterative propagation with clamped
//!   seeds, plus an Expander-inspired in-place (Gauss–Seidel) streaming
//!   variant;
//! - [`score_lf`] — turning propagation scores into a threshold LF with
//!   thresholds tuned on the old-modality dev set, the form in which
//!   propagation enters the weak-supervision pipeline.

pub mod builder;
pub mod graph;
pub mod online;
pub mod propagation;
pub mod score_lf;

pub use builder::{anchor_plan, candidate_stride, route_row, GraphBuilder, KnnMethod, TopK};
pub use graph::SparseGraph;
pub use online::{target_anchor_count, OnlineGraph, OnlineGraphDelta, OnlineGraphState};
pub use propagation::{propagate, propagate_streaming, PropagationConfig};
pub use score_lf::{tune_score_thresholds, TunedThresholds};
