//! Columnar storage of feature vectors with explicit missingness.

use std::sync::Arc;

use crate::error::{CmError, CmResult, ErrorKind};
use crate::schema::FeatureSchema;
use crate::value::{CatSet, FeatureKind, FeatureValue};

/// One column of a [`FeatureTable`].
///
/// Categorical columns use offsets-plus-ids storage (an Arrow-style list
/// column) so multivalent sets stay contiguous; every column carries a
/// validity vector because the modality gap makes missingness pervasive.
#[derive(Debug, Clone)]
pub enum Column {
    /// Numeric column.
    Numeric {
        /// Values (0.0 where missing).
        values: Vec<f64>,
        /// Validity.
        present: Vec<bool>,
    },
    /// Multivalent categorical column.
    Categorical {
        /// `offsets[i]..offsets[i+1]` indexes `ids` for row `i`.
        offsets: Vec<u32>,
        /// Concatenated sorted category ids.
        ids: Vec<u32>,
        /// Validity (a present-but-empty set differs from missing).
        present: Vec<bool>,
    },
    /// Fixed-width embedding column.
    Embedding {
        /// Embedding width.
        dim: usize,
        /// Row-major flattened embeddings (zeros where missing).
        data: Vec<f32>,
        /// Validity.
        present: Vec<bool>,
    },
}

impl Column {
    fn for_kind(kind: FeatureKind) -> Self {
        match kind {
            FeatureKind::Numeric => Column::Numeric { values: Vec::new(), present: Vec::new() },
            FeatureKind::Categorical => {
                Column::Categorical { offsets: vec![0], ids: Vec::new(), present: Vec::new() }
            }
            FeatureKind::Embedding { dim } => {
                Column::Embedding { dim, data: Vec::new(), present: Vec::new() }
            }
        }
    }

    fn push(&mut self, value: &FeatureValue, feature_name: &str) {
        match (self, value) {
            (Column::Numeric { values, present }, FeatureValue::Numeric(v)) => {
                values.push(*v);
                present.push(true);
            }
            (Column::Numeric { values, present }, FeatureValue::Missing) => {
                values.push(0.0);
                present.push(false);
            }
            (Column::Categorical { offsets, ids, present }, FeatureValue::Categorical(set)) => {
                ids.extend(set.iter());
                // A u32 id stream overflows only past 4B stored ids.
                // lint: allow(expect)
                offsets.push(u32::try_from(ids.len()).expect("categorical column overflow"));
                present.push(true);
            }
            (Column::Categorical { offsets, ids, present }, FeatureValue::Missing) => {
                // lint: allow(expect)
                offsets.push(u32::try_from(ids.len()).expect("categorical column overflow"));
                present.push(false);
            }
            (Column::Embedding { dim, data, present }, FeatureValue::Embedding(e)) => {
                assert_eq!(
                    e.len(),
                    *dim,
                    "embedding width {} does not match schema dim {dim} for feature {feature_name:?}",
                    e.len()
                );
                data.extend_from_slice(e);
                present.push(true);
            }
            (Column::Embedding { dim, data, present }, FeatureValue::Missing) => {
                data.extend(std::iter::repeat_n(0.0, *dim));
                present.push(false);
            }
            // Write-path contract: push_row's documented panic on a
            // kind-mismatched value, same class as its row-length assert.
            // lint: allow(panic)
            (col, val) => panic!(
                "feature {feature_name:?}: value {val:?} does not match column kind {:?}",
                std::mem::discriminant(col)
            ),
        }
    }
}

/// A columnar table of feature vectors sharing a [`FeatureSchema`].
///
/// This is the materialized *common feature space* for one modality's data
/// points: the output of the feature-generation step (§3) and the input to
/// training-data curation (§4) and model training (§5).
#[derive(Debug, Clone)]
pub struct FeatureTable {
    schema: Arc<FeatureSchema>,
    columns: Vec<Column>,
    len: usize,
}

impl FeatureTable {
    /// Empty table over a schema.
    pub fn new(schema: Arc<FeatureSchema>) -> Self {
        let columns = schema.defs().iter().map(|d| Column::for_kind(d.kind)).collect();
        Self { schema, columns, len: 0 }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<FeatureSchema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width or any value kind disagrees with the schema.
    pub fn push_row(&mut self, row: &[FeatureValue]) {
        assert_eq!(
            row.len(),
            self.schema.len(),
            "row width {} does not match schema width {}",
            row.len(),
            self.schema.len()
        );
        for ((col, value), def) in self.columns.iter_mut().zip(row).zip(self.schema.defs()) {
            col.push(value, &def.name);
        }
        self.len += 1;
    }

    /// Appends a row after validating it against the schema: width, value
    /// kinds, embedding dims, and numeric finiteness are all checked
    /// *before* any column mutates, so a rejected row leaves the table
    /// untouched. Non-finite numerics must arrive as the explicit
    /// [`FeatureValue::Missing`] sentinel, never as NaN/Inf payloads —
    /// this is the ingestion boundary that keeps corrupt service responses
    /// out of the matrices.
    pub fn try_push_row(&mut self, row: &[FeatureValue]) -> CmResult<()> {
        const LOC: &str = "FeatureTable::try_push_row";
        if row.len() != self.schema.len() {
            return Err(CmError::new(
                ErrorKind::ShapeMismatch,
                LOC,
                format!(
                    "row width {} does not match schema width {}",
                    row.len(),
                    self.schema.len()
                ),
            ));
        }
        for (value, def) in row.iter().zip(self.schema.defs()) {
            match (value.kind(), def.kind) {
                (None, _) => {}
                (Some(FeatureKind::Numeric), FeatureKind::Numeric)
                | (Some(FeatureKind::Categorical), FeatureKind::Categorical) => {}
                (Some(FeatureKind::Embedding { dim }), FeatureKind::Embedding { dim: want })
                    if dim == want => {}
                (got, want) => {
                    return Err(CmError::new(
                        ErrorKind::SchemaMismatch,
                        LOC,
                        format!(
                            "feature {:?}: value kind {got:?} does not match {want:?}",
                            def.name
                        ),
                    ))
                }
            }
            if !value.is_finite() {
                return Err(CmError::new(
                    ErrorKind::Numeric,
                    LOC,
                    format!(
                        "feature {:?}: non-finite value {value:?}; use FeatureValue::Missing",
                        def.name
                    ),
                ));
            }
        }
        self.push_row(row);
        Ok(())
    }

    /// Reserves capacity for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        for col in &mut self.columns {
            match col {
                Column::Numeric { values, present } => {
                    values.reserve(additional);
                    present.reserve(additional);
                }
                Column::Categorical { present, .. } => present.reserve(additional),
                Column::Embedding { dim, data, present } => {
                    data.reserve(additional * *dim);
                    present.reserve(additional);
                }
            }
        }
    }

    /// Whether `(row, col)` holds a value.
    pub fn is_present(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.len);
        match &self.columns[col] {
            Column::Numeric { present, .. }
            | Column::Categorical { present, .. }
            | Column::Embedding { present, .. } => present[row],
        }
    }

    /// Numeric value at `(row, col)`; `None` if missing or if the column
    /// is not numeric (`cm-check` validates column kinds pre-execution).
    pub fn numeric(&self, row: usize, col: usize) -> Option<f64> {
        match &self.columns[col] {
            Column::Numeric { values, present } => present[row].then(|| values[row]),
            _ => None,
        }
    }

    /// Sorted category ids at `(row, col)`; `None` if missing or if the
    /// column is not categorical (`cm-check` validates kinds
    /// pre-execution).
    pub fn categorical(&self, row: usize, col: usize) -> Option<&[u32]> {
        match &self.columns[col] {
            Column::Categorical { offsets, ids, present } => present[row].then(|| {
                let start = offsets[row] as usize;
                let end = offsets[row + 1] as usize;
                &ids[start..end]
            }),
            _ => None,
        }
    }

    /// Embedding at `(row, col)`; `None` if missing or if the column is
    /// not an embedding (`cm-check` validates kinds pre-execution).
    pub fn embedding(&self, row: usize, col: usize) -> Option<&[f32]> {
        match &self.columns[col] {
            Column::Embedding { dim, data, present } => {
                present[row].then(|| &data[row * dim..(row + 1) * dim])
            }
            _ => None,
        }
    }

    /// Materializes the value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> FeatureValue {
        match &self.columns[col] {
            Column::Numeric { .. } => {
                self.numeric(row, col).map_or(FeatureValue::Missing, FeatureValue::Numeric)
            }
            Column::Categorical { .. } => {
                self.categorical(row, col).map_or(FeatureValue::Missing, |ids| {
                    FeatureValue::Categorical(CatSet::from_ids(ids.to_vec()))
                })
            }
            Column::Embedding { .. } => self
                .embedding(row, col)
                .map_or(FeatureValue::Missing, |e| FeatureValue::Embedding(e.to_vec())),
        }
    }

    /// Materializes a full row.
    pub fn row(&self, row: usize) -> Vec<FeatureValue> {
        (0..self.schema.len()).map(|c| self.value(row, c)).collect()
    }

    /// Direct access to a column.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// Builds a new table containing `rows` (in the given order).
    pub fn gather(&self, rows: &[usize]) -> FeatureTable {
        let mut out = FeatureTable::new(Arc::clone(&self.schema));
        out.reserve(rows.len());
        for &r in rows {
            assert!(r < self.len, "gather row {r} out of bounds (len {})", self.len);
            out.push_row(&self.row(r));
        }
        out
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    /// Panics if the schemas differ (pointer or length inequality is treated
    /// as a schema mismatch).
    pub fn extend_from(&mut self, other: &FeatureTable) {
        assert_eq!(self.schema.len(), other.schema.len(), "extend_from schema width mismatch");
        self.reserve(other.len());
        for r in 0..other.len() {
            self.push_row(&other.row(r));
        }
    }

    /// Approximate resident size in bytes: the column storage plus the
    /// struct header. Used by the sharded curation layer's memory
    /// accounting (`CM_MEM_BUDGET`); capacity slack is not counted, so the
    /// figure is a lower bound on the allocator's view.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        for col in &self.columns {
            bytes += match col {
                Column::Numeric { values, present } => {
                    values.len() * std::mem::size_of::<f64>() + present.len()
                }
                Column::Categorical { offsets, ids, present } => {
                    (offsets.len() + ids.len()) * std::mem::size_of::<u32>() + present.len()
                }
                Column::Embedding { data, present, .. } => {
                    data.len() * std::mem::size_of::<f32>() + present.len()
                }
            };
        }
        bytes
    }

    /// Fraction of present values in a column.
    pub fn column_coverage(&self, col: usize) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let present = match &self.columns[col] {
            Column::Numeric { present, .. }
            | Column::Categorical { present, .. }
            | Column::Embedding { present, .. } => present,
        };
        present.iter().filter(|&&p| p).count() as f64 / self.len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureDef, FeatureSet, ServingMode};
    use crate::vocab::Vocabulary;

    fn schema() -> Arc<FeatureSchema> {
        Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("reports", FeatureSet::A, ServingMode::Servable),
            FeatureDef::categorical(
                "topic",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["sports", "news", "pets"]),
            ),
            FeatureDef::embedding("emb", 3, FeatureSet::ModalitySpecific, ServingMode::Servable),
        ]))
    }

    fn sample_table() -> FeatureTable {
        let mut t = FeatureTable::new(schema());
        t.push_row(&[
            FeatureValue::Numeric(2.0),
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 2])),
            FeatureValue::Embedding(vec![1.0, 0.0, -1.0]),
        ]);
        t.push_row(&[
            FeatureValue::Missing,
            FeatureValue::Categorical(CatSet::single(1)),
            FeatureValue::Missing,
        ]);
        t.push_row(&[
            FeatureValue::Numeric(-1.5),
            FeatureValue::Missing,
            FeatureValue::Embedding(vec![0.0, 0.5, 0.5]),
        ]);
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = sample_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.numeric(0, 0), Some(2.0));
        assert_eq!(t.numeric(1, 0), None);
        assert_eq!(t.categorical(0, 1), Some(&[0u32, 2][..]));
        assert_eq!(t.categorical(2, 1), None);
        assert_eq!(t.embedding(0, 2), Some(&[1.0f32, 0.0, -1.0][..]));
        assert_eq!(t.embedding(1, 2), None);
    }

    #[test]
    fn presence_tracking() {
        let t = sample_table();
        assert!(t.is_present(0, 0));
        assert!(!t.is_present(1, 0));
        assert!(!t.is_present(2, 1));
        assert!((t.column_coverage(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn value_round_trips_row() {
        let t = sample_table();
        let row = t.row(0);
        assert_eq!(row[0], FeatureValue::Numeric(2.0));
        assert_eq!(row[1], FeatureValue::Categorical(CatSet::from_ids(vec![0, 2])));
        let row1 = t.row(1);
        assert_eq!(row1[0], FeatureValue::Missing);
        assert_eq!(row1[2], FeatureValue::Missing);
    }

    #[test]
    fn gather_reorders_rows() {
        let t = sample_table();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.numeric(0, 0), Some(-1.5));
        assert_eq!(g.numeric(1, 0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rejects_out_of_range() {
        sample_table().gather(&[5]);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = sample_table();
        let b = sample_table();
        a.extend_from(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.numeric(3, 0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_row_rejects_wrong_width() {
        let mut t = FeatureTable::new(schema());
        t.push_row(&[FeatureValue::Numeric(1.0)]);
    }

    #[test]
    #[should_panic(expected = "does not match column kind")]
    fn push_row_rejects_kind_mismatch() {
        let mut t = FeatureTable::new(schema());
        t.push_row(&[
            FeatureValue::Categorical(CatSet::new()),
            FeatureValue::Categorical(CatSet::new()),
            FeatureValue::Embedding(vec![0.0; 3]),
        ]);
    }

    #[test]
    #[should_panic(expected = "embedding width")]
    fn push_row_rejects_wrong_embedding_dim() {
        let mut t = FeatureTable::new(schema());
        t.push_row(&[
            FeatureValue::Numeric(0.0),
            FeatureValue::Categorical(CatSet::new()),
            FeatureValue::Embedding(vec![0.0; 2]),
        ]);
    }

    #[test]
    fn try_push_row_accepts_valid_rows() {
        let mut t = FeatureTable::new(schema());
        t.try_push_row(&[
            FeatureValue::Numeric(2.0),
            FeatureValue::Missing,
            FeatureValue::Embedding(vec![0.0; 3]),
        ])
        .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn try_push_row_rejects_non_finite_numerics() {
        let mut t = FeatureTable::new(schema());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = t
                .try_push_row(&[
                    FeatureValue::Numeric(bad),
                    FeatureValue::Missing,
                    FeatureValue::Missing,
                ])
                .unwrap_err();
            assert_eq!(err.kind, crate::error::ErrorKind::Numeric, "value {bad}");
        }
        assert_eq!(t.len(), 0, "rejected rows must not mutate the table");
    }

    #[test]
    fn try_push_row_rejects_non_finite_embeddings() {
        let mut t = FeatureTable::new(schema());
        let err = t
            .try_push_row(&[
                FeatureValue::Numeric(1.0),
                FeatureValue::Missing,
                FeatureValue::Embedding(vec![0.0, f32::NAN, 0.0]),
            ])
            .unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::Numeric);
    }

    #[test]
    fn try_push_row_rejects_shape_and_kind_mismatches() {
        let mut t = FeatureTable::new(schema());
        let err = t.try_push_row(&[FeatureValue::Numeric(1.0)]).unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::ShapeMismatch);
        let err = t
            .try_push_row(&[
                FeatureValue::Categorical(CatSet::new()),
                FeatureValue::Missing,
                FeatureValue::Missing,
            ])
            .unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::SchemaMismatch);
        let err = t
            .try_push_row(&[
                FeatureValue::Numeric(1.0),
                FeatureValue::Missing,
                FeatureValue::Embedding(vec![0.0; 2]),
            ])
            .unwrap_err();
        assert_eq!(err.kind, crate::error::ErrorKind::SchemaMismatch);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn empty_set_differs_from_missing() {
        let mut t = FeatureTable::new(schema());
        t.push_row(&[
            FeatureValue::Numeric(0.0),
            FeatureValue::Categorical(CatSet::new()),
            FeatureValue::Missing,
        ]);
        assert_eq!(t.categorical(0, 1), Some(&[][..]));
        assert!(t.is_present(0, 1));
        assert!(!t.is_present(0, 2));
    }
}
