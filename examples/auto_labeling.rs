//! A close look at step B: automatic labeling-function generation (§4.3)
//! and the label models that combine their votes.
//!
//! ```sh
//! cargo run --release --example auto_labeling
//! ```

use cross_modal::labelmodel::{
    evaluate_lfs, majority_vote, AnchoredModel, GenerativeConfig, GenerativeModel, LabelMatrix,
};
use cross_modal::mining::{mine_lfs, MiningConfig};
use cross_modal::prelude::*;

fn main() {
    let task = TaskConfig::paper(TaskId::Ct2).scaled(0.1);
    let world = World::build(WorldConfig::new(task.clone(), 3));
    let text = world.generate(ModalityKind::Text, task.n_text_labeled, 1);
    let pool = world.generate(ModalityKind::Image, task.n_image_unlabeled, 2);

    // Mine LFs from the labeled text corpus.
    let columns = world.schema().columns_in_sets(&FeatureSet::SHARED, false);
    let mined = mine_lfs(
        &text.table,
        &text.labels,
        &columns,
        &MiningConfig { min_precision: 0.65, ..MiningConfig::default() },
        15,
        10,
    );
    println!(
        "mined {} LFs from {} candidates in {:?} ({} positive itemsets, {} negative)",
        mined.report.n_lfs,
        mined.report.n_candidates,
        mined.report.mining_time,
        mined.report.n_positive_itemsets,
        mined.report.n_negative_itemsets,
    );

    // Inspect them against the dev corpus, as an engineer would before
    // deploying (§4.2: old-modality labels are the dev set).
    let summary = evaluate_lfs(&text.table, &text.labels, &mined.lfs);
    println!("\n{:<34} {:>9} {:>10} {:>8}", "LF", "coverage", "precision", "recall");
    for rep in summary.reports.iter().take(12) {
        println!(
            "{:<34} {:>8.1}% {:>10} {:>7.1}%",
            truncate(&rep.name, 34),
            rep.coverage * 100.0,
            rep.positive_precision.map_or_else(|| "-".into(), |p| format!("{:.1}%", p * 100.0)),
            rep.positive_recall * 100.0,
        );
    }
    println!(
        "pooled: precision {:.2}, recall {:.2}, F1 {:.2}, coverage {:.1}%",
        summary.pooled_precision,
        summary.pooled_recall,
        summary.pooled_f1,
        summary.overall_coverage * 100.0
    );

    // Apply to the unlabeled image pool and compare the three label models.
    let dev_matrix = LabelMatrix::apply(&text.table, &mined.lfs);
    let pool_matrix = LabelMatrix::apply(&pool.table, &mined.lfs);
    println!(
        "\npool label matrix: coverage {:.1}%, overlap {:.1}%, conflict {:.1}%",
        pool_matrix.coverage() * 100.0,
        pool_matrix.overlap() * 100.0,
        pool_matrix.conflict() * 100.0
    );

    let truth: Vec<bool> = pool.labels.iter().map(|l| l.is_positive()).collect();
    let score = |name: &str, probs: &[f64]| {
        println!("{name:<22} AUPRC of probabilistic labels: {:.4}", auprc(probs, &truth));
    };
    let anchored = AnchoredModel::fit(&dev_matrix, &text.labels, Some(task.profile.positive_rate));
    score("anchored (dev rates)", &anchored.predict(&pool_matrix));
    let em = GenerativeModel::fit(&pool_matrix, &GenerativeConfig::default());
    score("EM generative", &em.predict(&pool_matrix));
    score("majority vote", &majority_vote(&pool_matrix));
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}
