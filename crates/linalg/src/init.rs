//! Seeded parameter initializers.

use crate::rng::Rng;
use crate::Matrix;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suitable for sigmoid/tanh layers.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
    Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-a..=a))
}

/// He normal initialization: `N(0, sqrt(2 / fan_in))`. Suitable for ReLU
/// layers. Uses a Box-Muller transform so only `rand`'s uniform source is
/// needed.
pub fn he_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    Matrix::from_fn(fan_out, fan_in, |_, _| (standard_normal(rng) * std) as f32)
}

/// One standard-normal sample via Box-Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid log(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 100, 50);
        let a = (6.0f64 / 150.0).sqrt() as f32;
        assert_eq!(m.shape(), (50, 100));
        assert!(m.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = he_normal(&mut rng, 400, 100);
        let n = m.as_slice().len() as f64;
        let mean: f64 = m.as_slice().iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let var: f64 = m.as_slice().iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / n;
        let expected = 2.0 / 400.0;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!((var - expected).abs() < expected * 0.2, "var {var} vs expected {expected}");
    }

    #[test]
    fn initializers_are_deterministic_per_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(3), 10, 10);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(3), 10, 10);
        assert_eq!(a, b);
        let c = xavier_uniform(&mut StdRng::seed_from_u64(4), 10, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_normal_never_nan() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
