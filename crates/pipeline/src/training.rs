//! Model training and evaluation scenarios (pipeline step C, §5–§6).
//!
//! A [`Scenario`] describes one model of the paper's evaluation matrix:
//! which feature-set ladder each modality uses (`T + ABC`, `I + AB`, ...),
//! where the image labels come from (weak supervision vs hand labels), and
//! which fusion strategy trains it. [`ScenarioRunner`] densifies, masks,
//! trains, and scores it on the held-out image test set.

use cm_featurespace::{CmError, CmResult, ErrorKind, FeatureSet};
use cm_fusion::{DeViseModel, EarlyFusionModel, IntermediateFusionModel, ModalityData};
use cm_models::{ModelKind, TrainConfig};

use crate::curation::CurationOutput;
use crate::data::{mask_disallowed_sets, DenseView, TaskData};
use crate::report::ModelEval;

/// Multi-modal training strategy (§5, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionStrategy {
    /// Single model over concatenated datasets (the paper's winner).
    Early,
    /// Per-modality encoders + joint head.
    Intermediate,
    /// Frozen old-modality model + projection (classic baseline).
    DeVise,
}

/// Where the image part's training labels come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSource {
    /// Probabilistic labels from the curation step (covered rows only).
    Weak,
    /// `n` hand-labeled images from the labeled reservoir.
    FullySupervised {
        /// Number of labeled images.
        n: usize,
    },
}

/// One evaluation scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (e.g. `"T+ABCD, I+ABCD"`).
    pub name: String,
    /// Feature sets for the text part; empty disables the text modality.
    pub text_sets: Vec<FeatureSet>,
    /// Feature sets for the image part and test encoding.
    pub image_sets: Vec<FeatureSet>,
    /// Image-label source; `None` disables the image modality.
    pub image_labels: Option<LabelSource>,
    /// Include modality-specific features (pre-trained image embeddings,
    /// word counts) in the layout.
    pub include_modality_specific: bool,
    /// Fusion strategy.
    pub strategy: FusionStrategy,
}

impl Scenario {
    /// The paper's headline cross-modal model: `T, I + ABCD`, early fusion,
    /// weakly supervised image labels.
    pub fn cross_modal(sets: &[FeatureSet]) -> Self {
        Self {
            name: format!("cross-modal T,I+{}", set_names(sets)),
            text_sets: sets.to_vec(),
            image_sets: sets.to_vec(),
            image_labels: Some(LabelSource::Weak),
            include_modality_specific: true,
            strategy: FusionStrategy::Early,
        }
    }

    /// Text-only model applied across the modality gap.
    pub fn text_only(sets: &[FeatureSet]) -> Self {
        Self {
            name: format!("text-only T+{}", set_names(sets)),
            text_sets: sets.to_vec(),
            image_sets: sets.to_vec(),
            image_labels: None,
            include_modality_specific: true,
            strategy: FusionStrategy::Early,
        }
    }

    /// Weakly supervised image-only model.
    pub fn image_only(sets: &[FeatureSet]) -> Self {
        Self {
            name: format!("image-only I+{}", set_names(sets)),
            text_sets: Vec::new(),
            image_sets: sets.to_vec(),
            image_labels: Some(LabelSource::Weak),
            include_modality_specific: true,
            strategy: FusionStrategy::Early,
        }
    }

    /// Fully supervised image model with `n` hand labels.
    pub fn fully_supervised(sets: &[FeatureSet], n: usize) -> Self {
        Self {
            name: format!("fully-supervised I+{} (n={n})", set_names(sets)),
            text_sets: Vec::new(),
            image_sets: sets.to_vec(),
            image_labels: Some(LabelSource::FullySupervised { n }),
            include_modality_specific: true,
            strategy: FusionStrategy::Early,
        }
    }

    /// Builds the runnable scenario a validated spec declares. The spec's
    /// `fully_supervised` label counts are taken verbatim; callers running
    /// below scale 1.0 scale them alongside the rest of the world (see
    /// `cm-bench`).
    pub fn from_spec(spec: &cm_check::ScenarioSpec) -> Self {
        use cm_check::{FusionKind, SpecLabelSource};
        Self {
            name: spec.name.clone(),
            text_sets: spec.text_sets.clone(),
            image_sets: spec.image_sets.clone(),
            image_labels: match spec.label_source {
                SpecLabelSource::Weak => Some(LabelSource::Weak),
                SpecLabelSource::None => None,
                SpecLabelSource::FullySupervised(n) => Some(LabelSource::FullySupervised { n }),
            },
            include_modality_specific: spec.include_modality_specific,
            strategy: match spec.fusion {
                FusionKind::Early => FusionStrategy::Early,
                FusionKind::Intermediate => FusionStrategy::Intermediate,
                FusionKind::DeVise => FusionStrategy::DeVise,
            },
        }
    }
}

fn set_names(sets: &[FeatureSet]) -> String {
    sets.iter()
        .map(|s| match s {
            FeatureSet::A => 'A',
            FeatureSet::B => 'B',
            FeatureSet::C => 'C',
            FeatureSet::D => 'D',
            FeatureSet::ModalitySpecific => '*',
        })
        .collect()
}

/// Trains and evaluates scenarios over one task's data.
pub struct ScenarioRunner<'a> {
    /// Task data bundle.
    pub data: &'a TaskData,
    /// Model family.
    pub model: ModelKind,
    /// Training hyperparameters.
    pub train: TrainConfig,
}

impl ScenarioRunner<'_> {
    /// AUPRC of the paper's baseline: a fully supervised image model over
    /// pre-trained image embeddings only, trained on the whole labeled
    /// reservoir. Every reported AUPRC is divided by this.
    ///
    /// # Errors
    /// Returns [`ErrorKind::NotFound`] if the schema lacks the standard
    /// registry embedding column.
    pub fn baseline_auprc(&self) -> CmResult<f64> {
        let schema = self.data.world.schema();
        let emb = schema.column("img_embedding").ok_or_else(|| {
            CmError::new(
                ErrorKind::NotFound,
                "ScenarioRunner::baseline_auprc",
                "schema lacks the standard registry embedding \"img_embedding\"".to_owned(),
            )
        })?;
        let view = DenseView::fit(&[&self.data.labeled_image.table], vec![emb])?;
        let x = view.encode(&self.data.labeled_image.table);
        let part = ModalityData::new(x, self.data.labeled_image.labels_f64());
        let model = EarlyFusionModel::train(&[part], &self.model, &self.train, None);
        let xt = view.encode(&self.data.test.table);
        let probs = model.predict_proba(&xt);
        Ok(cm_eval::auprc(&probs, &test_positives(self.data)))
    }

    /// Runs one scenario. `curation` is required when the scenario's image
    /// labels are [`LabelSource::Weak`].
    ///
    /// # Errors
    /// Returns [`ErrorKind::InvalidConfig`] if a weak-label scenario is run
    /// without curation output, the scenario selects no features or no
    /// modality, or DeViSE is missing one of its two modality parts; and
    /// [`ErrorKind::Numeric`] if the curation output carries non-finite
    /// weak labels.
    pub fn run(
        &self,
        scenario: &Scenario,
        curation: Option<&CurationOutput>,
    ) -> CmResult<ModelEval> {
        let data = self.data;
        let schema = data.world.schema();
        let mut union_sets = scenario.text_sets.clone();
        for s in &scenario.image_sets {
            if !union_sets.contains(s) {
                union_sets.push(*s);
            }
        }
        let mut columns = schema.columns_in_sets(&union_sets, scenario.include_modality_specific);
        columns.sort_unstable();
        columns.dedup();
        if columns.is_empty() {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                "ScenarioRunner::run",
                format!("scenario {:?} selects no features", scenario.name),
            ));
        }

        let view = DenseView::fit(
            &[&data.text.table, &data.pool.table, &data.labeled_image.table],
            columns,
        )?;

        let mut allowed_text = scenario.text_sets.clone();
        let mut allowed_image = scenario.image_sets.clone();
        if scenario.include_modality_specific {
            allowed_text.push(FeatureSet::ModalitySpecific);
            allowed_image.push(FeatureSet::ModalitySpecific);
        }

        let mut parts: Vec<ModalityData> = Vec::new();
        let mut text_part_idx = None;
        if !scenario.text_sets.is_empty() {
            let mut x = view.encode(&data.text.table);
            mask_disallowed_sets(&mut x, &view, schema, &allowed_text);
            text_part_idx = Some(parts.len());
            parts.push(ModalityData::new(x, data.text.labels_f64()));
        }
        let mut image_part_idx = None;
        match scenario.image_labels {
            Some(LabelSource::Weak) => {
                let cur = curation.ok_or_else(|| {
                    CmError::new(
                        ErrorKind::InvalidConfig,
                        "ScenarioRunner::run",
                        "weak-label scenario requires curation output".to_owned(),
                    )
                })?;
                // Train on the whole pool: covered rows carry their label-
                // model posteriors; uncovered rows carry the class prior,
                // which under heavy imbalance is an (almost-)negative soft
                // label. This matches training on all 7.4M weakly labeled
                // points in the paper rather than only LF-covered ones.
                if let Some(bad) = cur.probabilistic_labels.iter().position(|p| !p.is_finite()) {
                    return Err(CmError::new(
                        ErrorKind::Numeric,
                        "ScenarioRunner::run",
                        format!(
                            "weak label at pool row {bad} is non-finite; refusing to train \
                             on a poisoned curation output"
                        ),
                    ));
                }
                let mut x = view.encode(&data.pool.table);
                mask_disallowed_sets(&mut x, &view, schema, &allowed_image);
                image_part_idx = Some(parts.len());
                parts.push(ModalityData::new(x, cur.probabilistic_labels.clone()));
            }
            Some(LabelSource::FullySupervised { n }) => {
                let sub = data.labeled_image.subsample(n, self.train.seed ^ 0xFEED);
                let mut x = view.encode(&sub.table);
                mask_disallowed_sets(&mut x, &view, schema, &allowed_image);
                image_part_idx = Some(parts.len());
                parts.push(ModalityData::new(x, sub.labels_f64()));
            }
            None => {}
        }
        if parts.is_empty() {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                "ScenarioRunner::run",
                format!("scenario {:?} has no modality", scenario.name),
            ));
        }
        let n_train: usize = parts.iter().map(|p| p.x.rows()).sum();

        let mut xt = view.encode(&data.test.table);
        mask_disallowed_sets(&mut xt, &view, schema, &allowed_image);

        let probs = match scenario.strategy {
            FusionStrategy::Early => {
                EarlyFusionModel::train(&parts, &self.model, &self.train, None).predict_proba(&xt)
            }
            FusionStrategy::Intermediate => {
                IntermediateFusionModel::train(&parts, &self.model, &self.train, None)
                    .predict_proba(&xt)
            }
            FusionStrategy::DeVise => {
                let (Some(ti), Some(ii)) = (text_part_idx, image_part_idx) else {
                    return Err(CmError::new(
                        ErrorKind::InvalidConfig,
                        "ScenarioRunner::run",
                        "DeViSE requires both an old and a new modality part".to_owned(),
                    ));
                };
                DeViseModel::train(&parts[ti], &parts[ii], &self.model, &self.train)
                    .predict_proba(&xt)
            }
        };
        let auprc = cm_eval::auprc(&probs, &test_positives(data));
        Ok(ModelEval {
            scenario: scenario.name.clone(),
            auprc,
            relative_auprc: None,
            n_train_rows: n_train,
        })
    }

    /// Runs a scenario and attaches `relative = auprc / baseline`.
    ///
    /// # Errors
    /// Propagates errors from [`ScenarioRunner::run`].
    pub fn run_relative(
        &self,
        scenario: &Scenario,
        curation: Option<&CurationOutput>,
        baseline: f64,
    ) -> CmResult<ModelEval> {
        let mut eval = self.run(scenario, curation)?;
        if baseline > 0.0 {
            eval.relative_auprc = Some(eval.auprc / baseline);
        }
        Ok(eval)
    }
}

fn test_positives(data: &TaskData) -> Vec<bool> {
    data.test.labels.iter().map(|l| l.is_positive()).collect()
}

#[cfg(test)]
mod tests {
    use cm_orgsim::{TaskConfig, TaskId};

    use super::*;
    use crate::curation::{curate, CurationConfig};

    fn data() -> TaskData {
        TaskData::generate(TaskConfig::paper(TaskId::Ct2).scaled(0.03), 17, Some(400))
    }

    fn runner(data: &TaskData) -> ScenarioRunner<'_> {
        ScenarioRunner {
            data,
            model: ModelKind::Logistic,
            train: TrainConfig { epochs: 10, ..Default::default() },
        }
    }

    #[test]
    fn cross_modal_beats_isolated_modalities() {
        let d = data();
        let r = runner(&d);
        let cur = curate(
            &d,
            &CurationConfig {
                use_label_propagation: false,
                prop_max_seeds: 200,
                ..Default::default()
            },
        );
        let sets = FeatureSet::SHARED;
        let cross = r.run(&Scenario::cross_modal(&sets), Some(&cur)).unwrap();
        let text = r.run(&Scenario::text_only(&sets), None).unwrap();
        let image = r.run(&Scenario::image_only(&sets), Some(&cur)).unwrap();
        // At this tiny unit-test scale only weak orderings are stable (the
        // strict Table-2 orderings are asserted at bench scale in
        // EXPERIMENTS.md): combining modalities must not lose to either
        // single modality, and every model must be clearly better than
        // chance.
        assert!(
            cross.auprc >= image.auprc.max(text.auprc) * 0.9,
            "cross {:.3} vs image {:.3} / text {:.3}",
            cross.auprc,
            image.auprc,
            text.auprc
        );
        assert!(cross.auprc > 0.3, "cross-modal AUPRC {:.3} too weak", cross.auprc);
        assert!(image.auprc > 0.3, "image-only AUPRC {:.3} too weak", image.auprc);
    }

    #[test]
    fn baseline_is_weaker_than_feature_models() {
        let d = data();
        let r = runner(&d);
        let cur =
            curate(&d, &CurationConfig { use_label_propagation: false, ..Default::default() });
        let baseline = r.baseline_auprc().unwrap();
        let cross = r
            .run_relative(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&cur), baseline)
            .unwrap();
        assert!(baseline > 0.0);
        let rel = cross.relative_auprc.unwrap();
        assert!(rel > 1.0, "relative AUPRC {rel} should exceed the embedding baseline");
    }

    #[test]
    fn fully_supervised_scenario_uses_n_rows() {
        let d = data();
        let r = runner(&d);
        let eval = r.run(&Scenario::fully_supervised(&FeatureSet::SHARED, 150), None).unwrap();
        assert_eq!(eval.n_train_rows, 150);
        assert!(eval.auprc > 0.0);
    }

    #[test]
    fn weak_scenario_requires_curation() {
        let d = data();
        let err = runner(&d).run(&Scenario::image_only(&FeatureSet::SHARED), None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidConfig);
        assert!(err.message.contains("requires curation output"));
    }

    #[test]
    fn spec_scenarios_match_code_defined_constructors() {
        let source = r#"{
            "name": "unit",
            "scenarios": [
                {"name": "cross-modal T,I+ABCD", "text_sets": "ABCD",
                 "image_sets": "ABCD", "label_source": "weak", "fusion": "early"},
                {"name": "image-only I+ABCD", "text_sets": "",
                 "image_sets": "ABCD", "label_source": "weak", "fusion": "early"},
                {"name": "fully-supervised I+ABCD (n=150)", "text_sets": "",
                 "image_sets": "ABCD",
                 "label_source": {"fully_supervised": 150}, "fusion": "early"}
            ]
        }"#;
        let (spec, violations) = cm_check::validate_spec_source(source, "unit.json");
        assert!(violations.is_empty(), "{violations:?}");
        let spec = spec.unwrap();
        let sets = FeatureSet::SHARED;
        assert_eq!(Scenario::from_spec(&spec.scenarios[0]), Scenario::cross_modal(&sets));
        assert_eq!(Scenario::from_spec(&spec.scenarios[1]), Scenario::image_only(&sets));
        assert_eq!(Scenario::from_spec(&spec.scenarios[2]), Scenario::fully_supervised(&sets, 150));
    }

    #[test]
    fn fusion_strategies_all_run() {
        let d = data();
        let r = ScenarioRunner {
            data: &d,
            model: ModelKind::Mlp { hidden: vec![8] },
            train: TrainConfig { epochs: 6, patience: None, ..Default::default() },
        };
        let cur =
            curate(&d, &CurationConfig { use_label_propagation: false, ..Default::default() });
        for strategy in
            [FusionStrategy::Early, FusionStrategy::Intermediate, FusionStrategy::DeVise]
        {
            let mut s = Scenario::cross_modal(&FeatureSet::SHARED);
            s.strategy = strategy;
            let eval = r.run(&s, Some(&cur)).unwrap();
            assert!(eval.auprc.is_finite());
            assert!(eval.auprc >= 0.0);
        }
    }
}
