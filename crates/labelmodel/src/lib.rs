//! Weak supervision substrate (paper §4, Snorkel/Snorkel-Drybell style).
//!
//! Labeling functions ([`lf`]) vote positive / negative / abstain over rows
//! of the common feature space. Votes are collected into a [`LabelMatrix`],
//! whose per-LF agreement structure a [`GenerativeModel`] uses to estimate
//! LF accuracies and emit *probabilistic labels* — the training signal for
//! the discriminative end model. [`diagnostics`] computes the paper's LF
//! quality metrics (coverage, precision, recall, conflict) against a
//! labeled development set.

pub mod anchored;
pub mod diagnostics;
pub mod generative;
pub mod lf;
pub mod matrix;

pub use anchored::{AnchoredModel, LfRates, RateCounts};
pub use diagnostics::{evaluate_lfs, filter_lfs, LfReport, LfSummary};
pub use generative::{majority_vote, EmMoments, GenerativeConfig, GenerativeModel, WarmStart};
pub use lf::{
    BoundScoreLf, CategoricalContainsLf, ConjunctionLf, LabelingFunction, NumericThresholdLf,
    Predicate, ThresholdDirection, Vote,
};
pub use matrix::{LabelMatrix, VoteCounts, VoteStats};
