//! Labeling functions: programmatic weak labelers over the common feature
//! space (§4.1).
//!
//! The common feature space is what makes LFs writable at all for rich
//! modalities (§4.2): predicates over categorical service outputs and
//! numeric statistics, instead of raw pixels.

use cm_featurespace::{FeatureTable, FrozenTable};

/// A labeling-function vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vote {
    /// Label the point positive.
    Positive,
    /// Label the point negative.
    Negative,
    /// Decline to label.
    Abstain,
}

impl Vote {
    /// Snorkel-style integer encoding: `+1`, `-1`, `0`.
    #[inline]
    pub fn as_i8(self) -> i8 {
        match self {
            Vote::Positive => 1,
            Vote::Negative => -1,
            Vote::Abstain => 0,
        }
    }

    /// Inverse of [`Vote::as_i8`].
    ///
    /// # Panics
    /// Panics on values outside `{-1, 0, 1}`.
    #[inline]
    pub fn from_i8(v: i8) -> Self {
        match v {
            1 => Vote::Positive,
            -1 => Vote::Negative,
            0 => Vote::Abstain,
            // Encodings come from Vote::as_i8; cm-check validates any
            // externally built matrix before use.
            // lint: allow(panic)
            other => panic!("invalid vote encoding {other}"),
        }
    }
}

/// A labeling function: maps a row of a feature table to a [`Vote`].
pub trait LabelingFunction: Send + Sync {
    /// Human-readable name (shows up in diagnostics and reports).
    fn name(&self) -> &str;

    /// Votes on row `row` of `table`. Must abstain on missing inputs.
    fn vote(&self, table: &FeatureTable, row: usize) -> Vote;

    /// Votes on row `row` of a frozen columnar view. Must return exactly
    /// the same vote as [`LabelingFunction::vote`] on the underlying
    /// table; the default delegates, and the built-in LFs override it to
    /// read the contiguous columns directly (no per-row schema dispatch),
    /// which is what [`crate::LabelMatrix::apply`] iterates over.
    fn vote_frozen(&self, frozen: &FrozenTable<'_>, row: usize) -> Vote {
        self.vote(frozen.table(), row)
    }
}

/// Votes when a categorical feature contains any (or all) of a set of ids.
/// This is the shape itemset mining produces (§4.3): a conjunction of
/// feature values over a *single* feature, minimizing LF correlation.
#[derive(Debug, Clone)]
pub struct CategoricalContainsLf {
    name: String,
    /// Source column (must be categorical).
    pub column: usize,
    /// Category ids to look for.
    pub ids: Vec<u32>,
    /// If true, all ids must be present; otherwise any suffices.
    pub require_all: bool,
    /// Vote emitted on match.
    pub on_match: Vote,
}

impl CategoricalContainsLf {
    /// Creates the LF with a generated name.
    pub fn new(column: usize, ids: Vec<u32>, require_all: bool, on_match: Vote) -> Self {
        let name = format!(
            "cat[{column}]{}{:?}=>{:?}",
            if require_all { "⊇" } else { "∩" },
            ids,
            on_match
        );
        Self { name, column, ids, require_all, on_match }
    }
}

impl LabelingFunction for CategoricalContainsLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn vote(&self, table: &FeatureTable, row: usize) -> Vote {
        self.vote_ids(table.categorical(row, self.column))
    }

    fn vote_frozen(&self, frozen: &FrozenTable<'_>, row: usize) -> Vote {
        self.vote_ids(frozen.categorical(row, self.column))
    }
}

impl CategoricalContainsLf {
    #[inline]
    fn vote_ids(&self, present: Option<&[u32]>) -> Vote {
        let Some(present) = present else {
            return Vote::Abstain;
        };
        let hit = if self.require_all {
            self.ids.iter().all(|id| present.binary_search(id).is_ok())
        } else {
            self.ids.iter().any(|id| present.binary_search(id).is_ok())
        };
        if hit {
            self.on_match
        } else {
            Vote::Abstain
        }
    }
}

/// Threshold direction for numeric LFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdDirection {
    /// Match when `value >= threshold`.
    Above,
    /// Match when `value <= threshold`.
    Below,
}

/// Votes when a numeric feature crosses a threshold.
#[derive(Debug, Clone)]
pub struct NumericThresholdLf {
    name: String,
    /// Source column (must be numeric).
    pub column: usize,
    /// Threshold value.
    pub threshold: f64,
    /// Comparison direction.
    pub direction: ThresholdDirection,
    /// Vote emitted on match.
    pub on_match: Vote,
}

impl NumericThresholdLf {
    /// Creates the LF with a generated name.
    pub fn new(
        column: usize,
        threshold: f64,
        direction: ThresholdDirection,
        on_match: Vote,
    ) -> Self {
        let op = match direction {
            ThresholdDirection::Above => ">=",
            ThresholdDirection::Below => "<=",
        };
        let name = format!("num[{column}]{op}{threshold:.3}=>{on_match:?}");
        Self { name, column, threshold, direction, on_match }
    }
}

impl LabelingFunction for NumericThresholdLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn vote(&self, table: &FeatureTable, row: usize) -> Vote {
        self.vote_value(table.numeric(row, self.column))
    }

    fn vote_frozen(&self, frozen: &FrozenTable<'_>, row: usize) -> Vote {
        self.vote_value(frozen.numeric(row, self.column))
    }
}

impl NumericThresholdLf {
    #[inline]
    fn vote_value(&self, value: Option<f64>) -> Vote {
        let Some(v) = value else {
            return Vote::Abstain;
        };
        let hit = match self.direction {
            ThresholdDirection::Above => v >= self.threshold,
            ThresholdDirection::Below => v <= self.threshold,
        };
        if hit {
            self.on_match
        } else {
            Vote::Abstain
        }
    }
}

/// One conjunct of an expert-style multi-feature LF.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Categorical feature contains the id.
    CatContains {
        /// Source column.
        column: usize,
        /// Category id.
        id: u32,
    },
    /// Numeric feature is at least `threshold`.
    NumAbove {
        /// Source column.
        column: usize,
        /// Threshold.
        threshold: f64,
    },
    /// Numeric feature is at most `threshold`.
    NumBelow {
        /// Source column.
        column: usize,
        /// Threshold.
        threshold: f64,
    },
}

impl Predicate {
    fn holds(&self, table: &FeatureTable, row: usize) -> Option<bool> {
        match *self {
            Predicate::CatContains { column, id } => {
                table.categorical(row, column).map(|ids| ids.binary_search(&id).is_ok())
            }
            Predicate::NumAbove { column, threshold } => {
                table.numeric(row, column).map(|v| v >= threshold)
            }
            Predicate::NumBelow { column, threshold } => {
                table.numeric(row, column).map(|v| v <= threshold)
            }
        }
    }

    fn holds_frozen(&self, frozen: &FrozenTable<'_>, row: usize) -> Option<bool> {
        match *self {
            Predicate::CatContains { column, id } => {
                frozen.categorical(row, column).map(|ids| ids.binary_search(&id).is_ok())
            }
            Predicate::NumAbove { column, threshold } => {
                frozen.numeric(row, column).map(|v| v >= threshold)
            }
            Predicate::NumBelow { column, threshold } => {
                frozen.numeric(row, column).map(|v| v <= threshold)
            }
        }
    }
}

/// A conjunction of predicates over multiple features — the shape human
/// domain experts write (§6.7.1). Abstains if any referenced feature is
/// missing.
#[derive(Debug, Clone)]
pub struct ConjunctionLf {
    name: String,
    /// Conjuncts that must all hold.
    pub predicates: Vec<Predicate>,
    /// Vote emitted when all hold.
    pub on_match: Vote,
}

impl ConjunctionLf {
    /// Creates a named conjunction LF.
    ///
    /// # Panics
    /// Panics if `predicates` is empty.
    pub fn new(name: impl Into<String>, predicates: Vec<Predicate>, on_match: Vote) -> Self {
        assert!(!predicates.is_empty(), "conjunction LF needs at least one predicate");
        Self { name: name.into(), predicates, on_match }
    }
}

impl LabelingFunction for ConjunctionLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn vote(&self, table: &FeatureTable, row: usize) -> Vote {
        for p in &self.predicates {
            match p.holds(table, row) {
                Some(true) => {}
                Some(false) | None => return Vote::Abstain,
            }
        }
        self.on_match
    }

    fn vote_frozen(&self, frozen: &FrozenTable<'_>, row: usize) -> Vote {
        for p in &self.predicates {
            match p.holds_frozen(frozen, row) {
                Some(true) => {}
                Some(false) | None => return Vote::Abstain,
            }
        }
        self.on_match
    }
}

/// An LF bound to precomputed per-row scores of one specific table — the
/// vehicle for label propagation output (§4.4): propagation runs offline
/// over the unlabeled pool and its scores become a threshold LF.
#[derive(Debug, Clone)]
pub struct BoundScoreLf {
    name: String,
    scores: Vec<f64>,
    /// Rows scoring at or above this vote positive.
    pub positive_threshold: f64,
    /// Rows scoring at or below this vote negative (must not exceed
    /// `positive_threshold`).
    pub negative_threshold: f64,
}

impl BoundScoreLf {
    /// Creates the LF over per-row scores.
    ///
    /// # Panics
    /// Panics if `negative_threshold > positive_threshold`.
    pub fn new(
        name: impl Into<String>,
        scores: Vec<f64>,
        positive_threshold: f64,
        negative_threshold: f64,
    ) -> Self {
        assert!(
            negative_threshold <= positive_threshold,
            "negative threshold {negative_threshold} exceeds positive {positive_threshold}"
        );
        Self { name: name.into(), scores, positive_threshold, negative_threshold }
    }

    /// The bound scores.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

impl LabelingFunction for BoundScoreLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn vote(&self, _table: &FeatureTable, row: usize) -> Vote {
        self.vote_row(row)
    }

    fn vote_frozen(&self, _frozen: &FrozenTable<'_>, row: usize) -> Vote {
        self.vote_row(row)
    }
}

impl BoundScoreLf {
    /// The vote for a bound row index, independent of any table — the
    /// scores were fixed at construction, so the sharded curation driver
    /// can vote on streamed segments without the pool table resident.
    /// Out-of-range rows abstain.
    #[inline]
    pub fn vote_row(&self, row: usize) -> Vote {
        match self.scores.get(row) {
            Some(&s) if s >= self.positive_threshold => Vote::Positive,
            Some(&s) if s <= self.negative_threshold => Vote::Negative,
            _ => Vote::Abstain,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode, Vocabulary,
    };

    use super::*;

    fn table() -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "topic",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["a", "b", "c", "d"]),
            ),
            FeatureDef::numeric("reports", FeatureSet::A, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        t.push_row(&[
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 2])),
            FeatureValue::Numeric(5.0),
        ]);
        t.push_row(&[FeatureValue::Categorical(CatSet::single(3)), FeatureValue::Numeric(1.0)]);
        t.push_row(&[FeatureValue::Missing, FeatureValue::Missing]);
        t
    }

    #[test]
    fn vote_i8_round_trip() {
        for v in [Vote::Positive, Vote::Negative, Vote::Abstain] {
            assert_eq!(Vote::from_i8(v.as_i8()), v);
        }
    }

    #[test]
    #[should_panic(expected = "invalid vote encoding")]
    fn vote_from_bad_i8_panics() {
        Vote::from_i8(3);
    }

    #[test]
    fn categorical_any_match() {
        let t = table();
        let lf = CategoricalContainsLf::new(0, vec![2, 3], false, Vote::Positive);
        assert_eq!(lf.vote(&t, 0), Vote::Positive);
        assert_eq!(lf.vote(&t, 1), Vote::Positive);
        let lf_miss = CategoricalContainsLf::new(0, vec![1], false, Vote::Positive);
        assert_eq!(lf_miss.vote(&t, 0), Vote::Abstain);
    }

    #[test]
    fn categorical_all_match() {
        let t = table();
        let lf = CategoricalContainsLf::new(0, vec![0, 2], true, Vote::Negative);
        assert_eq!(lf.vote(&t, 0), Vote::Negative);
        assert_eq!(lf.vote(&t, 1), Vote::Abstain);
    }

    #[test]
    fn lfs_abstain_on_missing() {
        let t = table();
        let c = CategoricalContainsLf::new(0, vec![0], false, Vote::Positive);
        let n = NumericThresholdLf::new(1, 0.0, ThresholdDirection::Above, Vote::Positive);
        assert_eq!(c.vote(&t, 2), Vote::Abstain);
        assert_eq!(n.vote(&t, 2), Vote::Abstain);
    }

    #[test]
    fn numeric_threshold_directions() {
        let t = table();
        let above = NumericThresholdLf::new(1, 3.0, ThresholdDirection::Above, Vote::Positive);
        let below = NumericThresholdLf::new(1, 3.0, ThresholdDirection::Below, Vote::Negative);
        assert_eq!(above.vote(&t, 0), Vote::Positive);
        assert_eq!(above.vote(&t, 1), Vote::Abstain);
        assert_eq!(below.vote(&t, 0), Vote::Abstain);
        assert_eq!(below.vote(&t, 1), Vote::Negative);
    }

    #[test]
    fn conjunction_requires_all_and_abstains_on_missing() {
        let t = table();
        let lf = ConjunctionLf::new(
            "expert",
            vec![
                Predicate::CatContains { column: 0, id: 2 },
                Predicate::NumAbove { column: 1, threshold: 4.0 },
            ],
            Vote::Positive,
        );
        assert_eq!(lf.vote(&t, 0), Vote::Positive);
        assert_eq!(lf.vote(&t, 1), Vote::Abstain);
        assert_eq!(lf.vote(&t, 2), Vote::Abstain);
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn empty_conjunction_rejected() {
        ConjunctionLf::new("bad", vec![], Vote::Positive);
    }

    #[test]
    fn bound_score_lf_thresholds() {
        let t = table();
        let lf = BoundScoreLf::new("prop", vec![0.9, 0.5, 0.05], 0.8, 0.1);
        assert_eq!(lf.vote(&t, 0), Vote::Positive);
        assert_eq!(lf.vote(&t, 1), Vote::Abstain);
        assert_eq!(lf.vote(&t, 2), Vote::Negative);
        // Out-of-range rows abstain rather than panic.
        assert_eq!(lf.vote(&t, 99), Vote::Abstain);
    }

    #[test]
    #[should_panic(expected = "exceeds positive")]
    fn bound_score_lf_rejects_inverted_thresholds() {
        BoundScoreLf::new("bad", vec![], 0.1, 0.8);
    }

    /// Every built-in LF must vote identically through the frozen columnar
    /// path and the row-wise table path, including on missing rows.
    #[test]
    fn vote_frozen_matches_vote() {
        let t = table();
        let frozen = FrozenTable::freeze(&t);
        let lfs: Vec<Box<dyn LabelingFunction>> = vec![
            Box::new(CategoricalContainsLf::new(0, vec![2, 3], false, Vote::Positive)),
            Box::new(CategoricalContainsLf::new(0, vec![0, 2], true, Vote::Negative)),
            Box::new(NumericThresholdLf::new(1, 3.0, ThresholdDirection::Above, Vote::Positive)),
            Box::new(NumericThresholdLf::new(1, 3.0, ThresholdDirection::Below, Vote::Negative)),
            Box::new(ConjunctionLf::new(
                "expert",
                vec![
                    Predicate::CatContains { column: 0, id: 2 },
                    Predicate::NumAbove { column: 1, threshold: 4.0 },
                    Predicate::NumBelow { column: 1, threshold: 9.0 },
                ],
                Vote::Positive,
            )),
            Box::new(BoundScoreLf::new("prop", vec![0.9, 0.5, 0.05], 0.8, 0.1)),
        ];
        for lf in &lfs {
            for row in 0..t.len() {
                assert_eq!(
                    lf.vote_frozen(&frozen, row),
                    lf.vote(&t, row),
                    "lf {} row {row}",
                    lf.name()
                );
            }
        }
    }
}
