//! Summary statistics and feature standardization.

use crate::Matrix;

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(x: &[f32]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|&v| f64::from(v)).sum::<f64>() / x.len() as f64
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(x: &[f32]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (f64::from(v) - m).powi(2)).sum::<f64>() / x.len() as f64
}

/// Per-column mean and standard deviation, fitted on a training matrix so the
/// same transform can later be applied to validation/test matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl ColumnStats {
    /// Fits per-column statistics. Columns with (near-)zero variance get a
    /// standard deviation of 1.0 so standardization leaves them centered but
    /// unscaled.
    pub fn fit(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut means = vec![0.0f64; cols];
        for row in m.rows_iter() {
            for (acc, &v) in means.iter_mut().zip(row) {
                *acc += f64::from(v);
            }
        }
        let n = rows.max(1) as f64;
        for v in &mut means {
            *v /= n;
        }
        let mut vars = vec![0.0f64; cols];
        for row in m.rows_iter() {
            for ((acc, &mu), &v) in vars.iter_mut().zip(&means).zip(row) {
                let d = f64::from(v) - mu;
                *acc += d * d;
            }
        }
        let stds = vars
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-9 {
                    1.0
                } else {
                    s as f32
                }
            })
            .collect();
        Self { means: means.into_iter().map(|v| v as f32).collect(), stds }
    }

    /// Applies `(x - mean) / std` column-wise in place.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform(&self, m: &mut Matrix) {
        assert_eq!(m.cols(), self.means.len(), "ColumnStats column mismatch");
        for r in 0..m.rows() {
            let row = m.row_mut(r);
            for ((v, &mu), &sd) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - mu) / sd;
            }
        }
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Fitted per-column standard deviations.
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }
}

/// Convenience: fit on `train`, transform both `train` and `rest` in place.
pub fn standardize_columns(train: &mut Matrix, rest: &mut [&mut Matrix]) -> ColumnStats {
    let stats = ColumnStats::fit(train);
    stats.transform(train);
    for m in rest {
        stats.transform(m);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_constant() {
        let x = [2.0f32; 10];
        assert_eq!(mean(&x), 2.0);
        assert_eq!(variance(&x), 0.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn variance_matches_hand_value() {
        let x = [1.0f32, 3.0];
        assert_eq!(variance(&x), 1.0);
    }

    #[test]
    fn standardized_columns_have_zero_mean_unit_std() {
        let mut m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        standardize_columns(&mut m, &mut []);
        for c in 0..2 {
            let col: Vec<f32> = (0..3).map(|r| m[(r, c)]).collect();
            assert!(mean(&col).abs() < 1e-6);
            assert!((variance(&col) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_column_is_centered_not_scaled() {
        let mut m = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        standardize_columns(&mut m, &mut []);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 0)], 0.0);
    }

    #[test]
    fn transform_applies_train_statistics_to_test() {
        let mut train = Matrix::from_rows(&[vec![0.0], vec![2.0]]);
        let mut test = Matrix::from_rows(&[vec![1.0]]);
        let stats = standardize_columns(&mut train, &mut [&mut test]);
        // train mean 1, std 1 -> test value (1-1)/1 = 0
        assert_eq!(test[(0, 0)], 0.0);
        assert_eq!(stats.means(), &[1.0]);
        assert_eq!(stats.stds(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn transform_rejects_wrong_width() {
        let train = Matrix::from_rows(&[vec![0.0], vec![2.0]]);
        let stats = ColumnStats::fit(&train);
        let mut bad = Matrix::zeros(1, 2);
        stats.transform(&mut bad);
    }
}
