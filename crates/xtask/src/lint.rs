//! Layer 1 of the static-analysis gate: a thin driver over the `cm-lint`
//! span-aware semantic lint engine (see `crates/lint`).
//!
//! Modes:
//! - default — human diagnostics `file:line:col: [rule] message` on
//!   stderr, non-zero exit on any non-waived finding;
//! - `--json` — the deterministic machine report (findings sorted by
//!   file, line, col) on stdout, same exit semantics, so CI can both
//!   archive the report and gate on it;
//! - `--self-test` — runs the engine over the seeded positive/negative
//!   corpus in `crates/lint/tests/corpus/`, mirroring
//!   `xtask validate --seeded-negatives`.

use std::path::Path;
use std::process::ExitCode;

use cm_lint::LintConfig;

/// Runs the workspace lint; human or JSON reporting.
pub fn run(root: &Path, json: bool) -> ExitCode {
    let cfg = LintConfig::for_workspace(root);
    let (findings, scanned) = cm_lint::run(root, &cfg);
    if json {
        println!("{}", cm_lint::report_json(&findings, scanned).to_string_pretty());
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("lint: clean ({scanned} files)");
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Runs the corpus self-test.
pub fn self_test(root: &Path) -> ExitCode {
    let dir = root.join("crates/lint/tests/corpus");
    let cfg = LintConfig::for_workspace(root);
    let outcome = cm_lint::corpus::run_corpus(&dir, &cfg);
    for e in &outcome.errors {
        eprintln!("lint self-test: {e}");
    }
    if outcome.passed() {
        eprintln!(
            "lint self-test: {} corpus files ({} positive, {} negative), {} expected \
             findings, all matched",
            outcome.files, outcome.positives, outcome.negatives, outcome.expected_findings
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint self-test: {} mismatch(es)", outcome.errors.len());
        ExitCode::FAILURE
    }
}
