//! Golden-fixture regression test for the *sharded* curation driver:
//! end-to-end probabilistic labels from `curate_streamed` pinned bit for
//! bit, at a deliberately awkward shard size (a prime that never divides
//! the corpus evenly).
//!
//! `tests/shard_equivalence.rs` proves sharded ≡ resident within one
//! build; this fixture additionally pins the sharded output across *code
//! changes*, the same contract `tests/golden_pipeline.rs` enforces for the
//! resident driver.
//!
//! To regenerate after an *intentional* numeric change:
//! `CM_REGEN_FIXTURES=1 cargo test --test shard_golden`.

use std::fmt::Write as _;
use std::path::PathBuf;

use cross_modal::json::Json;
use cross_modal::prelude::*;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/shard_labels.json")
}

fn sharded_labels() -> Vec<f64> {
    let task = TaskConfig::paper(TaskId::Ct2).scaled(0.03);
    let streamed =
        curate_streamed(task, 11, &CurationConfig::default(), &ShardConfig::with_segment_rows(257))
            .unwrap_or_else(|e| panic!("streamed curation failed: {e:?}"));
    streamed.output.probabilistic_labels
}

fn encode(labels: &[f64]) -> String {
    let hex: Vec<Json> = labels
        .iter()
        .map(|l| {
            let mut s = String::with_capacity(16);
            let _ = write!(s, "{:016x}", l.to_bits());
            Json::Str(s)
        })
        .collect();
    Json::obj([
        ("task", Json::Str("ct2_scaled_0.03_seed11_shard257".to_owned())),
        ("encoding", Json::Str("f64-bits-hex".to_owned())),
        ("labels", Json::Arr(hex)),
    ])
    .to_string_pretty()
}

fn decode(text: &str) -> Vec<f64> {
    let json = Json::parse(text).unwrap_or_else(|e| panic!("fixture is not valid JSON: {e:?}"));
    let arr = json
        .get("labels")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("fixture has no labels array"));
    arr.iter()
        .map(|v| {
            let hex = v.as_str().unwrap_or_else(|| panic!("label is not a hex string"));
            let bits =
                u64::from_str_radix(hex, 16).unwrap_or_else(|e| panic!("bad hex {hex:?}: {e}"));
            f64::from_bits(bits)
        })
        .collect()
}

#[test]
fn sharded_labels_match_golden_fixture() {
    let labels = sharded_labels();
    let path = fixture_path();
    if std::env::var_os("CM_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, encode(&labels))
            .unwrap_or_else(|e| panic!("cannot write fixture: {e}"));
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run CM_REGEN_FIXTURES=1 cargo test --test \
             shard_golden to create it",
            path.display()
        )
    });
    let golden = decode(&text);
    assert_eq!(labels.len(), golden.len(), "label count drifted");
    let mut mismatches = 0usize;
    for (i, (got, want)) in labels.iter().zip(&golden).enumerate() {
        if got.to_bits() != want.to_bits() {
            if mismatches < 5 {
                eprintln!(
                    "label {i}: got {got:?} ({:016x}), want {want:?} ({:016x})",
                    got.to_bits(),
                    want.to_bits()
                );
            }
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches,
        0,
        "{mismatches}/{} sharded labels drifted from the golden fixture; if the numeric change \
         is intentional, regenerate with CM_REGEN_FIXTURES=1",
        golden.len()
    );
}
