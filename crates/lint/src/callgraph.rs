//! Over-approximate workspace call graph on top of [`SymbolIndex`].
//!
//! Call edges are extracted from the token stream of every non-test
//! function body:
//!
//! - `a::b::name(…)` path calls resolve through the module tree,
//!   imports, and `pub use` re-exports (turbofish tolerated);
//! - `Type::method(…)` resolves through the impl index, with `Self`
//!   mapped to the enclosing impl type and conservative method fan-out
//!   when the type is not locally defined;
//! - `.method(…)` calls fan out to *every* function of that name — the
//!   deliberate over-approximation that keeps the effect passes sound
//!   against dynamic dispatch without a type checker;
//! - bare `name(…)` calls resolve through the module chain and imports
//!   only, so unknown names (std, generics, closures) produce no edge.
//!
//! The reverse adjacency supports rendering a full entry-point →
//! effect-site call chain for every finding.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::TokKind;
use crate::symbols::{FileUnit, SymbolIndex, KEYWORDS};

/// One resolved call site inside a scanned range.
#[derive(Debug)]
pub struct CallSite {
    /// Candidate callee functions (indices into `SymbolIndex::fns`).
    pub callees: Vec<usize>,
    /// Token-stream index of the called name (position anchor).
    pub tok: usize,
    /// The called name as written (diagnostics).
    pub name: String,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per function: (callee, call-site token) pairs, sorted.
    pub from: Vec<Vec<(usize, usize)>>,
    /// Per function: caller indices, sorted and deduplicated.
    pub to: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds call edges for every non-test function body.
    pub fn build(units: &[FileUnit], sym: &SymbolIndex) -> Self {
        let n = sym.fns.len();
        let mut from: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut to: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (fi, f) in sym.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            if hi <= lo + 1 {
                continue;
            }
            let u = &units[f.file];
            for site in
                collect_calls(u, sym, f.file, &f.module, f.impl_type.as_deref(), (lo + 1, hi - 1))
            {
                for &c in &site.callees {
                    if sym.fns[c].is_test {
                        continue;
                    }
                    from[fi].push((c, site.tok));
                    to[c].push(fi);
                }
            }
        }
        for v in &mut from {
            v.sort_unstable();
            v.dedup();
        }
        for v in &mut to {
            v.sort_unstable();
            v.dedup();
        }
        CallGraph { from, to }
    }

    /// Shortest caller chain from an entry point (a function nobody
    /// calls) down to `target`, as function indices `[root, …, target]`.
    /// Cycles with no entry point degrade to `[target]`.
    pub fn chain_to_root(&self, target: usize) -> Vec<usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(target);
        let mut q = VecDeque::new();
        q.push_back(target);
        let mut root = None;
        while let Some(x) = q.pop_front() {
            if self.to[x].is_empty() {
                root = Some(x);
                break;
            }
            for &c in &self.to[x] {
                if seen.insert(c) {
                    parent.insert(c, x);
                    q.push_back(c);
                }
            }
        }
        let Some(root) = root else { return vec![target] };
        let mut chain = vec![root];
        let mut cur = root;
        while cur != target {
            let Some(&next) = parent.get(&cur) else { break };
            chain.push(next);
            cur = next;
        }
        chain
    }

    /// Shortest forward path `[start, …, hit]` from `start` to the first
    /// reachable function satisfying `pred` (checked on `start` too).
    pub fn find_reachable<F: Fn(usize) -> bool>(
        &self,
        start: usize,
        pred: F,
    ) -> Option<Vec<usize>> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        seen.insert(start);
        let mut q = VecDeque::new();
        q.push_back(start);
        while let Some(x) = q.pop_front() {
            if pred(x) {
                let mut chain = vec![x];
                let mut cur = x;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                return Some(chain);
            }
            for &(c, _) in &self.from[x] {
                if seen.insert(c) {
                    parent.insert(c, x);
                    q.push_back(c);
                }
            }
        }
        None
    }
}

/// Extracts and resolves every call site in the code-view range
/// `[range.0, range.1]` of `u`, resolving names from the scope of the
/// enclosing function (`module`, `impl_type`). Only sites with at least
/// one resolved callee are returned.
pub fn collect_calls(
    u: &FileUnit,
    sym: &SymbolIndex,
    file: usize,
    module: &[String],
    impl_type: Option<&str>,
    range: (usize, usize),
) -> Vec<CallSite> {
    let code = u.code();
    let mut out = Vec::new();
    let mut k = range.0;
    while k <= range.1 {
        let Some(tok) = code.at(k) else { break };
        // `.method(…)` — by-name fan-out, except `self.method(…)` inside
        // an impl block, which resolves precisely within that impl.
        if tok.is_punct('.') && code.at(k + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let after = skip_turbofish(&code, k + 2);
            if code.is_punct(after, '(') {
                let name = code.at(k + 1).map(|t| t.ident_text().to_owned()).unwrap_or_default();
                let on_self = k > 0 && code.is_ident(k - 1, "self");
                let callees = match (on_self, impl_type) {
                    (true, Some(ty)) => sym.impl_methods(ty, &name),
                    _ => sym.fns_named(&name),
                };
                if !callees.is_empty() {
                    out.push(CallSite { callees, tok: u.ctx.code[k + 1], name });
                }
            }
            k += 2;
            continue;
        }
        // Path or bare call, anchored at the head of a path.
        if tok.kind == TokKind::Ident
            && !(k > 0 && (code.is_punct(k - 1, ':') || code.is_punct(k - 1, '.')))
            && !(k > 0 && code.is_ident(k - 1, "fn"))
        {
            let mut segs = vec![tok.ident_text().to_owned()];
            let mut m = k + 1;
            while code.is_punct(m, ':')
                && code.is_punct(m + 1, ':')
                && code.at(m + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                segs.push(code.at(m + 2).map(|t| t.ident_text().to_owned()).unwrap_or_default());
                m += 3;
            }
            let after = skip_turbofish(&code, m);
            if code.is_punct(after, '(') && !code.is_punct(m, '!') {
                let callees = if segs.len() == 1 {
                    if KEYWORDS.contains(&segs[0].as_str()) || segs[0] == "self" {
                        Vec::new()
                    } else {
                        sym.resolve_bare(file, module, &segs[0])
                    }
                } else {
                    sym.resolve_path(file, module, impl_type, &segs)
                };
                if !callees.is_empty() {
                    out.push(CallSite { callees, tok: u.ctx.code[k], name: segs.join("::") });
                }
                k = m;
                continue;
            }
            k = m.max(k + 1);
            continue;
        }
        k += 1;
    }
    out
}

/// If `j` starts a turbofish `::<…>`, the index just past its `>`;
/// otherwise `j` unchanged.
fn skip_turbofish(code: &crate::context::Code<'_>, j: usize) -> usize {
    if !(code.is_punct(j, ':') && code.is_punct(j + 1, ':') && code.is_punct(j + 2, '<')) {
        return j;
    }
    let mut angle = 0i64;
    let mut k = j + 2;
    while let Some(tok) = code.at(k) {
        if tok.is_punct('<') {
            angle += 1;
        } else if tok.is_punct('>') && !code.is_punct(k.wrapping_sub(1), '-') {
            angle -= 1;
            if angle == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    j
}
