//! Sharded out-of-core curation driver.
//!
//! [`curate_streamed`] runs the full curation step — LF mining, optional
//! label propagation, LF application, and the label model — without ever
//! materializing the unlabeled pool: `orgsim` generation is consumed in
//! `CM_SHARD_ROWS`-sized segments under an explicit `CM_MEM_BUDGET`
//! ([`cm_shard::MemTracker`] fails a run rather than exceed it), and every
//! per-shard statistic merges deterministically in shard-index order.
//!
//! The output is **bit-identical** to the resident driver
//! ([`crate::curation::curate`]) over [`crate::data::TaskData::generate`]
//! with the same `(task, seed, config)`, at any shard size and any
//! `CM_THREADS` — durations excepted. Each stage reduces to a mergeable
//! substrate whose resident computation is the single-segment case:
//!
//! - **mining** — Apriori supports are popcounts over item bitsets the
//!   [`ItemCatalogBuilder`] assembles segment by segment;
//! - **propagation** — similarity scales come from the exact
//!   `ScaleAccumulator` pair and the k-NN graph from
//!   [`cm_shard::build_graph_sharded`], which replays the resident anchor
//!   plan over segment sweeps;
//! - **LF application** — votes are pure per-row, so per-segment
//!   [`LabelMatrix`] applications append, in offset order, into one
//!   preallocated resident matrix;
//! - **the label model** — fitted on the dev corpus (anchored) or on exact
//!   mergeable moments (EM), both thread- and segmentation-invariant.
//!
//! The labeled text corpus itself stays resident: it is the small
//! old-modality dev set every stage anchors to, orders of magnitude
//! smaller than the pools this driver exists for.

use cm_faults::Stopwatch;
use cm_featurespace::{CmResult, FrozenTable, Label, ModalityKind};
use cm_labelmodel::{LabelMatrix, LfRates};
use cm_mining::{lfs_from_itemsets, mine_from_bitsets, ItemCatalogBuilder};
use cm_orgsim::{ModalityDataset, TaskConfig, World, WorldConfig};
use cm_par::ParConfig;
use cm_propagation::{propagate, GraphBuilder, PropagationConfig};
use cm_shard::corpus::dataset_bytes;
use cm_shard::{
    build_graph_sharded, fit_scales_sharded, for_each_pool_segment, MemTracker, SegmentedCorpus,
    ShardConfig, StreamSpec,
};

use crate::curation::{
    finish_curation, lf_columns, prop_artifacts_from_scores, prop_split, sim_columns,
    CurationConfig, CurationOutput, ModelInputs, PropagationArtifacts,
};

/// Telemetry from a streamed curation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Pool segments streamed by the LF-application pass.
    pub segments: usize,
    /// Rows per segment the run was sharded at.
    pub segment_rows: usize,
    /// High-water mark of tracked resident bytes.
    pub peak_bytes: usize,
    /// Total pool rows curated.
    pub pool_rows: usize,
}

/// Wall-clock per-stage timing of a streamed run. Out-of-band telemetry
/// for the scale bench (locating where throughput goes as pools grow) —
/// never part of the bit-identity contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStageTiming {
    /// LF mining over streamed text segments (catalog, bitsets, joins).
    pub mining: std::time::Duration,
    /// Sharded scale fit + graph build + propagation (zero when disabled).
    pub propagation: std::time::Duration,
    /// The pool sweep: segment generation plus LF application (append
    /// time excluded — the stages are disjoint).
    pub lf_application: std::time::Duration,
    /// Appending per-segment votes into the preallocated pool matrix.
    pub concat: std::time::Duration,
    /// Label-model fit and output assembly.
    pub model: std::time::Duration,
}

/// A streamed curation result: the (resident-identical) curation output
/// plus sharding telemetry.
pub struct StreamedCuration {
    /// The curation output, bit-identical to the resident driver's.
    pub output: CurationOutput,
    /// Sharding and memory telemetry.
    pub stats: StreamStats,
    /// Per-stage wall-clock timing (out-of-band).
    pub timing: StreamStageTiming,
}

/// Runs sharded curation for `(task, seed)` under `shard`'s segment size
/// and memory budget. See the module docs for the equivalence contract.
///
/// # Errors
/// Returns [`cm_featurespace::ErrorKind::InvalidConfig`] when a stage
/// would have to hold more resident bytes than `shard.budget` allows.
pub fn curate_streamed(
    task: TaskConfig,
    seed: u64,
    config: &CurationConfig,
    shard: &ShardConfig,
) -> CmResult<StreamedCuration> {
    curate_streamed_with(task, seed, config, shard, &ParConfig::from_env())
}

/// [`curate_streamed`] with an explicit parallel configuration.
///
/// # Errors
/// Returns [`cm_featurespace::ErrorKind::InvalidConfig`] when a stage
/// would have to hold more resident bytes than `shard.budget` allows.
pub fn curate_streamed_with(
    task: TaskConfig,
    seed: u64,
    config: &CurationConfig,
    shard: &ShardConfig,
    par: &ParConfig,
) -> CmResult<StreamedCuration> {
    let world = World::build(WorldConfig::new(task, seed));
    // The per-dataset seeds `TaskData::generate` derives; segment streams
    // with these seeds concatenate to its datasets bit for bit.
    let ds = seed ^ 0xD1CE;
    let n_text = world.config().task.n_text_labeled;
    let n_pool = world.config().task.n_image_unlabeled;
    let mut tracker = MemTracker::new(shard.budget);

    // The labeled text corpus stays resident; charge it for the duration.
    let text = world.generate(ModalityKind::Text, n_text, ds ^ 0x1);
    tracker.charge(dataset_bytes(&text), "labeled text corpus")?;

    // LF mining over streamed text segments: catalog pass, bitset-fill
    // pass, then the candidate/join phases on the assembled bitsets.
    let mining_start = Stopwatch::start();
    let columns = lf_columns(world.schema(), config);
    let mut catalog_builder =
        ItemCatalogBuilder::new(world.schema(), &columns, config.mining.numeric_bins);
    for_each_pool_segment(
        &world,
        ModalityKind::Text,
        n_text,
        ds ^ 0x1,
        shard.segment_rows,
        &mut tracker,
        &mut |_, seg, _| {
            catalog_builder.observe(&FrozenTable::freeze(&seg.table));
            Ok(())
        },
    )?;
    let catalog = catalog_builder.finish();
    let bitset_bytes = catalog.bitset_bytes();
    tracker.charge(bitset_bytes, "item bitsets")?;
    let mut item_bits = catalog.empty_bitsets();
    for_each_pool_segment(
        &world,
        ModalityKind::Text,
        n_text,
        ds ^ 0x1,
        shard.segment_rows,
        &mut tracker,
        &mut |offset, seg, _| {
            catalog.fill(&FrozenTable::freeze(&seg.table), offset, &mut item_bits);
            Ok(())
        },
    )?;
    let mined = mine_from_bitsets(&catalog, &item_bits, &text.labels, &config.mining, par);
    drop(item_bits);
    tracker.release(bitset_bytes);
    let lfs = lfs_from_itemsets(&mined, config.max_positive_lfs, config.max_negative_lfs);
    let mining_time = mining_start.elapsed();

    let dev_matrix = LabelMatrix::apply_with(&text.table, &lfs, par);
    let prior = text.positive_rate().clamp(1e-4, 0.5);

    let mut timing = StreamStageTiming { mining: mining_time, ..StreamStageTiming::default() };

    let mut propagation_time = None;
    let mut prop = None;
    if config.use_label_propagation {
        let start = Stopwatch::start();
        prop = propagation_streamed(&world, &text, n_pool, ds ^ 0x2, config, shard, &mut tracker)?;
        let elapsed = start.elapsed();
        propagation_time = Some(elapsed);
        timing.propagation = elapsed;
    }

    let mut lf_names: Vec<String> = lfs.iter().map(|l| l.name().to_owned()).collect();
    let mut prop_rates: Option<LfRates> = None;
    if let Some(p) = &prop {
        lf_names.push("label_propagation".to_owned());
        prop_rates = Some(LfRates::estimate(&p.dev_votes, &p.dev_labels));
    }

    // LF application over streamed pool segments. Votes are pure per-row,
    // so appending each segment's votes (in offset order) into one
    // preallocated resident matrix is bit-identical to applying the LFs
    // to the whole pool — and each segment matrix is dropped as soon as
    // it is appended, so peak memory is one segment plus the final
    // matrix, never the gather-then-copy doubling. The propagation
    // column votes through the score-bound LF, which needs only the
    // global row index.
    let n_cols = lf_names.len();
    let mut segments = 0usize;
    let mut pool_matrix = LabelMatrix::with_row_capacity(n_pool, lf_names.clone());
    tracker.charge(pool_matrix.capacity_bytes(), "pool vote matrix")?;
    let mut pool_truth: Vec<Label> = Vec::with_capacity(n_pool);
    let mut row_buf: Vec<i8> = Vec::with_capacity(n_cols);
    let apply_start = Stopwatch::start();
    for_each_pool_segment(
        &world,
        ModalityKind::Image,
        n_pool,
        ds ^ 0x2,
        shard.segment_rows,
        &mut tracker,
        &mut |offset, seg, tracker| {
            segments += 1;
            match &prop {
                // The propagation column interleaves with the LF votes,
                // so this path still applies into a segment matrix and
                // streams its rows (plus the column) into the pool
                // matrix — one copy, one segment resident at a time.
                Some(p) => {
                    let base = LabelMatrix::apply_with(&seg.table, &lfs, par);
                    tracker.charge(base.approx_bytes(), "pool vote segment")?;
                    let append_start = Stopwatch::start();
                    for r in 0..base.n_rows() {
                        row_buf.clear();
                        row_buf.extend_from_slice(base.row(r));
                        row_buf.push(p.pool_lf.vote_row(offset + r).as_i8());
                        pool_matrix.push_row(&row_buf);
                    }
                    timing.concat += append_start.elapsed();
                    let segment_bytes = base.approx_bytes();
                    drop(base);
                    tracker.release(segment_bytes);
                }
                // Without it the segment's votes are laid out exactly as
                // the pool matrix stores them, so the LFs write straight
                // into the preallocated buffer: no segment matrix, no
                // copy, no concat stage at all.
                None => pool_matrix.apply_append_with(&seg.table, &lfs, par),
            }
            pool_truth.extend_from_slice(&seg.labels);
            Ok(())
        },
    )?;
    // The append time rides inside the pool sweep; report the stages
    // disjoint so their sum still tracks the sweep's wall clock.
    timing.lf_application = apply_start.elapsed().saturating_sub(timing.concat);

    let model_start = Stopwatch::start();
    let output = finish_curation(
        ModelInputs {
            dev_matrix: &dev_matrix,
            dev_labels: &text.labels,
            prop_dev_votes: prop.as_ref().map(|p| p.dev_votes.as_slice()),
            prop_rates,
            pool_matrix,
            lf_names,
            prior,
            pool_truth: &pool_truth,
            fault_summary: None,
        },
        config,
        mining_time,
        propagation_time,
        par,
    );
    timing.model = model_start.elapsed();
    let stats = StreamStats {
        segments,
        segment_rows: shard.segment_rows,
        peak_bytes: tracker.peak(),
        pool_rows: n_pool,
    };
    Ok(StreamedCuration { output, stats, timing })
}

/// The streamed counterpart of the resident propagation-LF builder: the
/// `[seeds | dev | pool]` corpus is a [`SegmentedCorpus`] whose pool tail
/// streams from the world, the scale fit and graph build are the sharded
/// replays, and everything downstream (propagation, threshold tuning, the
/// score-bound LF) is the shared resident code.
fn propagation_streamed(
    world: &World,
    text: &ModalityDataset,
    n_pool: usize,
    pool_seed: u64,
    config: &CurationConfig,
    shard: &ShardConfig,
    tracker: &mut MemTracker,
) -> CmResult<Option<PropagationArtifacts>> {
    let sim_cols = sim_columns(world.schema(), config);
    let (dev_idx, seed_idx) = prop_split(&text.labels, config);
    if seed_idx.is_empty() {
        return Ok(None);
    }
    let seed_table = text.table.gather(&seed_idx);
    let dev_table = text.table.gather(&dev_idx);
    let head_bytes = seed_table.approx_bytes() + dev_table.approx_bytes();
    tracker.charge(head_bytes, "propagation seed/dev tables")?;

    let mut corpus = SegmentedCorpus::new(shard.segment_rows);
    corpus.push_head(&seed_table);
    corpus.push_head(&dev_table);
    corpus.set_stream(StreamSpec {
        world,
        modality: ModalityKind::Image,
        rows: n_pool,
        seed: pool_seed,
    });
    let n_combined = corpus.total_rows();

    let sim = fit_scales_sharded(&corpus, &sim_cols, tracker)?;
    let builder = GraphBuilder::approximate(config.prop_k, n_combined);
    let graph = build_graph_sharded(&corpus, &builder, &sim, config.seed ^ 0x6EA9, tracker)?;
    let graph_bytes = graph.approx_bytes();
    tracker.charge(graph_bytes, "propagation graph")?;

    let seeds: Vec<(usize, f64)> =
        seed_idx.iter().enumerate().map(|(v, &r)| (v, text.labels[r].as_f64())).collect();
    let prop_cfg = PropagationConfig {
        max_iters: 50,
        tol: 1e-4,
        prior: text.positive_rate().clamp(1e-4, 0.5),
    };
    let scores = propagate(&graph, &seeds, &prop_cfg);
    drop(graph);
    tracker.release(graph_bytes);
    tracker.release(head_bytes);

    let dev_labels: Vec<Label> = dev_idx.iter().map(|&r| text.labels[r]).collect();
    Ok(prop_artifacts_from_scores(&scores, seed_idx.len(), dev_labels, config))
}
