//@ path: crates/pipeline/src/stream.rs
// Seeded positive: the streaming curation driver must not materialize
// whole feature tables; segment assembly lives in cm-shard.

pub fn f(schema: Arc<FeatureSchema>) -> FeatureTable {
    let table = FeatureTable::new(schema);
    table
}
