//! Intermediate fusion: per-modality encoders, concatenated embeddings,
//! jointly trained head.

use cm_linalg::Matrix;
use cm_models::{train_model, ModelKind, TrainConfig, TrainedModel};

use crate::ModalityData;

/// Intermediate fusion (§5): stage one trains an independent model per
/// modality; stage two removes their prediction layers, concatenates the
/// penultimate embeddings of *every* modality model applied to each data
/// point (shared features flow into all of them), and trains a final model
/// on the concatenation. Motivated by small modalities getting overpowered
/// in early fusion.
pub struct IntermediateFusionModel {
    encoders: Vec<TrainedModel>,
    head: TrainedModel,
    input_dim: usize,
}

impl IntermediateFusionModel {
    /// Two-stage training over `parts`.
    ///
    /// # Panics
    /// Panics if `parts` is empty or widths differ.
    pub fn train(
        parts: &[ModalityData],
        kind: &ModelKind,
        config: &TrainConfig,
        validation: Option<(&Matrix, &[f64])>,
    ) -> Self {
        assert!(!parts.is_empty(), "need at least one modality");
        let input_dim = parts[0].x.cols();
        for p in parts {
            assert_eq!(p.x.cols(), input_dim, "modality width mismatch");
        }
        // Stage 1: independent per-modality models.
        let encoders: Vec<TrainedModel> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let cfg =
                    TrainConfig { seed: config.seed.wrapping_add(i as u64), ..config.clone() };
                train_model(kind, &p.x, &p.targets, &cfg, None)
            })
            .collect();
        // Stage 2: embed every row with every encoder, concatenate, train
        // the joint head.
        let total_rows: usize = parts.iter().map(|p| p.x.rows()).sum();
        let embed_dim: usize = encoders.iter().map(|e| e.embed_dim(input_dim)).sum();
        let mut joint = Matrix::zeros(total_rows, embed_dim);
        let mut targets = Vec::with_capacity(total_rows);
        let mut r = 0;
        for part in parts {
            let embeds: Vec<Matrix> = encoders.iter().map(|e| e.embed(&part.x)).collect();
            for row_idx in 0..part.x.rows() {
                let out = joint.row_mut(r);
                let mut offset = 0;
                for e in &embeds {
                    let src = e.row(row_idx);
                    out[offset..offset + src.len()].copy_from_slice(src);
                    offset += src.len();
                }
                r += 1;
            }
            targets.extend_from_slice(&part.targets);
        }
        let head_val_x = validation.map(|(vx, _)| {
            let embeds: Vec<Matrix> = encoders.iter().map(|e| e.embed(vx)).collect();
            let mut m = Matrix::zeros(vx.rows(), embed_dim);
            for row_idx in 0..vx.rows() {
                let out = m.row_mut(row_idx);
                let mut offset = 0;
                for e in &embeds {
                    let src = e.row(row_idx);
                    out[offset..offset + src.len()].copy_from_slice(src);
                    offset += src.len();
                }
            }
            m
        });
        let head = train_model(
            kind,
            &joint,
            &targets,
            config,
            head_val_x.as_ref().zip(validation.map(|(_, vy)| vy)),
        );
        Self { encoders, head, input_dim }
    }

    /// Positive-class probabilities in the shared layout.
    ///
    /// # Panics
    /// Panics if the width differs from training.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.input_dim, "feature width mismatch");
        let embeds: Vec<Matrix> = self.encoders.iter().map(|e| e.embed(x)).collect();
        let embed_dim: usize = embeds.iter().map(Matrix::cols).sum();
        let mut joint = Matrix::zeros(x.rows(), embed_dim);
        for r in 0..x.rows() {
            let out = joint.row_mut(r);
            let mut offset = 0;
            for e in &embeds {
                let src = e.row(r);
                out[offset..offset + src.len()].copy_from_slice(src);
                offset += src.len();
            }
        }
        self.head.predict_proba(&joint)
    }

    /// Number of per-modality encoders.
    pub fn n_encoders(&self) -> usize {
        self.encoders.len()
    }
}

#[cfg(test)]
mod tests {
    use cm_eval::auprc;

    use super::*;
    use crate::testutil::two_modality_task;

    #[test]
    fn learns_the_task() {
        let (old, new, xt, yt) = two_modality_task(600, 11);
        let kind = ModelKind::Mlp { hidden: vec![12] };
        let cfg = TrainConfig { epochs: 25, patience: None, ..Default::default() };
        let m = IntermediateFusionModel::train(&[old, new], &kind, &cfg, None);
        assert_eq!(m.n_encoders(), 2);
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let ap = auprc(&m.predict_proba(&xt), &pos);
        assert!(ap > 0.55, "AUPRC {ap}");
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_rejects_wrong_width() {
        let (old, new, _, _) = two_modality_task(60, 1);
        let cfg = TrainConfig { epochs: 2, ..Default::default() };
        let m = IntermediateFusionModel::train(
            &[old, new],
            &ModelKind::Mlp { hidden: vec![4] },
            &cfg,
            None,
        );
        m.predict_proba(&Matrix::zeros(1, 3));
    }
}
