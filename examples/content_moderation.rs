//! The paper's running example: a content-moderation team whose
//! application adds **video** posts. Text (old, labeled) adapts to video
//! (new, unlabeled) through the common feature space — the same pipeline,
//! third modality.
//!
//! ```sh
//! cargo run --release --example content_moderation
//! ```

use cross_modal::prelude::*;

fn main() {
    // The moderation task: flag policy-violating posts. Video is richer
    // and shiftier than image (frame splitting loses more signal), which
    // the world's video observation channel models.
    let task = TaskConfig::paper(TaskId::Ct1).scaled(0.08);
    let world = World::build(WorldConfig::new(task.clone(), 7));

    println!("content moderation: adapting the text task to VIDEO posts\n");
    let text = world.generate(ModalityKind::Text, task.n_text_labeled, 1);
    let video_pool = world.generate(ModalityKind::Video, task.n_image_unlabeled, 2);
    let video_test = world.generate(ModalityKind::Video, task.n_image_test.max(1500), 3);
    let video_labeled = world.generate(ModalityKind::Video, 2_000, 4);
    println!(
        "corpus: {} labeled text posts; {} unlabeled / {} test video posts",
        text.len(),
        video_pool.len(),
        video_test.len()
    );

    // Assemble the pipeline's data bundle with video as the new modality.
    // (TaskData's fields are public precisely so other modality pairs can
    // be wired up.)
    let data = TaskData {
        world,
        text,
        pool: video_pool,
        test: video_test,
        labeled_image: video_labeled,
        fault_summary: None,
    };

    let curation = curate(&data, &CurationConfig::default());
    println!(
        "\nweak supervision over video: {} LFs, coverage {:.1}%, F1 {:.2}",
        curation.lf_names.len(),
        curation.ws_quality.coverage * 100.0,
        curation.ws_quality.f1
    );

    let runner = ScenarioRunner {
        data: &data,
        model: ModelKind::Mlp { hidden: vec![32] },
        train: TrainConfig { epochs: 20, patience: None, ..TrainConfig::default() },
    };
    let baseline = runner.baseline_auprc().unwrap();
    let sets = FeatureSet::SHARED;
    let cross =
        runner.run_relative(&Scenario::cross_modal(&sets), Some(&curation), baseline).unwrap();
    let text_only = runner.run_relative(&Scenario::text_only(&sets), None, baseline).unwrap();
    println!("\nembedding baseline AUPRC: {baseline:.4}");
    println!(
        "text model applied to video:  AUPRC {:.4} ({:.2}x)",
        text_only.auprc,
        text_only.relative_auprc.unwrap_or(0.0)
    );
    println!(
        "cross-modal moderation model: AUPRC {:.4} ({:.2}x)",
        cross.auprc,
        cross.relative_auprc.unwrap_or(0.0)
    );

    // Moderate a batch of incoming posts, as the deployed model would.
    let incoming = data.world.generate(ModalityKind::Video, 8, 99);
    let view = cm_pipeline::DenseView::fit(
        &[&data.text.table, &data.pool.table],
        data.world.schema().columns_in_sets(&sets, true),
    )
    .unwrap();
    let x = view.encode(&incoming.table);
    // Retrain a production copy on everything (text + weak video labels).
    let eval_model = {
        use cross_modal::fusion::{EarlyFusionModel, ModalityData};
        let xt = view.encode(&data.text.table);
        let xv = view.encode(&data.pool.table);
        let parts = [
            ModalityData::new(xt, data.text.labels_f64()),
            ModalityData::new(xv, curation.probabilistic_labels.clone()),
        ];
        EarlyFusionModel::train(
            &parts,
            &ModelKind::Mlp { hidden: vec![32] },
            &TrainConfig { epochs: 20, patience: None, ..TrainConfig::default() },
            None,
        )
    };
    println!("\nincoming video posts:");
    for (i, p) in eval_model.predict_proba(&x).iter().enumerate() {
        let verdict = if *p > 0.5 { "FLAG for review" } else { "allow" };
        let truth = if incoming.labels[i].is_positive() { "(violating)" } else { "(benign)" };
        println!("  post {i}: score {p:.3} -> {verdict:<16} {truth}");
    }
}
