//! Integration of mining + labeling functions + label models over
//! world-generated data (crates: orgsim, mining, labelmodel).

use cross_modal::labelmodel::{evaluate_lfs, majority_vote, AnchoredModel, LabelMatrix, Vote};
use cross_modal::mining::{mine_lfs, MiningConfig};
use cross_modal::prelude::*;

fn corpus(seed: u64) -> (World, ModalityDataset, ModalityDataset) {
    let task = TaskConfig::paper(TaskId::Ct2).scaled(0.05);
    let world = World::build(WorldConfig::new(task.clone(), seed));
    let text = world.generate(ModalityKind::Text, task.n_text_labeled, 1);
    let pool = world.generate(ModalityKind::Image, task.n_image_unlabeled, 2);
    (world, text, pool)
}

fn mined_lfs(
    world: &World,
    text: &ModalityDataset,
) -> Vec<Box<dyn cross_modal::labelmodel::LabelingFunction>> {
    let columns = world.schema().columns_in_sets(&FeatureSet::SHARED, false);
    mine_lfs(
        &text.table,
        &text.labels,
        &columns,
        &MiningConfig { min_precision: 0.6, ..MiningConfig::default() },
        40,
        20,
    )
    .lfs
}

#[test]
fn mined_lfs_hold_precision_on_dev() {
    let (world, text, _) = corpus(3);
    let lfs = mined_lfs(&world, &text);
    assert!(lfs.len() >= 5, "only {} LFs mined", lfs.len());
    let summary = evaluate_lfs(&text.table, &text.labels, &lfs);
    assert!(summary.pooled_precision > 0.5, "pooled precision {}", summary.pooled_precision);
    assert!(summary.pooled_recall > 0.3, "pooled recall {}", summary.pooled_recall);
    assert!(summary.overall_coverage > 0.3);
}

#[test]
fn lfs_transfer_across_the_modality_gap() {
    // The paper's central mechanism: LFs defined over the common feature
    // space apply unchanged to the new modality and remain much better
    // than chance there.
    let (world, text, pool) = corpus(5);
    let lfs = mined_lfs(&world, &text);
    let matrix = LabelMatrix::apply(&pool.table, &lfs);
    let mut tp = 0usize;
    let mut fp = 0usize;
    for (r, label) in pool.labels.iter().enumerate() {
        let fired_pos = matrix.row(r).iter().zip(&lfs).any(|(&v, _)| v > 0);
        if fired_pos {
            if label.is_positive() {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let rate = pool.positive_rate();
    assert!(
        precision > rate * 3.0,
        "image-side pooled precision {precision:.3} vs base rate {rate:.3}"
    );
}

#[test]
fn anchored_model_ranks_better_than_majority_vote() {
    let (world, text, pool) = corpus(7);
    let lfs = mined_lfs(&world, &text);
    let dev = LabelMatrix::apply(&text.table, &lfs);
    let target = LabelMatrix::apply(&pool.table, &lfs);
    let truth: Vec<bool> = pool.labels.iter().map(|l| l.is_positive()).collect();

    let anchored = AnchoredModel::fit(&dev, &text.labels, None).predict(&target);
    let mv = majority_vote(&target);
    let ap_anchored = auprc(&anchored, &truth);
    let ap_mv = auprc(&mv, &truth);
    assert!(
        ap_anchored >= ap_mv,
        "anchored {ap_anchored:.3} must not lose to majority vote {ap_mv:.3}"
    );
    assert!(ap_anchored > pool.positive_rate() * 2.0);
}

#[test]
fn expert_lfs_are_broad_but_less_precise_than_mined() {
    // §6.7.1's qualitative claim at integration level: the hand-written
    // suite recalls more (broad watchlist rules) while the mined suite is
    // more precise — the paper's +14.3% precision / -9.6% recall for
    // mining.
    let (world, text, _) = corpus(9);
    let expert = expert_lfs(world.schema()).unwrap();
    let mined = mined_lfs(&world, &text);
    let e = evaluate_lfs(&text.table, &text.labels, &expert);
    let m = evaluate_lfs(&text.table, &text.labels, &mined);
    let base_rate = text.positive_rate();
    assert!(
        e.pooled_precision > base_rate * 2.0,
        "expert precision {} vs base rate {base_rate}",
        e.pooled_precision
    );
    assert!(
        m.pooled_precision > e.pooled_precision,
        "mined precision {} should beat expert {}",
        m.pooled_precision,
        e.pooled_precision
    );
    assert!(
        e.pooled_recall > m.pooled_recall * 0.9,
        "expert recall {} should rival mined {}",
        e.pooled_recall,
        m.pooled_recall
    );
}

#[test]
fn vote_matrix_statistics_are_consistent() {
    let (world, text, pool) = corpus(11);
    let lfs = mined_lfs(&world, &text);
    let matrix = LabelMatrix::apply(&pool.table, &lfs);
    assert_eq!(matrix.n_rows(), pool.len());
    assert_eq!(matrix.n_lfs(), lfs.len());
    // Coverage >= per-LF coverage for any single LF.
    for j in 0..matrix.n_lfs() {
        assert!(matrix.coverage() >= matrix.lf_coverage(j) - 1e-12);
    }
    // Conflict <= overlap <= coverage.
    assert!(matrix.conflict() <= matrix.overlap() + 1e-12);
    assert!(matrix.overlap() <= matrix.coverage() + 1e-12);
    // Votes round-trip the encoding.
    for r in (0..matrix.n_rows()).step_by(97) {
        for j in 0..matrix.n_lfs() {
            let v = matrix.vote(r, j);
            assert_eq!(v, Vote::from_i8(v.as_i8()));
        }
    }
}
