//@ path: crates/demo/src/lib.rs
// Seeded negative (nondet-iteration): ordered collections iterate
// deterministically and must stay silent.

use std::collections::{BTreeMap, BTreeSet};

pub fn f() -> usize {
    let m: BTreeMap<String, u32> = BTreeMap::new();
    let s: BTreeSet<u32> = BTreeSet::new();
    let mut total = 0;
    for (k, v) in &m {
        total += k.len() + *v as usize;
    }
    total += m.keys().count();
    total += s.iter().count();
    total
}
