//! Multi-modal model training (paper §5, Figure 4).
//!
//! All three strategies operate on matrices in the *shared dense layout*
//! produced by `cm_featurespace::DenseEncoder` over the full schema: every
//! modality's rows are encoded identically, with features a modality lacks
//! encoded as missing (zeros plus indicator). This is exactly the paper's
//! early-fusion representation — "features specific to certain data
//! modalities are left empty for those that do not have these features".
//!
//! - [`EarlyFusionModel`] — concatenate all modalities' rows into one
//!   training set, train one model. The paper's winner.
//! - [`IntermediateFusionModel`] — train one model per modality, strip the
//!   prediction heads, concatenate the penultimate embeddings, train a
//!   joint head over them.
//! - [`DeViseModel`] — the adapted DeViSE baseline: train and freeze model
//!   A on old modalities, pre-train model B on weakly supervised new data,
//!   learn a linear projection from B's embedding space into A's, and serve
//!   through A's frozen prediction head.

pub mod devise;
pub mod early;
pub mod intermediate;
pub mod projection;
pub mod reweight;

pub use devise::DeViseModel;
pub use early::EarlyFusionModel;
pub use intermediate::IntermediateFusionModel;
pub use projection::LinearProjection;
pub use reweight::{reweighted_early_fusion, ReweightedModel};

use cm_linalg::Matrix;

/// One modality's training contribution: dense rows in the shared layout
/// plus (probabilistic) targets.
#[derive(Debug, Clone)]
pub struct ModalityData {
    /// Dense features (shared layout).
    pub x: Matrix,
    /// Soft targets in `[0, 1]`.
    pub targets: Vec<f64>,
}

impl ModalityData {
    /// Creates a part, validating shapes.
    ///
    /// # Panics
    /// Panics if row and target counts differ.
    pub fn new(x: Matrix, targets: Vec<f64>) -> Self {
        assert_eq!(x.rows(), targets.len(), "target count mismatch");
        Self { x, targets }
    }
}

/// Concatenates parts row-wise into one training set.
///
/// # Panics
/// Panics if parts is empty or widths differ.
pub(crate) fn concat_parts(parts: &[ModalityData]) -> (Matrix, Vec<f64>) {
    assert!(!parts.is_empty(), "need at least one modality");
    let cols = parts[0].x.cols();
    let total: usize = parts.iter().map(|p| p.x.rows()).sum();
    let mut x = Matrix::zeros(total, cols);
    let mut y = Vec::with_capacity(total);
    let mut r = 0;
    for part in parts {
        assert_eq!(part.x.cols(), cols, "modality width mismatch");
        for row in part.x.rows_iter() {
            x.row_mut(r).copy_from_slice(row);
            r += 1;
        }
        y.extend_from_slice(&part.targets);
    }
    (x, y)
}

#[cfg(test)]
pub(crate) mod testutil {
    use cm_linalg::Matrix;

    use super::ModalityData;

    /// Two-modality synthetic task in a 6-wide "shared layout":
    /// cols 0-1 shared signal, col 2 modality-A-specific, col 3
    /// modality-B-specific, cols 4-5 noise. Returns (old, new, test_x,
    /// test_y); the new modality's targets are noisy (weak labels).
    pub fn two_modality_task(
        n: usize,
        seed: u64,
    ) -> (ModalityData, ModalityData, Matrix, Vec<f64>) {
        use cm_linalg::rng::Rng;
        use cm_linalg::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = |modality: u8, n: usize, noisy: bool| {
            let mut rows = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let pos = rng.gen::<f64>() < 0.3;
                let sig = if pos { 1.0 } else { -1.0 };
                let mut row = vec![0.0f32; 6];
                // Shared features carry weak signal; the modality-specific
                // feature is the strong one, so single-modality transfer
                // visibly underperforms.
                row[0] = (sig * 0.4 + rng.gen::<f64>() * 3.0 - 1.5) as f32;
                row[1] = (sig * 0.3 + rng.gen::<f64>() * 3.0 - 1.5) as f32;
                if modality == 0 {
                    row[2] = (sig * 0.9 + rng.gen::<f64>() * 0.4 - 0.2) as f32;
                } else {
                    row[3] = (sig * 0.9 + rng.gen::<f64>() * 0.4 - 0.2) as f32;
                }
                row[4] = rng.gen::<f32>();
                row[5] = rng.gen::<f32>();
                rows.push(row);
                let target = if noisy {
                    // weak label: 15% flipped, expressed as soft prob
                    if rng.gen::<f64>() < 0.15 {
                        if pos {
                            0.2
                        } else {
                            0.8
                        }
                    } else if pos {
                        0.9
                    } else {
                        0.1
                    }
                } else if pos {
                    1.0
                } else {
                    0.0
                };
                y.push(target);
            }
            (Matrix::from_rows(&rows), y)
        };
        let (xo, yo) = gen(0, n, false);
        let (xn, yn) = gen(1, n, true);
        let (xt, yt) = gen(1, n / 2, false);
        (ModalityData::new(xo, yo), ModalityData::new(xn, yn), xt, yt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_stacks_rows_in_order() {
        let a = ModalityData::new(Matrix::from_rows(&[vec![1.0, 2.0]]), vec![1.0]);
        let b =
            ModalityData::new(Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]), vec![0.0, 1.0]);
        let (x, y) = concat_parts(&[a, b]);
        assert_eq!(x.rows(), 3);
        assert_eq!(x.row(0), &[1.0, 2.0]);
        assert_eq!(x.row(2), &[5.0, 6.0]);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn concat_rejects_ragged_parts() {
        let a = ModalityData::new(Matrix::zeros(1, 2), vec![0.0]);
        let b = ModalityData::new(Matrix::zeros(1, 3), vec![0.0]);
        concat_parts(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "target count mismatch")]
    fn part_validates_shapes() {
        ModalityData::new(Matrix::zeros(2, 2), vec![0.0]);
    }
}
