//! Serialization round-trips for the schema layer (schemas are the contract
//! between feature-generation jobs and training jobs; they must survive
//! persistence).

use cm_featurespace::{
    CatSet, FeatureDef, FeatureKind, FeatureSchema, FeatureSet, FeatureValue, ServingMode,
    Vocabulary,
};

fn sample_schema() -> FeatureSchema {
    FeatureSchema::from_defs(vec![
        FeatureDef::categorical(
            "topics",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["sports", "news", "pets"]),
        ),
        FeatureDef::numeric("user_reports", FeatureSet::D, ServingMode::Nonservable),
        FeatureDef::embedding("img_embedding", 16, FeatureSet::ModalitySpecific, ServingMode::Servable),
    ])
}

#[test]
fn schema_round_trips_through_json() {
    let schema = sample_schema();
    let json = serde_json::to_string(&schema).expect("schema serializes");
    let mut back: FeatureSchema = serde_json::from_str(&json).expect("schema deserializes");
    // Lookup indices are skipped during serialization and must be rebuilt.
    assert_eq!(back.column("topics"), None);
    back.rebuild_index();
    assert_eq!(back.column("topics"), Some(0));
    assert_eq!(back.column("user_reports"), Some(1));
    assert_eq!(back.def(0).vocab.get("news"), Some(1));
    assert_eq!(back.def(1).serving, ServingMode::Nonservable);
    assert_eq!(back.def(2).kind, FeatureKind::Embedding { dim: 16 });
    assert_eq!(back.len(), schema.len());
}

#[test]
fn feature_values_round_trip_through_json() {
    let values = vec![
        FeatureValue::Numeric(3.25),
        FeatureValue::Categorical(CatSet::from_ids(vec![5, 1, 1])),
        FeatureValue::Embedding(vec![0.5, -0.5]),
        FeatureValue::Missing,
    ];
    let json = serde_json::to_string(&values).unwrap();
    let back: Vec<FeatureValue> = serde_json::from_str(&json).unwrap();
    assert_eq!(values, back);
}

#[test]
fn vocabulary_preserves_id_order_across_serde() {
    let v = Vocabulary::from_names(["z", "a", "m"]);
    let json = serde_json::to_string(&v).unwrap();
    let mut back: Vocabulary = serde_json::from_str(&json).unwrap();
    back.rebuild_index();
    // Ids are positional, not alphabetical.
    assert_eq!(back.get("z"), Some(0));
    assert_eq!(back.get("a"), Some(1));
    assert_eq!(back.name(2), Some("m"));
}
