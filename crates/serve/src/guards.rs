//! Degradation-aware quality guards.
//!
//! Before a batch is ingested, the service previews it against the current
//! curator state ([`cm_pipeline::IncrementalCurator::preview_batch`]) and
//! checks the preview against per-batch thresholds. A batch that fails any
//! guard is *quarantined* rather than ingested: it sits in a retry queue
//! for a configured number of ticks, gets one more evaluation, and is
//! dropped permanently if it fails again. Quarantine keeps a burst of
//! fault-corrupted arrivals from polluting the label-model warm chain
//! while still giving transiently degraded batches (a tripped service that
//! recovers) a path back in.

use cm_pipeline::BatchPreview;

use crate::queue::QueuedBatch;

/// Per-batch quality thresholds.
#[derive(Debug, Clone)]
pub struct QualityGuards {
    /// Minimum fraction of rows with at least one non-abstain vote.
    pub min_coverage: f64,
    /// Maximum mean per-LF abstain rate.
    pub max_abstain: f64,
    /// Maximum allowed jump in mean posterior entropy (nats) relative to
    /// the last ingested batch. Skipped when either side is unknown.
    pub max_entropy_delta: f64,
    /// Ticks a quarantined batch waits before its single retry.
    pub retry_after_ticks: usize,
}

impl Default for QualityGuards {
    fn default() -> Self {
        Self {
            min_coverage: 0.02,
            max_abstain: 0.995,
            max_entropy_delta: 0.25,
            retry_after_ticks: 2,
        }
    }
}

/// Outcome of evaluating one batch preview.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardVerdict {
    /// Whether the batch may be ingested.
    pub pass: bool,
    /// Human-readable guard failures (empty when `pass`).
    pub reasons: Vec<String>,
}

/// A batch held back by the guards, waiting for its retry.
#[derive(Debug, Clone)]
pub struct QuarantinedBatch {
    /// The held-back arrival batch.
    pub item: QueuedBatch,
    /// Tick at which the retry evaluation becomes due.
    pub retry_tick: usize,
    /// Guard evaluations so far (1 after the initial failure).
    pub attempts: u32,
    /// Reasons recorded at the most recent failed evaluation.
    pub reasons: Vec<String>,
}

impl QualityGuards {
    /// Evaluates a batch preview against the thresholds.
    ///
    /// `last_entropy` is the mean posterior entropy of the most recently
    /// ingested batch; the entropy-delta guard only fires when both it and
    /// the preview's entropy are known.
    pub fn evaluate(&self, preview: &BatchPreview, last_entropy: Option<f64>) -> GuardVerdict {
        let mut reasons = Vec::new();
        if preview.coverage < self.min_coverage {
            reasons.push(format!(
                "coverage {:.4} below minimum {:.4}",
                preview.coverage, self.min_coverage
            ));
        }
        if preview.abstain_rate > self.max_abstain {
            reasons.push(format!(
                "abstain rate {:.4} above maximum {:.4}",
                preview.abstain_rate, self.max_abstain
            ));
        }
        if let (Some(prev), Some(now)) = (last_entropy, preview.mean_entropy) {
            let delta = now - prev;
            if delta > self.max_entropy_delta {
                reasons.push(format!(
                    "posterior entropy jumped {delta:.4} nats (limit {:.4})",
                    self.max_entropy_delta
                ));
            }
        }
        GuardVerdict { pass: reasons.is_empty(), reasons }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preview(coverage: f64, abstain: f64, entropy: Option<f64>) -> BatchPreview {
        BatchPreview { coverage, abstain_rate: abstain, mean_entropy: entropy }
    }

    #[test]
    fn healthy_preview_passes() {
        let g = QualityGuards::default();
        let v = g.evaluate(&preview(0.4, 0.7, Some(0.3)), Some(0.28));
        assert!(v.pass, "unexpected failures: {:?}", v.reasons);
    }

    #[test]
    fn each_guard_fires_independently() {
        let g = QualityGuards::default();
        assert!(!g.evaluate(&preview(0.0, 0.5, None), None).pass, "coverage guard");
        assert!(!g.evaluate(&preview(0.4, 1.0, None), None).pass, "abstain guard");
        let v = g.evaluate(&preview(0.4, 0.5, Some(0.6)), Some(0.2));
        assert!(!v.pass, "entropy-delta guard");
        assert_eq!(v.reasons.len(), 1);
    }

    #[test]
    fn entropy_guard_needs_both_sides() {
        let g = QualityGuards::default();
        assert!(g.evaluate(&preview(0.4, 0.5, None), Some(0.1)).pass);
        assert!(g.evaluate(&preview(0.4, 0.5, Some(0.9)), None).pass);
    }

    #[test]
    fn entropy_drop_is_not_a_failure() {
        let g = QualityGuards::default();
        assert!(g.evaluate(&preview(0.4, 0.5, Some(0.1)), Some(0.6)).pass);
    }
}
