//! Ambient-effect detection and the declarative sanction list.
//!
//! An *ambient effect* is anything that makes a function's result depend
//! on state outside its arguments: environment reads, filesystem access,
//! wall-clock reads, and ambient entropy. The determinism discipline —
//! serial ≡ parallel, sharded ≡ resident, crash + resume bit-identity —
//! holds only if these effects stay behind a handful of sanctioned
//! modules (config parsing, the snapshot store, the cm-faults clock).
//!
//! [`effects_in`] finds direct effect sites in a token range;
//! [`EffectSanctions`] carries the per-kind sanctioned path prefixes,
//! loaded from `specs/lint_effects.json` (validated separately by
//! cm-check's `lint-spec-*` rules) rather than hard-coded.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use cm_json::Json;

use crate::lexer::TokKind;
use crate::symbols::FileUnit;

/// The effect classes the audit tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// Environment reads/writes (`std::env::var`, `set_var`, `args`).
    Env,
    /// Filesystem access (`std::fs`, `File::open`, `OpenOptions`).
    Fs,
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`).
    Clock,
    /// Ambient entropy (`RandomState`, `thread_rng`, `from_entropy`).
    Entropy,
}

impl EffectKind {
    /// Stable kebab-ish name used in messages and the spec file.
    pub fn name(self) -> &'static str {
        match self {
            EffectKind::Env => "env",
            EffectKind::Fs => "fs",
            EffectKind::Clock => "clock",
            EffectKind::Entropy => "entropy",
        }
    }

    /// What disciplined code does instead.
    pub fn advice(self) -> &'static str {
        match self {
            EffectKind::Env => "parse configuration once in a module sanctioned by specs/lint_effects.json and pass values down",
            EffectKind::Fs => "route io through a sanctioned module (cm-serve snapshot, bench/spec loaders)",
            EffectKind::Clock => "take time through cm-faults Stopwatch/SimClock",
            EffectKind::Entropy => "thread a seeded RNG through configuration",
        }
    }
}

impl fmt::Display for EffectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One direct effect site.
#[derive(Debug)]
pub struct EffectSite {
    /// Effect class.
    pub kind: EffectKind,
    /// Token-stream index of the head token (position anchor).
    pub tok: usize,
    /// The matched call as written, e.g. `env::var`.
    pub what: String,
}

/// `env::<name>` functions that read or mutate the environment.
const ENV_FNS: &[&str] = &["var", "vars", "var_os", "args", "args_os", "set_var", "remove_var"];

/// `File::<name>` constructors that open filesystem handles.
const FILE_FNS: &[&str] = &["open", "create", "create_new", "options"];

/// Finds every direct effect site in the code-view range
/// `[range.0, range.1]` of `u`. Matching is token-sequence based (so
/// cross-line and comment-interleaved spellings match) and name-based —
/// the same over-approximation contract as the rest of the engine.
pub fn effects_in(u: &FileUnit, range: (usize, usize)) -> Vec<EffectSite> {
    let code = u.code();
    let mut out = Vec::new();
    for k in range.0..=range.1 {
        let Some(tok) = code.at(k) else { break };
        if tok.kind != TokKind::Ident {
            continue;
        }
        // Skip path tails: `std::env::var` anchors at `env`, not `var`,
        // but `env` itself is a tail there — anchor at the *effect
        // module* segment regardless of what precedes it.
        let sep = code.is_punct(k + 1, ':') && code.is_punct(k + 2, ':');
        let tail = if sep {
            code.at(k + 3).filter(|t| t.kind == TokKind::Ident).map(|t| t.ident_text())
        } else {
            None
        };
        let anchor = u.ctx.code[k];
        match tok.ident_text() {
            "env" => {
                if let Some(t) = tail {
                    if ENV_FNS.contains(&t) {
                        out.push(EffectSite {
                            kind: EffectKind::Env,
                            tok: anchor,
                            what: format!("env::{t}"),
                        });
                    } else if t == "temp_dir" {
                        out.push(EffectSite {
                            kind: EffectKind::Fs,
                            tok: anchor,
                            what: "env::temp_dir".to_owned(),
                        });
                    }
                }
            }
            "fs" => {
                if let Some(t) = tail {
                    out.push(EffectSite {
                        kind: EffectKind::Fs,
                        tok: anchor,
                        what: format!("fs::{t}"),
                    });
                }
            }
            "File" => {
                if let Some(t) = tail {
                    if FILE_FNS.contains(&t) {
                        out.push(EffectSite {
                            kind: EffectKind::Fs,
                            tok: anchor,
                            what: format!("File::{t}"),
                        });
                    }
                }
            }
            "OpenOptions" => {
                if tail == Some("new") {
                    out.push(EffectSite {
                        kind: EffectKind::Fs,
                        tok: anchor,
                        what: "OpenOptions::new".to_owned(),
                    });
                }
            }
            "Instant" | "SystemTime" => {
                if tail == Some("now") {
                    out.push(EffectSite {
                        kind: EffectKind::Clock,
                        tok: anchor,
                        what: format!("{}::now", tok.ident_text()),
                    });
                }
            }
            "RandomState" => {
                if tail == Some("new") {
                    out.push(EffectSite {
                        kind: EffectKind::Entropy,
                        tok: anchor,
                        what: "RandomState::new".to_owned(),
                    });
                }
            }
            "thread_rng" => {
                if code.is_punct(k + 1, '(') {
                    out.push(EffectSite {
                        kind: EffectKind::Entropy,
                        tok: anchor,
                        what: "thread_rng()".to_owned(),
                    });
                }
            }
            "from_entropy" => {
                if code.is_punct(k + 1, '(') {
                    out.push(EffectSite {
                        kind: EffectKind::Entropy,
                        tok: anchor,
                        what: "from_entropy()".to_owned(),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-kind sanctioned path prefixes, loaded from
/// `specs/lint_effects.json`.
#[derive(Debug, Clone, Default)]
pub struct EffectSanctions {
    /// Paths allowed to read/mutate the environment (config parsing).
    pub env: Vec<PathBuf>,
    /// Paths allowed filesystem access (snapshot store, loaders, tools).
    pub fs: Vec<PathBuf>,
    /// Paths allowed to read the wall clock (the cm-faults boundary).
    pub clock: Vec<PathBuf>,
    /// Paths allowed ambient entropy (none in this workspace).
    pub entropy: Vec<PathBuf>,
}

impl EffectSanctions {
    /// Parses the spec JSON. This is a tolerant structural read — schema
    /// validation with spans is cm-check's `lint-spec-*` job; here a
    /// malformed file is simply an error.
    pub fn parse(source: &str) -> Result<Self, String> {
        let doc = Json::parse(source).map_err(|e| format!("specs/lint_effects.json: {e}"))?;
        let sanctions = doc
            .get("sanctions")
            .ok_or_else(|| "specs/lint_effects.json: missing \"sanctions\"".to_owned())?;
        let kind = |key: &str| -> Result<Vec<PathBuf>, String> {
            let mut out = Vec::new();
            if let Some(arr) = sanctions.get(key).and_then(Json::as_arr) {
                for entry in arr {
                    let path = entry.get("path").and_then(Json::as_str).ok_or_else(|| {
                        format!("specs/lint_effects.json: \"{key}\" entry without a \"path\"")
                    })?;
                    out.push(PathBuf::from(path));
                }
            }
            Ok(out)
        };
        Ok(EffectSanctions {
            env: kind("env")?,
            fs: kind("fs")?,
            clock: kind("clock")?,
            entropy: kind("entropy")?,
        })
    }

    /// Loads and parses the spec file at `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let source = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&source)
    }

    /// True when `file` is sanctioned for effects of `kind` (path-prefix
    /// match against the workspace-relative path).
    pub fn sanctioned(&self, kind: EffectKind, file: &Path) -> bool {
        let list = match kind {
            EffectKind::Env => &self.env,
            EffectKind::Fs => &self.fs,
            EffectKind::Clock => &self.clock,
            EffectKind::Entropy => &self.entropy,
        };
        list.iter().any(|p| file.starts_with(p))
    }
}
