//! Span-retaining JSON parsing.
//!
//! [`JsonNode`] is the offset-carrying sibling of [`Json`]: the same value
//! shapes, but every value — and every object key — remembers exactly
//! where it came from as a [`cm_span::Span`] (byte range plus 1-based
//! line/column). This is what lets a validator point at *the token that
//! is wrong* in a spec file (`specs/table1.json:7:13`) instead of merely
//! describing the problem.
//!
//! The parser reuses the byte-level primitives of the plain [`Json`]
//! parser, so the two accept exactly the same documents; [`JsonNode::to_json`]
//! strips the spans back off when only the value matters.

use cm_span::{LineMap, Span};

use crate::{Json, JsonError, Parser};

/// A parsed JSON value with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonNode {
    /// Where this value sits in the source: from its first byte to just
    /// past its last (`[` through `]` for arrays, quote to quote for
    /// strings).
    pub span: Span,
    /// The value itself.
    pub kind: NodeKind,
}

/// One `"key": value` pair of a spanned object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjEntry {
    /// The key, escapes resolved.
    pub key: String,
    /// Span of the key token (including its quotes).
    pub key_span: Span,
    /// The value.
    pub value: JsonNode,
}

/// The value alternatives of a [`JsonNode`]; mirrors [`Json`].
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonNode>),
    /// An object; insertion-ordered entries.
    Obj(Vec<ObjEntry>),
}

impl JsonNode {
    /// Parses a JSON document (one top-level value, trailing whitespace
    /// ok), retaining source offsets on every value and object key.
    pub fn parse(input: &str) -> Result<JsonNode, JsonError> {
        let mut p = SpannedParser {
            p: Parser { bytes: input.as_bytes(), pos: 0 },
            map: LineMap::new(input),
            source: input,
        };
        p.p.skip_ws();
        let node = p.value()?;
        p.p.skip_ws();
        if p.p.pos != p.p.bytes.len() {
            return Err(p.p.err("trailing characters after value"));
        }
        Ok(node)
    }

    /// Strips the spans, yielding the plain value.
    pub fn to_json(&self) -> Json {
        match &self.kind {
            NodeKind::Null => Json::Null,
            NodeKind::Bool(b) => Json::Bool(*b),
            NodeKind::Num(n) => Json::Num(*n),
            NodeKind::Str(s) => Json::Str(s.clone()),
            NodeKind::Arr(items) => Json::Arr(items.iter().map(JsonNode::to_json).collect()),
            NodeKind::Obj(entries) => {
                Json::Obj(entries.iter().map(|e| (e.key.clone(), e.value.to_json())).collect())
            }
        }
    }

    /// Looks up a key's value in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonNode> {
        self.entry(key).map(|e| &e.value)
    }

    /// Looks up a key's full entry (key span included) in an object.
    pub fn entry(&self, key: &str) -> Option<&ObjEntry> {
        match &self.kind {
            NodeKind::Obj(entries) => entries.iter().find(|e| e.key == key),
            _ => None,
        }
    }

    /// Span of a key token in an object, if present.
    pub fn key_span(&self, key: &str) -> Option<Span> {
        self.entry(key).map(|e| e.key_span)
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match &self.kind {
            NodeKind::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a usize, if this is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match &self.kind {
            NodeKind::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.kind {
            NodeKind::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonNode]> {
        match &self.kind {
            NodeKind::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[ObjEntry]> {
        match &self.kind {
            NodeKind::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// True when this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.kind, NodeKind::Null)
    }

    /// Short name of the value's type, for "expected X, found Y"
    /// diagnostics.
    pub fn type_name(&self) -> &'static str {
        match &self.kind {
            NodeKind::Null => "null",
            NodeKind::Bool(_) => "boolean",
            NodeKind::Num(_) => "number",
            NodeKind::Str(_) => "string",
            NodeKind::Arr(_) => "array",
            NodeKind::Obj(_) => "object",
        }
    }
}

/// The zero-length span at byte `offset` of `input` — the position form
/// of a [`JsonError`]'s offset, for rendering parse errors as
/// `path:line:col` diagnostics.
pub fn offset_span(input: &str, offset: usize) -> Span {
    LineMap::new(input).span(input, offset, offset)
}

/// Wraps the byte-level [`Parser`] with span minting.
struct SpannedParser<'a> {
    p: Parser<'a>,
    map: LineMap,
    source: &'a str,
}

impl SpannedParser<'_> {
    fn span_from(&self, start: usize) -> Span {
        self.map.span(self.source, start, self.p.pos)
    }

    fn value(&mut self) -> Result<JsonNode, JsonError> {
        let start = self.p.pos;
        let kind = match self.p.peek() {
            Some(b'n') => {
                self.p.eat_lit("null", Json::Null)?;
                NodeKind::Null
            }
            Some(b't') => {
                self.p.eat_lit("true", Json::Bool(true))?;
                NodeKind::Bool(true)
            }
            Some(b'f') => {
                self.p.eat_lit("false", Json::Bool(false))?;
                NodeKind::Bool(false)
            }
            Some(b'"') => NodeKind::Str(self.p.string()?),
            Some(b'[') => self.array()?,
            Some(b'{') => self.object()?,
            Some(b'-' | b'0'..=b'9') => NodeKind::Num(self.p.number_f64()?),
            _ => return Err(self.p.err("expected a JSON value")),
        };
        Ok(JsonNode { span: self.span_from(start), kind })
    }

    fn array(&mut self) -> Result<NodeKind, JsonError> {
        self.p.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.p.skip_ws();
        if self.p.peek() == Some(b']') {
            self.p.pos += 1;
            return Ok(NodeKind::Arr(items));
        }
        loop {
            self.p.skip_ws();
            items.push(self.value()?);
            self.p.skip_ws();
            match self.p.peek() {
                Some(b',') => self.p.pos += 1,
                Some(b']') => {
                    self.p.pos += 1;
                    return Ok(NodeKind::Arr(items));
                }
                _ => return Err(self.p.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<NodeKind, JsonError> {
        self.p.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.p.skip_ws();
        if self.p.peek() == Some(b'}') {
            self.p.pos += 1;
            return Ok(NodeKind::Obj(entries));
        }
        loop {
            self.p.skip_ws();
            let key_start = self.p.pos;
            let key = self.p.string()?;
            let key_span = self.span_from(key_start);
            self.p.skip_ws();
            self.p.eat(b':', "expected ':' after object key")?;
            self.p.skip_ws();
            let value = self.value()?;
            entries.push(ObjEntry { key, key_span, value });
            self.p.skip_ws();
            match self.p.peek() {
                Some(b',') => self.p.pos += 1,
                Some(b'}') => {
                    self.p.pos += 1;
                    return Ok(NodeKind::Obj(entries));
                }
                _ => return Err(self.p.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_land_on_the_exact_tokens() {
        let src = "{\n  \"name\": \"table1\",\n  \"scale\": 0.25\n}\n";
        let root = JsonNode::parse(src).unwrap();
        assert_eq!(root.span.slice(src), src.trim_end());
        let name = root.get("name").unwrap();
        assert_eq!(name.span.slice(src), "\"table1\"");
        assert_eq!((name.span.line, name.span.col), (2, 11));
        let key = root.key_span("scale").unwrap();
        assert_eq!(key.slice(src), "\"scale\"");
        assert_eq!((key.line, key.col), (3, 3));
        let scale = root.get("scale").unwrap();
        assert_eq!(scale.as_f64(), Some(0.25));
        assert_eq!((scale.span.line, scale.span.col), (3, 12));
    }

    #[test]
    fn nested_array_elements_have_spans() {
        let src = "[1, [2,\n 3], \"x\"]";
        let root = JsonNode::parse(src).unwrap();
        let items = root.as_arr().unwrap();
        assert_eq!(items[0].span.slice(src), "1");
        let inner = items[1].as_arr().unwrap();
        assert_eq!((inner[1].span.line, inner[1].span.col), (2, 2));
        assert_eq!(items[2].as_str(), Some("x"));
    }

    #[test]
    fn to_json_matches_the_plain_parser() {
        let src = r#"{"a": [1, true, null, "s\n"], "b": {"c": -2.5e3}, "d": {}}"#;
        assert_eq!(JsonNode::parse(src).unwrap().to_json(), Json::parse(src).unwrap());
    }

    #[test]
    fn huge_exponent_parses_to_infinity() {
        // JSON cannot write NaN, but 1e999 overflows f64 to infinity —
        // the hook spec fixtures use to exercise non-finite checks.
        let root = JsonNode::parse("{\"scale\": 1e999}").unwrap();
        assert_eq!(root.get("scale").and_then(JsonNode::as_f64), Some(f64::INFINITY));
    }

    #[test]
    fn errors_keep_offsets_and_map_to_positions() {
        let src = "{\"a\": \n  oops}";
        let err = JsonNode::parse(src).unwrap_err();
        assert_eq!(err.offset, 9);
        let at = offset_span(src, err.offset);
        assert_eq!((at.line, at.col), (2, 3));
    }

    #[test]
    fn same_acceptance_as_plain_parser() {
        for bad in ["", "[1, 2", "[1] x", "{\"a\" 1}", "nul", "{\"k\": 01x}"] {
            assert_eq!(JsonNode::parse(bad).is_err(), Json::parse(bad).is_err(), "{bad:?}");
        }
    }
}
