//! Regenerates **Table 2**: relative AUPRC of the fully supervised text
//! model (`T + ABCD`), the weakly supervised image model (`I + ABCD`), and
//! the cross-modal model (`T, I + ABCD`), plus the cross-over point — the
//! number of hand-labeled images a fully supervised model needs to match
//! the cross-modal pipeline.
//!
//! Expected shape (paper): the cross-modal and weakly supervised image
//! models beat text transfer; cross-over points span orders of magnitude
//! across tasks (CT 3/CT 4 small, CT 5 extreme).
//!
//! The evaluation matrix lives in `specs/table2.json`; `CM_SCALE`,
//! `CM_SEEDS`, `CM_TASK=CT3` to restrict, and `CM_JSON=path` still
//! override/extend it.

use cm_bench::{
    fmt_ratio, load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_scenario,
    spec_seeds, task_selected, TaskRun,
};
use cm_eval::{find_crossover, CrossoverSeries};
use cm_featurespace::FeatureSet;
use cm_json::{Json, ToJson};
use cm_pipeline::{curate, Scenario};

struct Row {
    task: String,
    baseline_auprc: f64,
    text_rel: f64,
    image_rel: f64,
    cross_modal_rel: f64,
    cross_over: Option<f64>,
    max_swept: f64,
    supervised_curve: Vec<(f64, f64)>,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("baseline_auprc", self.baseline_auprc.to_json()),
            ("text_rel", self.text_rel.to_json()),
            ("image_rel", self.image_rel.to_json()),
            ("cross_modal_rel", self.cross_modal_rel.to_json()),
            ("cross_over", self.cross_over.to_json()),
            ("max_swept", self.max_swept.to_json()),
            ("supervised_curve", self.supervised_curve.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("table2");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    let sets = FeatureSet::SHARED;
    let text_s = spec_scenario(&spec, "text-only T+ABCD");
    let image_s = spec_scenario(&spec, "image-only I+ABCD");
    let cross_s = spec_scenario(&spec, "cross-modal T,I+ABCD");

    println!(
        "Table 2 (scale {scale}, {} seed(s)) — AUPRC relative to the embedding baseline",
        seeds.len()
    );
    println!(
        "{:<6} {:>8} {:>8} {:>12} {:>12}",
        "Task", "Text", "Image", "Cross-Modal", "Cross-Over"
    );
    let mut rows = Vec::new();
    for &id in &spec.tasks {
        if !task_selected(id) {
            continue;
        }
        let mut text_rels = Vec::new();
        let mut image_rels = Vec::new();
        let mut cross_rels = Vec::new();
        let mut baselines = Vec::new();
        let mut crossovers: Vec<f64> = Vec::new();
        let mut curve_acc: Vec<(f64, Vec<f64>)> = Vec::new();
        let mut max_swept = 0.0f64;
        for &seed in &seeds {
            let run = TaskRun::new(id, scale, seed, spec_reservoir(&spec, scale));
            let runner = run.runner();
            let curation = curate(&run.data, &run.curation_config(seed));
            let baseline = runner.baseline_auprc().unwrap();
            baselines.push(baseline);

            let text = runner.run_relative(&text_s, None, baseline).unwrap();
            let image = runner.run_relative(&image_s, Some(&curation), baseline).unwrap();
            let cross = runner.run_relative(&cross_s, Some(&curation), baseline).unwrap();
            text_rels.push(text.relative_auprc.unwrap_or(0.0));
            image_rels.push(image.relative_auprc.unwrap_or(0.0));
            cross_rels.push(cross.relative_auprc.unwrap_or(0.0));

            let reservoir = run.data.labeled_image.len();
            let mut curve = Vec::new();
            for &n in &[500.0f64, 1000.0, 2000.0, 4000.0, 8000.0, 16_000.0] {
                let n = (n * scale) as usize;
                if n < 32 || n > reservoir {
                    continue;
                }
                let eval = runner.run(&Scenario::fully_supervised(&sets, n), None).unwrap();
                curve.push((n as f64, eval.auprc));
                max_swept = max_swept.max(n as f64);
            }
            if let Some(c) = find_crossover(&CrossoverSeries::new(curve.clone()), cross.auprc) {
                crossovers.push(c);
            }
            for (i, &(n, a)) in curve.iter().enumerate() {
                if curve_acc.len() <= i {
                    curve_acc.push((n, Vec::new()));
                }
                curve_acc[i].1.push(a);
            }
        }
        let row = Row {
            task: id.name().to_owned(),
            baseline_auprc: mean(&baselines),
            text_rel: mean(&text_rels),
            image_rel: mean(&image_rels),
            cross_modal_rel: mean(&cross_rels),
            cross_over: (!crossovers.is_empty()).then(|| mean(&crossovers)),
            max_swept,
            supervised_curve: curve_acc.iter().map(|(n, a)| (*n, mean(a))).collect(),
        };
        println!(
            "{:<6} {:>8} {:>8} {:>12} {:>12}",
            row.task,
            fmt_ratio(row.text_rel),
            fmt_ratio(row.image_rel),
            fmt_ratio(row.cross_modal_rel),
            row.cross_over.map_or_else(|| format!(">{max_swept:.0}"), |c| format!("{c:.0}")),
        );
        rows.push(row);
    }
    maybe_write_json(&rows);
}
