//! Serialization round-trips for the schema layer (schemas are the contract
//! between feature-generation jobs and training jobs; they must survive
//! persistence). Encoding is the in-tree `cm-json` one; see
//! `src/jsonio.rs`.

use cm_featurespace::{
    CatSet, FeatureDef, FeatureKind, FeatureSchema, FeatureSet, FeatureValue, ServingMode,
    Vocabulary,
};
use cm_json::{Json, ToJson};

fn sample_schema() -> FeatureSchema {
    FeatureSchema::from_defs(vec![
        FeatureDef::categorical(
            "topics",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["sports", "news", "pets"]),
        ),
        FeatureDef::numeric("user_reports", FeatureSet::D, ServingMode::Nonservable),
        FeatureDef::embedding(
            "img_embedding",
            16,
            FeatureSet::ModalitySpecific,
            ServingMode::Servable,
        ),
    ])
}

#[test]
fn schema_round_trips_through_json() {
    let schema = sample_schema();
    let json = schema.to_json().to_string_pretty();
    let back = FeatureSchema::from_json(&Json::parse(&json).expect("schema reparses"))
        .expect("schema decodes");
    // Lookup indices are not persisted; decoding rebuilds them.
    assert_eq!(back.column("topics"), Some(0));
    assert_eq!(back.column("user_reports"), Some(1));
    assert_eq!(back.def(0).expect("col 0").vocab.get("news"), Some(1));
    assert_eq!(back.def(1).expect("col 1").serving, ServingMode::Nonservable);
    assert_eq!(back.def(2).expect("col 2").kind, FeatureKind::Embedding { dim: 16 });
    assert_eq!(back.len(), schema.len());
}

#[test]
fn feature_values_round_trip_through_json() {
    let values = vec![
        FeatureValue::Numeric(3.25),
        FeatureValue::Categorical(CatSet::from_ids(vec![5, 1, 1])),
        FeatureValue::Embedding(vec![0.5, -0.5]),
        FeatureValue::Missing,
    ];
    let json = values.to_json().to_string_compact();
    let parsed = Json::parse(&json).unwrap();
    let back: Vec<FeatureValue> =
        parsed.as_arr().unwrap().iter().map(|v| FeatureValue::from_json(v).unwrap()).collect();
    assert_eq!(values, back);
}

#[test]
fn vocabulary_preserves_id_order_across_json() {
    let v = Vocabulary::from_names(["z", "a", "m"]);
    let json = v.to_json().to_string_compact();
    let back = Vocabulary::from_json(&Json::parse(&json).unwrap()).unwrap();
    // Ids are positional, not alphabetical.
    assert_eq!(back.get("z"), Some(0));
    assert_eq!(back.get("a"), Some(1));
    assert_eq!(back.name(2), Some("m"));
}

#[test]
fn corrupt_documents_decode_to_errors_not_panics() {
    for text in [
        "{}",
        r#"{"defs": 3}"#,
        r#"{"defs": [{"name": "x"}]}"#,
        // Duplicate feature names must be a decode error, not a panic.
        r#"{"defs": [
            {"name": "x", "kind": "Numeric", "set": "A", "serving": "Servable", "vocab": []},
            {"name": "x", "kind": "Numeric", "set": "A", "serving": "Servable", "vocab": []}
        ]}"#,
    ] {
        let parsed = Json::parse(text).unwrap();
        assert!(FeatureSchema::from_json(&parsed).is_err(), "accepted corrupt doc {text}");
    }
    assert!(Vocabulary::from_json(&Json::parse(r#"["x", "x"]"#).unwrap()).is_err());
}
