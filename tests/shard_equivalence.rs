//! Sharded ≡ unsharded, bit for bit.
//!
//! The `cm-shard` contract: streaming curation through fixed-size column
//! segments under a memory budget changes *nothing* about the output — at
//! any shard size (one row, a prime, a power of two, the whole corpus) and
//! any thread count. These tests pin that equivalence end to end (LF
//! votes, label-model posteriors, conflict, quality report) and for the
//! individual substrates (Apriori supports, similarity scales, k-NN
//! graphs).

use cross_modal::featurespace::{FrozenTable, SimilarityConfig};
use cross_modal::mining::{
    mine_from_bitsets, mine_itemsets_with, ItemCatalogBuilder, MiningConfig,
};
use cross_modal::par::ParConfig;
use cross_modal::prelude::*;
use cross_modal::propagation::{GraphBuilder, KnnMethod};
use cross_modal::shard::{
    build_graph_sharded, fit_scales_sharded, MemBudget, MemTracker, SegmentedCorpus, ShardConfig,
    StreamSpec,
};

/// Shard sizes the ISSUE pins: one row, a prime, a power of two, and
/// larger than any corpus here (the whole-corpus / single-segment case).
const SHARD_SIZES: [usize; 4] = [1, 97, 256, 1 << 20];

fn task() -> TaskConfig {
    TaskConfig::paper(TaskId::Ct2).scaled(0.02)
}

fn fast_config() -> CurationConfig {
    CurationConfig {
        prop_max_seeds: 400,
        mining: MiningConfig { min_recall: 0.05, ..MiningConfig::default() },
        ..CurationConfig::default()
    }
}

/// Asserts every output field that must be bit-identical between the
/// resident and streamed drivers (durations excepted).
fn assert_outputs_match(got: &CurationOutput, want: &CurationOutput, what: &str) {
    assert_eq!(got.lf_names, want.lf_names, "{what}: lf_names");
    assert_eq!(got.covered, want.covered, "{what}: covered");
    assert_eq!(got.probabilistic_labels.len(), want.probabilistic_labels.len(), "{what}: len");
    for (i, (g, w)) in got.probabilistic_labels.iter().zip(&want.probabilistic_labels).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: label {i}: {g} vs {w}");
    }
    assert_eq!(got.conflict.to_bits(), want.conflict.to_bits(), "{what}: conflict");
    assert_eq!(got.ws_quality, want.ws_quality, "{what}: ws_quality");
    assert_eq!(got.degradation.dropped_lfs, want.degradation.dropped_lfs, "{what}: drops");
    assert_eq!(
        got.degradation.pool_coverage.to_bits(),
        want.degradation.pool_coverage.to_bits(),
        "{what}: pool_coverage"
    );
}

#[test]
fn streamed_curation_matches_resident_across_shard_sizes_and_threads() {
    let config = CurationConfig { use_label_propagation: false, ..fast_config() };
    let data = TaskData::generate(task(), 5, Some(64));
    let want = curate(&data, &config);
    for shard_rows in SHARD_SIZES {
        for threads in [1usize, 2, 4] {
            let got = curate_streamed_with(
                task(),
                5,
                &config,
                &ShardConfig::with_segment_rows(shard_rows),
                &ParConfig::threads(threads),
            )
            .unwrap();
            let what = format!("shard_rows={shard_rows} threads={threads}");
            assert_outputs_match(&got.output, &want, &what);
            assert_eq!(got.stats.pool_rows, data.pool.len(), "{what}");
            assert_eq!(got.stats.segments, data.pool.len().div_ceil(shard_rows), "{what}");
            assert!(got.stats.peak_bytes > 0, "{what}: nothing was ever charged");
        }
    }
}

#[test]
fn streamed_curation_matches_resident_with_propagation() {
    let config = fast_config();
    let data = TaskData::generate(task(), 5, Some(64));
    let want = curate(&data, &config);
    assert!(
        want.lf_names.iter().any(|n| n == "label_propagation"),
        "fixture must exercise the propagation LF"
    );
    for (shard_rows, threads) in [(97usize, 1usize), (97, 4), (1 << 20, 1), (1 << 20, 4)] {
        let got = curate_streamed_with(
            task(),
            5,
            &config,
            &ShardConfig::with_segment_rows(shard_rows),
            &ParConfig::threads(threads),
        )
        .unwrap();
        assert_outputs_match(&got.output, &want, &format!("prop shard_rows={shard_rows}"));
    }
}

#[test]
fn streamed_curation_matches_resident_under_em_model() {
    let config = CurationConfig {
        use_label_propagation: false,
        label_model: LabelModelKind::Em,
        ..fast_config()
    };
    let want = curate(&TaskData::generate(task(), 5, Some(64)), &config);
    for threads in [1usize, 2] {
        let got = curate_streamed_with(
            task(),
            5,
            &config,
            &ShardConfig::with_segment_rows(64),
            &ParConfig::threads(threads),
        )
        .unwrap();
        assert_outputs_match(&got.output, &want, &format!("em threads={threads}"));
    }
}

#[test]
fn apriori_supports_match_over_segment_assembled_bitsets() {
    let data = TaskData::generate(task(), 9, Some(64));
    let table = &data.text.table;
    let labels = &data.text.labels;
    let columns = data.shared_columns(&FeatureSet::SHARED);
    let config = MiningConfig { min_recall: 0.05, ..MiningConfig::default() };
    for threads in [1usize, 4] {
        let par = ParConfig::threads(threads);
        let want = mine_itemsets_with(table, labels, &columns, &config, &par);
        for shard_rows in SHARD_SIZES {
            let mut builder =
                ItemCatalogBuilder::new(table.schema(), &columns, config.numeric_bins);
            let mut start = 0usize;
            while start < table.len() {
                let end = (start + shard_rows).min(table.len());
                let seg = table.gather(&(start..end).collect::<Vec<_>>());
                builder.observe(&FrozenTable::freeze(&seg));
                start = end;
            }
            let catalog = builder.finish();
            let mut bits = catalog.empty_bitsets();
            let mut start = 0usize;
            while start < table.len() {
                let end = (start + shard_rows).min(table.len());
                let seg = table.gather(&(start..end).collect::<Vec<_>>());
                catalog.fill(&FrozenTable::freeze(&seg), start, &mut bits);
                start = end;
            }
            let got = mine_from_bitsets(&catalog, &bits, labels, &config, &par);
            let what = format!("shard_rows={shard_rows} threads={threads}");
            assert_eq!(got.positive, want.positive, "{what}: positive itemsets");
            assert_eq!(got.negative, want.negative, "{what}: negative itemsets");
            assert_eq!(got.n_candidates, want.n_candidates, "{what}: candidates");
        }
    }
}

#[test]
fn knn_graphs_match_resident_across_shard_sizes_and_threads() {
    let world = World::build(WorldConfig::new(task(), 13));
    let head = world.generate(ModalityKind::Text, 240, 31);
    let tail = world.generate(ModalityKind::Image, 240, 32);
    let mut resident = head.table.clone();
    resident.extend_from(&tail.table);
    let columns: Vec<usize> = (0..resident.schema().len()).collect();
    let sim = SimilarityConfig::uniform(columns.clone()).fit_scales(&resident);

    let exact = GraphBuilder::exact(5);
    let anchors = GraphBuilder {
        k: 5,
        method: KnnMethod::Anchors { n_anchors: 24, probes: 3, max_candidates: 64 },
        min_weight: 0.05,
    };
    assert!(!anchors.uses_exact(resident.len()), "must exercise the anchor path");
    for builder in [&exact, &anchors] {
        let want = builder.build_with(&resident, &sim, 17, &ParConfig::threads(1));
        for threads in [2usize, 4] {
            let same = builder.build_with(&resident, &sim, 17, &ParConfig::threads(threads));
            assert_eq!(same, want, "resident {:?} drifted at {threads} threads", builder.method);
        }
        for shard_rows in SHARD_SIZES {
            let mut corpus = SegmentedCorpus::new(shard_rows);
            corpus.push_head(&head.table);
            corpus.set_stream(StreamSpec {
                world: &world,
                modality: ModalityKind::Image,
                rows: 240,
                seed: 32,
            });
            // Sharded scales must agree first: the graph consumes them.
            let mut tracker = MemTracker::new(MemBudget::default());
            let scales = fit_scales_sharded(&corpus, &columns, &mut tracker).unwrap();
            for ((c1, s1), (c2, s2)) in scales.numeric_scales.iter().zip(&sim.numeric_scales) {
                assert_eq!(c1, c2);
                assert_eq!(s1.to_bits(), s2.to_bits(), "scale for column {c1}");
            }
            let got = build_graph_sharded(&corpus, builder, &sim, 17, &mut tracker).unwrap();
            assert_eq!(got, want, "{:?} at shard_rows={shard_rows}", builder.method);
        }
    }
}
