//! Seeded positive/negative corpus runner: the engine's self-test,
//! mirroring `xtask validate --seeded-negatives`.
//!
//! A corpus directory holds paired files: `name.rs` (the input) and
//! `name.expected` (the findings the engine must produce, one per line as
//! `rule line col`, sorted by position; `#` comments and blank lines
//! ignored). A missing or empty `.expected` file makes the input a
//! *negative*: the engine must stay silent on it.
//!
//! An input may pin its virtual workspace path with a first-line
//! directive `//@ path: crates/foo/src/bar.rs`, which drives the
//! path-scoped rules (hot-path `table-*`, `crates/par` threading
//! exemption) exactly as in a real run.

use std::fs;
use std::path::Path;

use crate::{lint_source, LintConfig};

/// Outcome of one corpus run.
#[derive(Debug, Default)]
pub struct CorpusOutcome {
    /// Corpus inputs exercised.
    pub files: usize,
    /// Inputs that expect at least one finding.
    pub positives: usize,
    /// Inputs that expect silence.
    pub negatives: usize,
    /// Total findings expected (and, on success, produced).
    pub expected_findings: usize,
    /// Human-readable mismatch descriptions; empty means the self-test
    /// passed.
    pub errors: Vec<String>,
}

impl CorpusOutcome {
    /// True when every expectation matched.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

/// One expected finding parsed from a `.expected` file.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Expected {
    line: u32,
    col: u32,
    rule: String,
}

/// Runs the corpus at `dir` with the given scoping config.
pub fn run_corpus(dir: &Path, cfg: &LintConfig) -> CorpusOutcome {
    let mut out = CorpusOutcome::default();
    let Ok(entries) = fs::read_dir(dir) else {
        out.errors.push(format!("corpus directory {} is unreadable", dir.display()));
        return out;
    };
    let mut inputs: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    inputs.sort();
    if inputs.is_empty() {
        out.errors.push(format!("corpus directory {} holds no .rs inputs", dir.display()));
        return out;
    }
    let mut covered: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for input in inputs {
        out.files += 1;
        let name = input.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let Ok(source) = fs::read_to_string(&input) else {
            out.errors.push(format!("{name}: unreadable"));
            continue;
        };
        let virtual_path = source
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//@ path:"))
            .map(|p| p.trim().to_owned())
            .unwrap_or_else(|| name.clone());
        let mut expected = read_expected(&input.with_extension("expected"), &mut out.errors, &name);
        expected.sort();
        if expected.is_empty() {
            out.negatives += 1;
        } else {
            out.positives += 1;
            out.expected_findings += expected.len();
        }
        let got: Vec<Expected> = lint_source(&source, Path::new(&virtual_path), cfg)
            .into_iter()
            .map(|f| Expected { line: f.line, col: f.col, rule: f.rule.to_owned() })
            .collect();
        for e in &expected {
            if !got.contains(e) {
                out.errors.push(format!(
                    "{name}: expected [{}] at {}:{} but the engine was silent there",
                    e.rule, e.line, e.col
                ));
            }
        }
        for g in &got {
            if !expected.contains(g) {
                out.errors.push(format!("{name}: unexpected [{}] at {}:{}", g.rule, g.line, g.col));
            }
        }
        covered.extend(expected.into_iter().map(|e| e.rule));
    }
    // Coverage contract: every rule the engine can emit must have at
    // least one pinned positive expectation, so a new pass cannot land
    // without a fixture proving it fires.
    for rule in crate::all_rules() {
        if !covered.contains(rule) {
            out.errors.push(format!("rule [{rule}] has no positive corpus fixture"));
        }
    }
    out
}

/// Parses a `.expected` file; absence means a negative input.
fn read_expected(path: &Path, errors: &mut Vec<String>, name: &str) -> Vec<Expected> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, l, c) = (parts.next(), parts.next(), parts.next());
        match (rule, l.and_then(|v| v.parse().ok()), c.and_then(|v| v.parse().ok())) {
            (Some(rule), Some(line), Some(col)) => {
                out.push(Expected { line, col, rule: rule.to_owned() });
            }
            _ => errors.push(format!(
                "{name}: malformed expectation on line {} (want `rule line col`): {line}",
                i + 1
            )),
        }
    }
    out
}
