//! `merge-float`: float accumulation in `par_map_reduce` merge position.
//!
//! `par_map_reduce` folds chunk results in chunk-index order, which is
//! deterministic for a fixed thread count but changes with `CM_THREADS`
//! when the fold is non-associative. Integer merges (`VoteCounts::merge`)
//! are exact under any grouping; float merges (`*a += *b` over gradient
//! buffers) are where thread-count drift enters. This pass flags every
//! `par_map_reduce` call whose merge argument — the closure itself or any
//! function it transitively calls — accumulates floats, so each such
//! site carries an explicit, audited waiver naming why the fold order is
//! pinned.
//!
//! Float evidence is type-informed: compound assigns (`+=` and friends)
//! whose target is int-typed (`usize` counters, histogram buckets) are
//! clean; float-typed or unknown-typed targets with non-integer
//! right-hand sides are evidence, as are float-seeded `.fold(0.0, …)`,
//! `.sum::<f64>()`, and binary `+` with a float-evidenced operand.
//!
//! One finding per call site, anchored at the merge argument's head
//! token, so one waiver covers one site.

use super::{closure_body, frames_for, split_args, WsFinding};
use crate::callgraph::{collect_calls, CallGraph};
use crate::context::Code;
use crate::lexer::TokKind;
use crate::passes::par_capture::path_arg_fns;
use crate::symbols::{FileUnit, SymbolIndex};

/// Rule name.
pub const RULE: &str = "merge-float";

/// Numeric classification of an operand or assignment target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NumClass {
    Int,
    Float,
    Unknown,
}

/// Runs the pass over the whole workspace.
pub fn run(units: &[FileUnit], sym: &SymbolIndex, graph: &CallGraph) -> Vec<WsFinding> {
    // First float-accumulation evidence per function, for the transitive
    // walk from merge closures into named merge functions.
    let fn_evidence: Vec<Option<String>> = sym
        .fns
        .iter()
        .map(|f| {
            let (lo, hi) = f.body?;
            if hi <= lo + 1 {
                return None;
            }
            evidence_in(&units[f.file], (lo + 1, hi - 1))
        })
        .collect();

    let mut out = Vec::new();
    for (fi, u) in units.iter().enumerate() {
        let code = u.code();
        let n = u.ctx.code.len();
        for k in 0..n {
            if !code.is_ident(k, "par_map_reduce")
                || !code.is_punct(k + 1, '(')
                || (k > 0 && code.is_ident(k - 1, "fn"))
                || u.ctx.test_mask[u.ctx.code[k]]
            {
                continue;
            }
            let args = split_args(&code, k + 1);
            let Some(&merge) = args.get(3) else { continue };
            let owner = sym.enclosing_fn(fi, k);
            let (module, impl_type) = match owner {
                Some(o) => (sym.fns[o].module.clone(), sym.fns[o].impl_type.clone()),
                None => continue,
            };
            let anchor = u.ctx.code[merge.0];
            if let Some(body) = closure_body(&code, merge) {
                if let Some(evidence) = evidence_in(u, body) {
                    out.push(finding(fi, anchor, &evidence, Vec::new()));
                    continue;
                }
                // No direct evidence — walk the functions the closure
                // calls; first float-accumulating reachable fn wins.
                for site in collect_calls(u, sym, fi, &module, impl_type.as_deref(), body) {
                    if let Some((chain, evidence, via)) =
                        reach_evidence(graph, &fn_evidence, sym, &site.callees)
                    {
                        let what = format!(
                            "merge closure calls `{}`, and {evidence} in `{via}`",
                            site.name
                        );
                        out.push(finding(fi, anchor, &what, frames_for(sym, units, &chain)));
                        break;
                    }
                }
            } else if let Some(callees) =
                path_arg_fns(u, sym, fi, &module, impl_type.as_deref(), merge)
            {
                if let Some((chain, evidence, via)) =
                    reach_evidence(graph, &fn_evidence, sym, &callees)
                {
                    let what = format!("merge function reaches `{via}`, where {evidence}");
                    out.push(finding(fi, anchor, &what, frames_for(sym, units, &chain)));
                }
            }
        }
    }
    out
}

/// Builds the one-per-site finding.
fn finding(file: usize, tok: usize, evidence: &str, chain: Vec<super::Frame>) -> WsFinding {
    WsFinding {
        file,
        rule: RULE,
        tok,
        message: format!(
            "par_map_reduce merge accumulates floats ({evidence}); the fold runs in \
             chunk-index order, so results drift with CM_THREADS — merge integer \
             sufficient statistics instead, or waive with the reason the order is pinned"
        ),
        chain,
    }
}

/// First callee from which a float-accumulating function is reachable.
fn reach_evidence(
    graph: &CallGraph,
    fn_evidence: &[Option<String>],
    sym: &SymbolIndex,
    callees: &[usize],
) -> Option<(Vec<usize>, String, String)> {
    for &c in callees {
        if let Some(chain) = graph.find_reachable(c, |f| fn_evidence[f].is_some()) {
            let hit = *chain.last()?;
            let evidence = fn_evidence[hit].clone()?;
            return Some((chain, evidence, sym.fns[hit].name.clone()));
        }
    }
    None
}

/// First float-accumulation evidence in the code-view range, rendered as
/// a short description.
fn evidence_in(u: &FileUnit, range: (usize, usize)) -> Option<String> {
    let code = u.code();
    for k in range.0..=range.1 {
        let tok = code.at(k)?;
        // Compound assigns: `+=`, `-=`, `*=`, `/=`.
        if tok.kind == TokKind::Punct {
            for op in ['+', '-', '*', '/'] {
                if !(code.is_punct(k, op) && k + 1 <= range.1 && code.is_punct(k + 1, '=')) {
                    continue;
                }
                let target = assign_target(u, &code, range.0, k);
                let verdict = match target.1 {
                    NumClass::Int => None,
                    NumClass::Float => Some(format!("`{op}=` on float-typed `{}`", target.0)),
                    NumClass::Unknown => match operand_class(u, &code, k + 2, range.1) {
                        NumClass::Int => None,
                        _ => Some(format!("`{op}=` on `{}`", target.0)),
                    },
                };
                if let Some(v) = verdict {
                    return Some(v);
                }
            }
            // Binary `+` with a float-evidenced operand (skip `+=`,
            // handled above, and `->`/generic punctuation by requiring a
            // float operand explicitly).
            if code.is_punct(k, '+') && !code.is_punct(k + 1, '=') {
                let lhs =
                    if k > range.0 { operand_class_at(u, &code, k - 1) } else { NumClass::Unknown };
                let rhs = operand_class(u, &code, k + 1, range.1);
                if lhs == NumClass::Float || rhs == NumClass::Float {
                    return Some("float `+` in the fold".to_owned());
                }
            }
            continue;
        }
        if tok.kind != TokKind::Ident {
            continue;
        }
        // `.fold(0.0, …)` / `.fold(0f64, …)`.
        if tok.is_ident("fold") && code.is_punct(k + 1, '(') {
            if let Some(init) = code.at(k + 2) {
                if init.kind == TokKind::Num && is_float_literal(&init.text) {
                    return Some("float-seeded `.fold(…)`".to_owned());
                }
            }
        }
        // `.sum::<f64>()` / `.sum::<f32>()`.
        if tok.is_ident("sum")
            && code.is_punct(k + 1, ':')
            && code.is_punct(k + 2, ':')
            && code.is_punct(k + 3, '<')
            && (code.is_ident(k + 4, "f64") || code.is_ident(k + 4, "f32"))
        {
            return Some("`.sum::<f64>()`".to_owned());
        }
    }
    None
}

/// The name and class of the target of a compound assign whose operator
/// sits at code index `op`: walks back over one index expression
/// (`counts[c] +=`) or a deref (`*a +=`) to the target identifier.
fn assign_target(u: &FileUnit, code: &Code<'_>, lo: usize, op: usize) -> (String, NumClass) {
    let mut j = op as isize - 1;
    if j >= lo as isize && code.is_punct(j as usize, ']') {
        let mut depth = 0i64;
        while j >= lo as isize {
            if code.is_punct(j as usize, ']') {
                depth += 1;
            } else if code.is_punct(j as usize, '[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j -= 1;
        }
        j -= 1;
    }
    if j < lo as isize {
        return ("?".to_owned(), NumClass::Unknown);
    }
    match code.at(j as usize) {
        Some(t) if t.kind == TokKind::Ident => {
            let name = t.ident_text().to_owned();
            let class = classify_name(u, &name);
            (name, class)
        }
        _ => ("?".to_owned(), NumClass::Unknown),
    }
}

/// Class of the operand starting at code index `k` (derefs and borrows
/// skipped).
fn operand_class(u: &FileUnit, code: &Code<'_>, mut k: usize, hi: usize) -> NumClass {
    while k <= hi && (code.is_punct(k, '*') || code.is_punct(k, '&')) {
        k += 1;
    }
    if k > hi {
        return NumClass::Unknown;
    }
    operand_class_at(u, code, k)
}

/// Class of the single token at code index `k`.
fn operand_class_at(u: &FileUnit, code: &Code<'_>, k: usize) -> NumClass {
    match code.at(k) {
        Some(t) if t.kind == TokKind::Num => {
            if is_float_literal(&t.text) {
                NumClass::Float
            } else {
                NumClass::Int
            }
        }
        Some(t) if t.kind == TokKind::Ident => classify_name(u, t.ident_text()),
        _ => NumClass::Unknown,
    }
}

/// Looks a name up in the file's typed-binding sets.
fn classify_name(u: &FileUnit, name: &str) -> NumClass {
    if u.ctx.int_typed.contains(name) {
        NumClass::Int
    } else if u.ctx.float_typed.contains(name) {
        NumClass::Float
    } else {
        NumClass::Unknown
    }
}

/// True for float-shaped numeric literal text: a decimal point, an
/// `f32`/`f64` suffix, or a decimal exponent.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('e')
        || text.contains('E')
}
