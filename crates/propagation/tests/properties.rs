//! Property-based tests for graphs and label propagation.

use cm_propagation::{propagate, propagate_streaming, PropagationConfig, SparseGraph};
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f32)>)> {
    (4usize..24).prop_flat_map(|n| {
        let edges = prop::collection::vec(
            (0..n as u32, 0..n as u32, 0.05f32..1.0),
            0..(n * 3),
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CSR build is symmetric: u in N(v) iff v in N(u), with equal
    /// weights.
    #[test]
    fn graph_is_symmetric((n, edges) in random_graph()) {
        let g = SparseGraph::from_edges(n, &edges);
        for v in 0..n {
            let (neigh, weights) = g.neighbors(v);
            for (&u, &w) in neigh.iter().zip(weights) {
                let (back, back_w) = g.neighbors(u as usize);
                let pos = back.iter().position(|&x| x as usize == v);
                prop_assert!(pos.is_some(), "edge {v}->{u} missing its reverse");
                prop_assert_eq!(back_w[pos.unwrap()], w);
            }
        }
    }

    /// Neighbor lists are sorted and self-loop free.
    #[test]
    fn neighbor_lists_are_canonical((n, edges) in random_graph()) {
        let g = SparseGraph::from_edges(n, &edges);
        for v in 0..n {
            let (neigh, _) = g.neighbors(v);
            for w in neigh.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate neighbors");
            }
            prop_assert!(!neigh.contains(&(v as u32)), "self loop at {v}");
        }
    }

    /// Maximum principle: propagated scores stay within the convex hull of
    /// the seed scores and the prior.
    #[test]
    fn propagation_respects_maximum_principle(
        (n, edges) in random_graph(),
        seed_bits in prop::collection::vec(any::<bool>(), 1..6),
        prior in 0.0f64..1.0,
    ) {
        let g = SparseGraph::from_edges(n, &edges);
        let seeds: Vec<(usize, f64)> = seed_bits
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < n)
            .map(|(i, &b)| (i, if b { 1.0 } else { 0.0 }))
            .collect();
        let cfg = PropagationConfig { max_iters: 200, tol: 1e-9, prior };
        let scores = propagate(&g, &seeds, &cfg);
        let mut lo = prior;
        let mut hi = prior;
        for &(_, s) in &seeds {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        for (v, &s) in scores.iter().enumerate() {
            prop_assert!(
                s >= lo - 1e-9 && s <= hi + 1e-9,
                "vertex {v} score {s} escapes [{lo}, {hi}]"
            );
        }
    }

    /// Jacobi and Gauss–Seidel converge to the same fixed point.
    #[test]
    fn variants_agree_at_convergence(
        (n, edges) in random_graph(),
        seed_bits in prop::collection::vec(any::<bool>(), 2..5),
    ) {
        let g = SparseGraph::from_edges(n, &edges);
        let seeds: Vec<(usize, f64)> = seed_bits
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < n)
            .map(|(i, &b)| (i, if b { 1.0 } else { 0.0 }))
            .collect();
        let cfg = PropagationConfig { max_iters: 20_000, tol: 1e-12, prior: 0.5 };
        let sync = propagate(&g, &seeds, &cfg);
        let stream = propagate_streaming(&g, &seeds, &cfg);
        for (a, b) in sync.iter().zip(&stream) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// Clamped seeds never move.
    #[test]
    fn seeds_are_clamped((n, edges) in random_graph()) {
        let g = SparseGraph::from_edges(n, &edges);
        let seeds = vec![(0usize, 1.0f64), (n - 1, 0.0)];
        let scores = propagate(&g, &seeds, &PropagationConfig::default());
        prop_assert_eq!(scores[0], 1.0);
        prop_assert_eq!(scores[n - 1], 0.0);
    }
}
