//! Production operations around the pipeline (paper §7): feature-set
//! attribution, active-learning review, and live-metric estimation from
//! sampled reviews.
//!
//! ```sh
//! cargo run --release --example production_monitoring
//! ```

use cross_modal::eval::estimate_live_metrics;
use cross_modal::pipeline::{
    apply_review, feature_set_attribution, select_for_review, ReviewStrategy,
};
use cross_modal::prelude::*;

fn main() {
    let task = TaskConfig::paper(TaskId::Ct1).scaled(0.1);
    let data = TaskData::generate(task, 5, None);
    let mut curation = curate(&data, &CurationConfig::default());
    let model = ModelKind::Mlp { hidden: vec![32] };
    let train = TrainConfig { epochs: 15, patience: None, ..TrainConfig::default() };

    // --- §7.1: which organizational resources carry this task? ---
    println!("feature-set attribution (mask-based, §7.1):");
    let scenario = Scenario::cross_modal(&FeatureSet::SHARED);
    for a in feature_set_attribution(&data, &scenario, Some(&curation), &model, &train).unwrap() {
        println!(
            "  set {:?}: full AUPRC {:.4}, masked {:.4} -> contribution {:+.4}",
            a.set, a.full_auprc, a.masked_auprc, a.contribution
        );
    }

    // --- §6.4/§7.2: spend a small review budget where it matters ---
    let picks = select_for_review(&curation, ReviewStrategy::DisagreementFirst, 60, 7);
    println!("\nactive review: sending {} pool posts to human review", picks.len());
    let before = curation.ws_quality;
    // Our "reviewers" are the simulator's ground truth.
    let reviews: Vec<(usize, Label)> = picks.iter().map(|&r| (r, data.pool.labels[r])).collect();
    apply_review(&mut curation, reviews);
    let runner = ScenarioRunner { data: &data, model: model.clone(), train: train.clone() };
    let eval = runner.run(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation)).unwrap();
    println!(
        "  weak-label F1 before review: {:.3}; cross-modal AUPRC after folding reviews in: {:.4}",
        before.f1, eval.auprc
    );

    // --- §7.4: estimate live precision/recall from a sampled review ---
    // Deploy the model over a fresh traffic sample and estimate its live
    // metrics with a 300-review budget (random + importance sampling).
    let live = data.world.generate(ModalityKind::Image, 3_000, 99);
    let view = cross_modal::pipeline::DenseView::fit(
        &[&data.text.table, &data.pool.table],
        data.world.schema().columns_in_sets(&FeatureSet::SHARED, true),
    )
    .unwrap();
    let scores = {
        use cross_modal::fusion::{EarlyFusionModel, ModalityData};
        let parts = [
            ModalityData::new(view.encode(&data.text.table), data.text.labels_f64()),
            ModalityData::new(view.encode(&data.pool.table), curation.probabilistic_labels.clone()),
        ];
        let fused = EarlyFusionModel::train(&parts, &model, &train, None);
        fused.predict_proba(&view.encode(&live.table))
    };
    let est = estimate_live_metrics(&scores, 0.5, 300, 11, |i| live.labels[i].is_positive())
        .expect("live stream is nonempty");
    // Compare against the (normally unknowable) exact numbers.
    let truth: Vec<bool> = live.labels.iter().map(|l| l.is_positive()).collect();
    let exact = cross_modal::eval::BinaryMetrics::at_threshold(&scores, &truth, 0.5);
    println!(
        "\nlive monitoring (300 reviews over 3000 posts):\n  estimated precision {:.3} (exact {:.3}), recall {:.3} (exact {:.3})",
        est.precision, exact.precision, est.recall, exact.recall
    );
}
