//! Randomized tests for the generative world (seeded, in-tree PRNG): the
//! statistical guarantees downstream crates rely on must hold for arbitrary
//! seeds and task profiles.

use cm_featurespace::ModalityKind;
use cm_linalg::rng::{Rng, StdRng};
use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};

const CASES: u64 = 16;

fn any_task(rng: &mut StdRng) -> TaskConfig {
    let id = TaskId::ALL[rng.gen_range(0..TaskId::ALL.len())];
    TaskConfig::paper(id).scaled(0.005)
}

/// Schema and registry invariants hold for every world.
#[test]
fn schema_matches_registry() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5C4 ^ case);
        let task = any_task(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let w = World::build(WorldConfig::new(task, seed));
        assert_eq!(w.schema().len(), w.services().len(), "case {case}");
        for (i, spec) in w.services().iter().enumerate() {
            let def = w.schema().def(i).unwrap();
            assert_eq!(&def.name, &spec.name, "case {case}");
            assert_eq!(def.set, spec.set, "case {case}");
        }
    }
}

/// Generated rows always conform to the schema: categorical ids stay
/// inside their vocabulary, embeddings have the declared width, and
/// modality-inapplicable features are missing.
#[test]
fn generated_rows_conform() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0F0 ^ case);
        let task = any_task(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let modality = [ModalityKind::Text, ModalityKind::Image, ModalityKind::Video]
            [rng.gen_range(0..3usize)];
        let w = World::build(WorldConfig::new(task, seed));
        let d = w.generate(modality, 100, seed ^ 1);
        let schema = w.schema();
        for r in 0..d.len() {
            for (c, def) in schema.defs().iter().enumerate() {
                match def.kind {
                    cm_featurespace::FeatureKind::Categorical => {
                        if let Some(ids) = d.table.categorical(r, c) {
                            for &id in ids {
                                assert!(
                                    (id as usize) < def.vocab.len(),
                                    "case {case}: {}: id {id} outside vocab {}",
                                    def.name,
                                    def.vocab.len()
                                );
                            }
                        }
                    }
                    cm_featurespace::FeatureKind::Embedding { dim } => {
                        if let Some(e) = d.table.embedding(r, c) {
                            assert_eq!(e.len(), dim, "case {case}");
                            assert!(e.iter().all(|v| v.is_finite()), "case {case}");
                        }
                    }
                    cm_featurespace::FeatureKind::Numeric => {
                        if let Some(v) = d.table.numeric(r, c) {
                            assert!(v.is_finite(), "case {case}");
                        }
                    }
                }
                // Zero-coverage features must be missing.
                let spec = &w.services()[c];
                if spec.coverage.get(modality) == 0.0 {
                    assert!(
                        !d.table.is_present(r, c),
                        "case {case}: {} present on {:?}",
                        def.name,
                        modality
                    );
                }
            }
        }
    }
}

/// The generator is deterministic and label-consistent: labels,
/// borderline flags, and rows all reproduce under the same seed.
#[test]
fn generation_is_reproducible() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2E920 ^ case);
        let task = any_task(&mut rng);
        let seed = rng.gen_range(0u64..500);
        let w = World::build(WorldConfig::new(task, seed));
        let a = w.generate(ModalityKind::Image, 64, 7);
        let b = w.generate(ModalityKind::Image, 64, 7);
        assert_eq!(&a.labels, &b.labels, "case {case}");
        assert_eq!(&a.borderline, &b.borderline, "case {case}");
        for r in 0..a.len() {
            assert_eq!(a.table.row(r), b.table.row(r), "case {case}");
        }
    }
}

/// Borderline flags only appear on positives.
#[test]
fn borderline_implies_positive() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB02D ^ case);
        let task = any_task(&mut rng);
        let seed = rng.gen_range(0u64..500);
        let w = World::build(WorldConfig::new(task, seed));
        let d = w.generate(ModalityKind::Image, 400, seed ^ 3);
        for (label, &b) in d.labels.iter().zip(&d.borderline) {
            if b {
                assert!(label.is_positive(), "case {case}");
            }
        }
    }
}

/// Dataset split conserves rows and labels.
#[test]
fn split_conserves() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5B117 ^ case);
        let task = any_task(&mut rng);
        let seed = rng.gen_range(0u64..200);
        let frac = rng.gen_range(0.1..0.9);
        let w = World::build(WorldConfig::new(task, seed));
        let d = w.generate(ModalityKind::Text, 150, 1);
        let (a, b) = d.split(frac, seed);
        assert_eq!(a.len() + b.len(), d.len(), "case {case}");
        let pos =
            |m: &cm_orgsim::ModalityDataset| m.labels.iter().filter(|l| l.is_positive()).count();
        assert_eq!(pos(&a) + pos(&b), pos(&d), "case {case}");
    }
}
