//! Nondeterministic-iteration pass.
//!
//! Iterating a `HashMap`/`HashSet` yields elements in an order that
//! changes run to run (std's hasher is randomly seeded per process —
//! and even with a fixed hasher, order is an implementation detail).
//! When that order feeds a float reduction or an output sequence, it
//! breaks the serial≡parallel and fault-seed bit-identity suites this
//! repo's ROADMAP stakes its trust on. Library code must use
//! `BTreeMap`/`BTreeSet`, sort before consuming, or carry a justified
//! waiver.
//!
//! Detection is name-based, fed by the structural context: bindings,
//! fields, and parameters whose declared type resolves (through `use`
//! and `type` aliases) to a watched hash type, plus calls to same-file
//! functions returning one. Two shapes are flagged:
//!
//! 1. an order-producing method on a watched name —
//!    `counts.iter()`, `self.index.keys()`, `m.drain()`, …
//! 2. a `for` loop over a bare watched name — `for (k, v) in &counts`.

use super::{PassInput, RawFinding};
use crate::lexer::TokKind;

/// The rule name.
pub const RULE: &str = "nondet-iteration";

/// Methods whose result exposes hash-iteration order.
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Runs the pass.
pub fn run(input: &PassInput<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let ctx = input.ctx;
    for j in 0..ctx.code.len() {
        let Some(tok) = input.at(j) else { break };
        if tok.kind != TokKind::Ident {
            continue;
        }
        // Shape 1: `name.iter()` on a watched binding, or `x.field.keys()`
        // on a watched field.
        let name = tok.ident_text();
        let after_dot = j >= 1 && input.punct(j - 1, '.');
        let watched_here = (!after_dot && ctx.watched_bindings.contains(name))
            || (after_dot && ctx.watched_fields.contains(name));
        if watched_here
            && input.punct(j + 1, '.')
            && input.at(j + 2).is_some_and(|m| ORDER_METHODS.iter().any(|om| m.is_ident(om)))
            && input.punct(j + 3, '(')
        {
            let method = input.at(j + 2).map_or(String::new(), |m| m.ident_text().to_owned());
            out.push(RawFinding {
                rule: RULE,
                tok: input.tok_index(j),
                message: format!(
                    "`{name}.{method}()` iterates a hash-ordered collection; order is \
                     nondeterministic — use BTreeMap/BTreeSet, sort first, or waive with \
                     justification"
                ),
            });
            continue;
        }
        // Shape 2: `for pat in &watched {`.
        if tok.is_ident("for") {
            if let Some(f) = check_for_loop(input, j) {
                out.push(f);
            }
        }
    }
    out
}

/// Flags `for … in <expr> {` when `<expr>` is a bare (optionally
/// referenced) watched binding or watched field path. Method-call shapes
/// inside the expression are already covered by shape 1.
fn check_for_loop(input: &PassInput<'_>, for_j: usize) -> Option<RawFinding> {
    let ctx = input.ctx;
    // Find the `in` keyword; the pattern between `for` and `in` contains
    // no braces, and `in` cannot appear inside it.
    let in_j = (for_j + 1..ctx.code.len().min(for_j + 24)).find(|&k| input.ident(k, "in"))?;
    // The loop body `{` ends the iterated expression (struct literals are
    // not allowed bare in a `for` head, so the first `{` is the body).
    let body_j = (in_j + 1..ctx.code.len()).find(|&k| input.punct(k, '{'))?;
    let mut k = in_j + 1;
    while input.punct(k, '&') || input.ident(k, "mut") {
        k += 1;
    }
    // The rest must be a pure `a.b.c` path ending at the body brace.
    let first = k;
    let mut last_ident: Option<usize> = None;
    while k < body_j {
        let tok = input.at(k)?;
        match tok.kind {
            TokKind::Ident => last_ident = Some(k),
            TokKind::Punct if tok.is_punct('.') => {}
            _ => return None,
        }
        k += 1;
    }
    let last = last_ident?;
    let name = input.at(last)?.ident_text();
    let is_field = last > first && input.punct(last - 1, '.');
    let watched = (is_field && ctx.watched_fields.contains(name))
        || (!is_field && ctx.watched_bindings.contains(name));
    watched.then(|| RawFinding {
        rule: RULE,
        tok: input.tok_index(first),
        message: format!(
            "`for` over hash-ordered `{name}`; order is nondeterministic — use \
             BTreeMap/BTreeSet, sort first, or waive with justification"
        ),
    })
}
