//! Feature-set attribution (paper §7.1).
//!
//! "Methods for feature attribution would enable us to evaluate the
//! contribution of specific data modalities and resources on a per-service
//! basis." This module implements mask-based attribution: the contribution
//! of a feature set is the AUPRC the trained model loses when that set is
//! masked (marked missing) at evaluation time — a permutation-importance
//! analogue that needs no retraining, so it scales to many resources.

use cm_featurespace::{CmError, CmResult, ErrorKind, FeatureSet};
use cm_fusion::{EarlyFusionModel, ModalityData};
use cm_models::{ModelKind, TrainConfig};

use crate::curation::CurationOutput;
use crate::data::{mask_disallowed_sets, DenseView, TaskData};
use crate::training::Scenario;

/// Attribution of one feature set.
#[derive(Debug, Clone, PartialEq)]
pub struct SetAttribution {
    /// The feature set.
    pub set: FeatureSet,
    /// AUPRC with every configured set available.
    pub full_auprc: f64,
    /// AUPRC with this set masked at evaluation time.
    pub masked_auprc: f64,
    /// `full - masked`: the set's marginal contribution.
    pub contribution: f64,
}

/// Computes mask-based attribution for each shared feature set used by a
/// cross-modal scenario.
///
/// Trains the scenario's early-fusion model once, then evaluates the test
/// set repeatedly with one feature set masked at a time.
///
/// # Errors
/// Returns [`ErrorKind::InvalidConfig`] if the scenario uses no shared sets,
/// has no modality, or (for weak labels) `curation` is missing.
pub fn feature_set_attribution(
    data: &TaskData,
    scenario: &Scenario,
    curation: Option<&CurationOutput>,
    model: &ModelKind,
    train: &TrainConfig,
) -> CmResult<Vec<SetAttribution>> {
    if scenario.image_sets.is_empty() {
        return Err(CmError::new(
            ErrorKind::InvalidConfig,
            "feature_set_attribution",
            "scenario must use shared feature sets".to_owned(),
        ));
    }
    let schema = data.world.schema();
    let mut columns =
        schema.columns_in_sets(&scenario.image_sets, scenario.include_modality_specific);
    for &c in &schema.columns_in_sets(&scenario.text_sets, false) {
        if !columns.contains(&c) {
            columns.push(c);
        }
    }
    columns.sort_unstable();
    let view = DenseView::fit(&[&data.text.table, &data.pool.table], columns)?;

    // Train once, exactly as ScenarioRunner would for early fusion.
    let mut parts: Vec<ModalityData> = Vec::new();
    if !scenario.text_sets.is_empty() {
        let mut x = view.encode(&data.text.table);
        mask_disallowed_sets(&mut x, &view, schema, &allowed(scenario, true));
        parts.push(ModalityData::new(x, data.text.labels_f64()));
    }
    if scenario.image_labels.is_some() {
        let cur = curation.ok_or_else(|| {
            CmError::new(
                ErrorKind::InvalidConfig,
                "feature_set_attribution",
                "weak-label scenario requires curation output".to_owned(),
            )
        })?;
        let mut x = view.encode(&data.pool.table);
        mask_disallowed_sets(&mut x, &view, schema, &allowed(scenario, false));
        parts.push(ModalityData::new(x, cur.probabilistic_labels.clone()));
    }
    if parts.is_empty() {
        return Err(CmError::new(
            ErrorKind::InvalidConfig,
            "feature_set_attribution",
            "scenario has no modality".to_owned(),
        ));
    }
    let fused = EarlyFusionModel::train(&parts, model, train, None);

    let truth: Vec<bool> = data.test.labels.iter().map(|l| l.is_positive()).collect();
    let full_x = {
        let mut x = view.encode(&data.test.table);
        mask_disallowed_sets(&mut x, &view, schema, &allowed(scenario, false));
        x
    };
    let full_auprc = cm_eval::auprc(&fused.predict_proba(&full_x), &truth);

    let mut out = Vec::new();
    for &set in &scenario.image_sets {
        let mut remaining = allowed(scenario, false);
        remaining.retain(|&s| s != set);
        let mut x = view.encode(&data.test.table);
        mask_disallowed_sets(&mut x, &view, schema, &remaining);
        let masked_auprc = cm_eval::auprc(&fused.predict_proba(&x), &truth);
        out.push(SetAttribution {
            set,
            full_auprc,
            masked_auprc,
            contribution: full_auprc - masked_auprc,
        });
    }
    out.sort_by(|a, b| b.contribution.total_cmp(&a.contribution));
    Ok(out)
}

fn allowed(scenario: &Scenario, text_side: bool) -> Vec<FeatureSet> {
    let mut sets = if text_side { scenario.text_sets.clone() } else { scenario.image_sets.clone() };
    if scenario.include_modality_specific {
        sets.push(FeatureSet::ModalitySpecific);
    }
    sets
}

#[cfg(test)]
mod tests {
    use cm_orgsim::{TaskConfig, TaskId};

    use super::*;
    use crate::curation::{curate, CurationConfig};

    #[test]
    fn attribution_covers_every_set_and_orders_by_contribution() {
        let data = TaskData::generate(TaskConfig::paper(TaskId::Ct2).scaled(0.03), 3, Some(64));
        let curation = curate(&data, &CurationConfig::default());
        let scenario = Scenario::cross_modal(&FeatureSet::SHARED);
        let attr = feature_set_attribution(
            &data,
            &scenario,
            Some(&curation),
            &ModelKind::Logistic,
            &TrainConfig { epochs: 8, ..TrainConfig::default() },
        )
        .unwrap();
        assert_eq!(attr.len(), 4);
        for w in attr.windows(2) {
            assert!(w[0].contribution >= w[1].contribution);
        }
        for a in &attr {
            assert_eq!(a.full_auprc, attr[0].full_auprc);
            assert!((a.contribution - (a.full_auprc - a.masked_auprc)).abs() < 1e-12);
        }
        // The strong sets (C/D carry most task signal in CT 2) should
        // contribute more than the weakest set.
        let by_set = |s: FeatureSet| attr.iter().find(|a| a.set == s).unwrap().contribution;
        let strongest = by_set(FeatureSet::C).max(by_set(FeatureSet::D));
        let weakest = by_set(FeatureSet::A).min(by_set(FeatureSet::B));
        assert!(
            strongest >= weakest,
            "set C/D ({strongest:.4}) should out-contribute A/B ({weakest:.4})"
        );
    }

    #[test]
    fn rejects_setless_scenarios() {
        let data = TaskData::generate(TaskConfig::paper(TaskId::Ct2).scaled(0.01), 5, Some(64));
        let mut scenario = Scenario::cross_modal(&FeatureSet::SHARED);
        scenario.image_sets.clear();
        let err = feature_set_attribution(
            &data,
            &scenario,
            None,
            &ModelKind::Logistic,
            &TrainConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidConfig);
        assert!(err.message.contains("shared feature sets"));
    }
}
