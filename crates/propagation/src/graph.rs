//! CSR sparse undirected weighted graph.

/// Compressed-sparse-row weighted graph. Vertices are dataset row indices;
/// edge weights are Algorithm-1 similarities.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGraph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Vec<f32>,
}

impl SparseGraph {
    /// Builds a symmetric graph from an edge list (deduplicating with
    /// max-weight wins).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n_vertices: usize, edges: &[(u32, u32, f32)]) -> Self {
        // Collect both directions, dedup per (src, dst) keeping max weight.
        let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n_vertices];
        for &(a, b, w) in edges {
            assert!(
                (a as usize) < n_vertices && (b as usize) < n_vertices,
                "edge endpoint out of range"
            );
            if a == b {
                continue;
            }
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        let mut offsets = Vec::with_capacity(n_vertices + 1);
        let mut neighbors = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_by_key(|&(n, _)| n);
            let mut last: Option<u32> = None;
            for &(n, w) in list.iter() {
                if last == Some(n) {
                    let idx = weights.len() - 1;
                    if w > weights[idx] {
                        weights[idx] = w;
                    }
                } else {
                    neighbors.push(n);
                    weights.push(w);
                    last = Some(n);
                }
            }
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors, weights }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn n_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Approximate resident bytes of the CSR storage, for memory-budget
    /// accounting in the sharded drivers.
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<u32>()
            + self.weights.len() * std::mem::size_of::<f32>()
    }

    /// Neighbor ids and weights of a vertex.
    #[inline]
    pub fn neighbors(&self, v: usize) -> (&[u32], &[f32]) {
        let start = self.offsets[v];
        let end = self.offsets[v + 1];
        (&self.neighbors[start..end], &self.weights[start..end])
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sum of incident edge weights.
    pub fn weighted_degree(&self, v: usize) -> f64 {
        let (_, w) = self.neighbors(v);
        w.iter().map(|&x| f64::from(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetrizes() {
        let g = SparseGraph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)]);
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_edges(), 2);
        let (n0, w0) = g.neighbors(0);
        assert_eq!(n0, &[1]);
        assert_eq!(w0, &[0.5]);
        let (n1, _) = g.neighbors(1);
        assert_eq!(n1, &[0, 2]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn duplicate_edges_keep_max_weight() {
        let g = SparseGraph::from_edges(2, &[(0, 1, 0.2), (1, 0, 0.7)]);
        let (_, w) = g.neighbors(0);
        assert_eq!(w, &[0.7]);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = SparseGraph::from_edges(2, &[(0, 0, 1.0), (0, 1, 0.5)]);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn weighted_degree_sums() {
        let g = SparseGraph::from_edges(3, &[(0, 1, 0.5), (0, 2, 0.25)]);
        assert!((g.weighted_degree(0) - 0.75).abs() < 1e-9);
        assert_eq!(g.weighted_degree(1), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoints() {
        SparseGraph::from_edges(2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn isolated_vertices_have_empty_neighborhoods() {
        let g = SparseGraph::from_edges(4, &[(0, 1, 1.0)]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(3).0.len(), 0);
    }
}
