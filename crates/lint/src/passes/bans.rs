//! Cross-line token bans: the original scanner's rules re-expressed over
//! the token stream.
//!
//! Because matching happens on consecutive *code* tokens, `.unwrap\n()`,
//! `thread::\nspawn`, and `Instant:: /* … */ now()` all match exactly
//! like their single-line spellings, and banned names inside strings or
//! comments never match at all.

use super::{PassInput, RawFinding};
use crate::lexer::TokKind;

/// Rules implemented by this pass, in reporting order.
pub const RULES: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "todo",
    "unimplemented",
    "unsafe",
    "dbg",
    "println",
    "thread-spawn",
    "thread-scope",
    "instant-now",
    "systemtime-now",
    "table-row",
    "table-value",
    "stream-materialize",
    "checkpoint-drift",
];

/// `.name(…)` method calls banned in library code.
const BANNED_METHODS: &[(&str, &str)] = &[("unwrap", "unwrap"), ("expect", "expect")];

/// `name!(...)` macros banned in library code.
const BANNED_MACROS: &[(&str, &str)] = &[
    ("panic", "panic"),
    ("todo", "todo"),
    ("unimplemented", "unimplemented"),
    ("dbg", "dbg"),
    ("println", "println"),
];

/// `head::tail` paths banned in library code.
const BANNED_PATHS: &[(&str, &str, &str, &str)] = &[
    ("thread-spawn", "thread", "spawn", "all parallelism goes through cm-par"),
    ("thread-scope", "thread", "scope", "all parallelism goes through cm-par"),
    ("instant-now", "Instant", "now", "wall-clock reads go through cm-faults Stopwatch/SimClock"),
    (
        "systemtime-now",
        "SystemTime",
        "now",
        "wall-clock reads go through cm-faults Stopwatch/SimClock",
    ),
    (
        "stream-materialize",
        "FeatureTable",
        "new",
        "the streaming curation driver must not materialize whole tables; segment assembly lives \
         in cm-shard",
    ),
];

/// `table.row(…)` / `table.value(…)` — row-wise access banned on hot
/// paths in favor of FrozenTable columnar views.
const BANNED_RECEIVER_METHODS: &[(&str, &str, &str)] =
    &[("table-row", "table", "row"), ("table-value", "table", "value")];

/// Runs the pass.
pub fn run(input: &PassInput<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let n = input.ctx.code.len();
    for j in 0..n {
        let Some(tok) = input.at(j) else { break };
        // `.unwrap(` / `.expect(` — next-token boundary is free with a
        // lexer: `.unwrap_or(…)` is a different identifier token.
        if tok.is_punct('.') {
            for &(rule, name) in BANNED_METHODS {
                if input.ident(j + 1, name) && input.punct(j + 2, '(') {
                    out.push(RawFinding {
                        rule,
                        tok: input.tok_index(j),
                        message: format!(".{name}() panics; return CmResult instead"),
                    });
                }
            }
            for &(rule, recv, method) in BANNED_RECEIVER_METHODS {
                // Anchored on the receiver: `table.row(` with `table` a
                // bare identifier (not a call result, which would put a
                // `)` before the dot).
                if input.ident(j + 1, method)
                    && input.punct(j + 2, '(')
                    && j >= 1
                    && input.ident(j - 1, recv)
                {
                    out.push(RawFinding {
                        rule,
                        tok: input.tok_index(j - 1),
                        message: format!(
                            "per-row {recv}.{method}() on a hot path; use FrozenTable columnar views"
                        ),
                    });
                }
            }
            continue;
        }
        if tok.kind != TokKind::Ident {
            continue;
        }
        // Macros: `panic !`. The lexer splits `eprintln` and `println`
        // into distinct idents, so no prefix confusion is possible.
        for &(rule, name) in BANNED_MACROS {
            if tok.is_ident(name) && input.punct(j + 1, '!') {
                out.push(RawFinding {
                    rule,
                    tok: input.tok_index(j),
                    message: format!("{name}! is banned in library code"),
                });
            }
        }
        if tok.is_ident("unsafe") {
            out.push(RawFinding {
                rule: "unsafe",
                tok: input.tok_index(j),
                message: "unsafe is banned in library code".to_owned(),
            });
        }
        // The checkpoint type may only be named inside cm-serve's
        // snapshot module (path-scoped in LintConfig): constructing or
        // destructuring checkpoints anywhere else lets their layout
        // drift behind the format version. A token lint cannot resolve
        // types, so the rule approximates "no direct field access to
        // checkpointed state" by banning the type name itself — foreign
        // code must go through `snapshot::capture`/`save`/`load` and
        // type inference.
        for name in ["Checkpoint", "TickDelta"] {
            if tok.is_ident(name) {
                out.push(RawFinding {
                    rule: "checkpoint-drift",
                    tok: input.tok_index(j),
                    message: format!(
                        "checkpointed state must be accessed through cm-serve's snapshot module \
                         (capture/capture_delta/CheckpointStore), never by naming {name} directly"
                    ),
                });
            }
        }
        for &(rule, head, tail, why) in BANNED_PATHS {
            if tok.is_ident(head) && input.path_sep(j + 1) && input.ident(j + 3, tail) {
                out.push(RawFinding {
                    rule,
                    tok: input.tok_index(j),
                    message: format!("{head}::{tail} is banned: {why}"),
                });
            }
        }
    }
    out
}
