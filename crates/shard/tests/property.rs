//! Seeded property tests for the sharding substrate: segment boundaries
//! are *never* load-bearing, and the memory budget is a hard ceiling.

use cm_featurespace::ModalityKind;
use cm_linalg::rng::{SliceRandom, StdRng};
use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};
use cm_propagation::{GraphBuilder, KnnMethod};
use cm_shard::{
    build_graph_sharded, fit_scales_sharded, for_each_pool_segment, MemBudget, MemTracker,
    SegmentedCorpus, StreamSpec,
};

fn world(seed: u64) -> World {
    World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct3).scaled(0.02), seed))
}

/// A corpus of one resident head plus a streamed tail, at a given shard
/// size.
fn corpus<'a>(
    w: &'a World,
    head: &'a cm_featurespace::FeatureTable,
    tail_rows: usize,
    seg_rows: usize,
) -> SegmentedCorpus<'a> {
    let mut c = SegmentedCorpus::new(seg_rows);
    c.push_head(head);
    c.set_stream(StreamSpec { world: w, modality: ModalityKind::Image, rows: tail_rows, seed: 3 });
    c
}

#[test]
fn random_segment_sizes_never_change_merged_statistics() {
    let w = world(41);
    let head = w.generate(ModalityKind::Text, 70, 2);
    let columns: Vec<usize> = (0..w.schema().len()).collect();
    let builder = GraphBuilder {
        k: 4,
        method: KnnMethod::Anchors { n_anchors: 16, probes: 3, max_candidates: 48 },
        min_weight: 0.05,
    };

    // Reference: the single-segment (resident-order) run.
    let n = 70 + 130;
    let whole = corpus(&w, &head.table, 130, n);
    let mut tracker = MemTracker::new(MemBudget::default());
    let want_sim = fit_scales_sharded(&whole, &columns, &mut tracker).unwrap();
    let want_graph = build_graph_sharded(&whole, &builder, &want_sim, 5, &mut tracker).unwrap();
    assert!(!builder.uses_exact(n), "fixture must exercise the anchor path");

    // Seeded-random shard sizes, including degenerate ones.
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut sizes: Vec<usize> = (1..=n + 7).collect();
    sizes.shuffle(&mut rng);
    sizes.truncate(6);
    for seg_rows in sizes {
        let c = corpus(&w, &head.table, 130, seg_rows);
        let mut tracker = MemTracker::new(MemBudget::default());
        let sim = fit_scales_sharded(&c, &columns, &mut tracker).unwrap();
        for ((c1, s1), (c2, s2)) in sim.numeric_scales.iter().zip(&want_sim.numeric_scales) {
            assert_eq!(c1, c2);
            assert_eq!(s1.to_bits(), s2.to_bits(), "seg_rows {seg_rows} col {c1}");
        }
        let graph = build_graph_sharded(&c, &builder, &sim, 5, &mut tracker).unwrap();
        assert_eq!(graph, want_graph, "seg_rows {seg_rows}");
    }
}

#[test]
fn peak_never_exceeds_budget_and_tight_budgets_fail() {
    let w = world(42);
    let head = w.generate(ModalityKind::Text, 40, 2);
    let columns: Vec<usize> = (0..w.schema().len()).collect();

    // Measure the true peak of a run, then re-run with exactly that budget
    // (must succeed, peak == budget bound) and one byte less (must fail).
    let c = corpus(&w, &head.table, 60, 16);
    let mut tracker = MemTracker::new(MemBudget::default());
    let sim = fit_scales_sharded(&c, &columns, &mut tracker).unwrap();
    build_graph_sharded(&c, &GraphBuilder::exact(4), &sim, 1, &mut tracker).unwrap();
    let peak = tracker.peak();
    assert!(peak > 0);

    let mut exact_budget = MemTracker::new(MemBudget::bytes(peak));
    let sim2 = fit_scales_sharded(&c, &columns, &mut exact_budget).unwrap();
    build_graph_sharded(&c, &GraphBuilder::exact(4), &sim2, 1, &mut exact_budget).unwrap();
    assert!(exact_budget.peak() <= peak, "peak {} crept past {peak}", exact_budget.peak());

    let mut starved = MemTracker::new(MemBudget::bytes(peak - 1));
    let failed = fit_scales_sharded(&c, &columns, &mut starved).is_err()
        || build_graph_sharded(&c, &GraphBuilder::exact(4), &sim, 1, &mut starved).is_err();
    assert!(failed, "a budget below the measured peak must fail some charge");
    assert!(starved.peak() < peak, "the failing run still respected its ceiling");
}

#[test]
fn empty_corpus_is_a_valid_degenerate_case() {
    let columns = vec![0usize, 1];
    let empty = SegmentedCorpus::new(8);
    let mut tracker = MemTracker::new(MemBudget::bytes(1));
    let sim = fit_scales_sharded(&empty, &columns, &mut tracker).unwrap();
    assert!(sim.numeric_scales.is_empty());
    let g = build_graph_sharded(&empty, &GraphBuilder::exact(3), &sim, 0, &mut tracker).unwrap();
    assert_eq!(g.n_vertices(), 0);
    assert_eq!(g.n_edges(), 0);
    assert_eq!(tracker.peak(), 0);
}

#[test]
fn single_segment_stream_matches_head_only_corpus() {
    // The same rows presented as one resident head vs. one streamed
    // segment must produce identical statistics and graphs.
    let w = world(43);
    let tail_rows = 50usize;
    let generated = w.generate(ModalityKind::Image, tail_rows, 3);
    let columns: Vec<usize> = (0..w.schema().len()).collect();

    let mut as_head = SegmentedCorpus::new(tail_rows);
    as_head.push_head(&generated.table);
    let mut as_stream = SegmentedCorpus::new(tail_rows);
    as_stream.set_stream(StreamSpec {
        world: &w,
        modality: ModalityKind::Image,
        rows: tail_rows,
        seed: 3,
    });

    let mut t1 = MemTracker::new(MemBudget::default());
    let mut t2 = MemTracker::new(MemBudget::default());
    let sim_head = fit_scales_sharded(&as_head, &columns, &mut t1).unwrap();
    let sim_stream = fit_scales_sharded(&as_stream, &columns, &mut t2).unwrap();
    for ((c1, s1), (c2, s2)) in sim_head.numeric_scales.iter().zip(&sim_stream.numeric_scales) {
        assert_eq!(c1, c2);
        assert_eq!(s1.to_bits(), s2.to_bits());
    }
    let g_head = build_graph_sharded(&as_head, &GraphBuilder::exact(4), &sim_head, 0, &mut t1);
    let g_stream =
        build_graph_sharded(&as_stream, &GraphBuilder::exact(4), &sim_stream, 0, &mut t2);
    assert_eq!(g_head.unwrap(), g_stream.unwrap());
}

#[test]
fn segment_offsets_are_globally_consistent() {
    // for_each_pool_segment hands out offsets that tile [0, rows) exactly,
    // for any segment size.
    let w = world(44);
    for seg_rows in [1usize, 7, 33, 64, 1000] {
        let mut next = 0usize;
        let mut tracker = MemTracker::new(MemBudget::default());
        for_each_pool_segment(
            &w,
            ModalityKind::Image,
            64,
            9,
            seg_rows,
            &mut tracker,
            &mut |offset, seg, _| {
                assert_eq!(offset, next, "seg_rows {seg_rows}");
                assert!(seg.len() > 0 && seg.len() <= seg_rows);
                next += seg.len();
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(next, 64, "seg_rows {seg_rows}");
    }
}
