//! Fault drill: run the pipeline through a degraded organizational
//! registry and print the degradation report.
//!
//! The fault plan comes from `CM_FAULTS` (same grammar the library
//! parses), falling back to a mixed storm. Output is fully deterministic —
//! seeded fault streams, simulated clock, and a label checksum instead of
//! wall-clock times — so `scripts/ci.sh` diffs this program's output
//! across `CM_THREADS` settings.
//!
//! ```sh
//! CM_FAULTS='seed=7;topics=unavailable@0.5;keywords=transient(2)' \
//!     cargo run --release --example fault_drill
//! ```

use cross_modal::json::ToJson;
use cross_modal::mining::MiningConfig;
use cross_modal::prelude::*;

const DEFAULT_PLAN: &str = "seed=7;topics=unavailable@0.5;keywords=transient(2)@0.6;\
                            page_quality=latency(300)@0.5;user_reports=corrupt@0.4;\
                            kg_entities=stale;sentiment=unavailable@0.9";

fn main() {
    let plan = match FaultPlan::from_env() {
        Ok(p) if p.is_enabled() => p,
        Ok(_) => FaultPlan::parse(DEFAULT_PLAN).unwrap(),
        Err(e) => {
            eprintln!("bad CM_FAULTS: {e}");
            std::process::exit(2);
        }
    };
    println!("fault plan: seed={} with {} faulted services", plan.seed, plan.specs.len());

    let task = TaskConfig::paper(TaskId::Ct2).scaled(0.02);
    let data = TaskData::generate_with_faults(task, 11, Some(200), &plan, AccessPolicy::default())
        .unwrap_or_else(|e| {
            eprintln!("generation failed: {e}");
            std::process::exit(1);
        });

    let config = CurationConfig {
        use_label_propagation: false,
        mining: MiningConfig { min_recall: 0.05, ..Default::default() },
        ..Default::default()
    };
    let curation = curate(&data, &config);

    // A deterministic checksum over the label bit patterns: any cross-run
    // or cross-thread drift shows up as a one-line diff.
    let checksum =
        curation.probabilistic_labels.iter().fold(0u64, |acc, p| acc.rotate_left(7) ^ p.to_bits());
    println!("pool labels: {} (checksum {checksum:016x})", curation.probabilistic_labels.len());
    println!(
        "coverage {:.4}, conflict {:.4}, dropped LFs: {:?}",
        curation.degradation.pool_coverage, curation.conflict, curation.degradation.dropped_lfs
    );
    println!("tripped services: {:?}", curation.degradation.tripped_services);
    if let Some(summary) = &curation.degradation.faults {
        for s in &summary.services {
            println!(
                "  {}: mode={} rate={} calls={} faulted={} recovered={} lost={} \
                 short_circuited={} retries={} sim_wait_ms={} tripped={}",
                s.name,
                s.mode,
                s.rate,
                s.calls,
                s.faulted,
                s.recovered,
                s.lost,
                s.short_circuited,
                s.retries,
                s.sim_wait_ms,
                s.tripped
            );
        }
    }
    println!("degradation report JSON:");
    println!("{}", curation.degradation.to_json().to_string_pretty());
}
