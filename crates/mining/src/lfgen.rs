//! Turning mined itemsets into labeling functions.

use std::time::Duration;

use cm_faults::Stopwatch;
use cm_featurespace::{FeatureTable, Label};
use cm_labelmodel::{CategoricalContainsLf, ConjunctionLf, LabelingFunction, Predicate, Vote};

use crate::apriori::{mine_itemsets, ItemValue, MiningConfig};

/// Summary of one mining run (feeds the §6.7.1 comparison).
#[derive(Debug, Clone)]
pub struct MiningReport {
    /// Order-1 candidates seen in the positive pass.
    pub n_candidates: usize,
    /// Positive itemsets passing thresholds.
    pub n_positive_itemsets: usize,
    /// Negative itemsets passing thresholds.
    pub n_negative_itemsets: usize,
    /// LFs emitted after capping.
    pub n_lfs: usize,
    /// Wall-clock time of the mining pass.
    pub mining_time: Duration,
}

/// Mined labeling functions plus their report.
pub struct MinedLfs {
    /// The generated LFs (positive LFs first).
    pub lfs: Vec<Box<dyn LabelingFunction>>,
    /// Run summary.
    pub report: MiningReport,
}

/// Mines LFs from a labeled dev table (§4.3 end to end).
///
/// Itemsets become LFs as follows: categorical itemsets become
/// [`CategoricalContainsLf`] (require-all over the itemset's ids); numeric
/// bins become range conjunctions over the bin's edges. Boundary values
/// equal to a bin edge may match two adjacent range LFs — harmless for weak
/// supervision, where LFs freely overlap.
///
/// `max_positive_lfs` / `max_negative_lfs` cap the output, keeping the
/// highest-recall itemsets (low-recall duplicates add correlation without
/// coverage).
pub fn mine_lfs(
    dev: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    config: &MiningConfig,
    max_positive_lfs: usize,
    max_negative_lfs: usize,
) -> MinedLfs {
    let start = Stopwatch::start();
    let mined = mine_itemsets(dev, labels, columns, config);
    let lfs = lfs_from_itemsets(&mined, max_positive_lfs, max_negative_lfs);
    let report = MiningReport {
        n_candidates: mined.n_candidates,
        n_positive_itemsets: mined.positive.len(),
        n_negative_itemsets: mined.negative.len(),
        n_lfs: lfs.len(),
        mining_time: start.elapsed(),
    };
    MinedLfs { report, lfs }
}

/// Converts already-mined itemsets into capped LF lists (positive LFs
/// first) — the itemset-to-LF half of [`mine_lfs`], reused by the sharded
/// driver, which mines its itemsets from segment-assembled bitsets.
pub fn lfs_from_itemsets(
    mined: &crate::apriori::MinedItemsets,
    max_positive_lfs: usize,
    max_negative_lfs: usize,
) -> Vec<Box<dyn LabelingFunction>> {
    let mut lfs: Vec<Box<dyn LabelingFunction>> = Vec::new();
    for stats in mined.positive.iter().take(max_positive_lfs) {
        lfs.push(itemset_to_lf(stats.items.as_slice(), Vote::Positive, &mined.discretizers));
    }
    for stats in mined.negative.iter().take(max_negative_lfs) {
        lfs.push(itemset_to_lf(stats.items.as_slice(), Vote::Negative, &mined.discretizers));
    }
    lfs
}

fn itemset_to_lf(
    items: &[crate::apriori::Item],
    vote: Vote,
    discretizers: &[crate::discretize::Discretizer],
) -> Box<dyn LabelingFunction> {
    debug_assert!(!items.is_empty());
    let column = items[0].column;
    match items[0].value {
        ItemValue::Cat(_) => {
            let ids: Vec<u32> = items
                .iter()
                .map(|i| match i.value {
                    ItemValue::Cat(id) => id,
                    ItemValue::NumBin(_) => unreachable!("mixed itemset kinds"),
                })
                .collect();
            Box::new(CategoricalContainsLf::new(column, ids, true, vote))
        }
        ItemValue::NumBin(bin) => {
            // Mined NumBin items always originate from a discretizer
            // fitted on the same column.
            let d = discretizers
                .iter()
                .find(|d| d.column == column)
                .expect("discretizer for mined numeric column"); // lint: allow(expect)
            let (lower, upper) = d.bin_range(bin);
            let mut predicates = Vec::new();
            if let Some(lo) = lower {
                predicates.push(Predicate::NumAbove { column, threshold: lo });
            }
            if let Some(hi) = upper {
                predicates.push(Predicate::NumBelow { column, threshold: hi });
            }
            if predicates.is_empty() {
                // Single-bin discretizer: matches any present value.
                predicates.push(Predicate::NumAbove { column, threshold: f64::NEG_INFINITY });
            }
            let name = format!("num[{column}]bin{bin}=>{vote:?}");
            Box::new(ConjunctionLf::new(name, predicates, vote))
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode, Vocabulary,
    };
    use cm_labelmodel::LabelMatrix;

    use super::*;

    fn dev() -> (FeatureTable, Vec<Label>) {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["p", "bg", "n"]),
            ),
            FeatureDef::numeric("s", FeatureSet::A, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..80 {
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(vec![0, 1])),
                FeatureValue::Numeric(8.0 + (i % 4) as f64),
            ]);
            labels.push(Label::Positive);
        }
        for i in 0..720 {
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(vec![1, 2])),
                FeatureValue::Numeric(i as f64 * 0.01),
            ]);
            labels.push(Label::Negative);
        }
        (t, labels)
    }

    #[test]
    fn mined_lfs_vote_correctly() {
        let (t, labels) = dev();
        let mined = mine_lfs(&t, &labels, &[0, 1], &MiningConfig::default(), 10, 10);
        assert!(!mined.lfs.is_empty());
        let m = LabelMatrix::apply(&t, &mined.lfs);
        // Positive rows should attract positive votes and vice versa.
        let mut pos_correct = 0;
        for r in 0..80 {
            if m.row(r).iter().any(|&v| v > 0) {
                pos_correct += 1;
            }
        }
        assert!(pos_correct > 60, "only {pos_correct}/80 positives covered");
        let mut neg_correct = 0;
        for r in 80..800 {
            if m.row(r).iter().any(|&v| v < 0) {
                neg_correct += 1;
            }
        }
        assert!(neg_correct > 300, "only {neg_correct}/720 negatives covered");
    }

    #[test]
    fn caps_limit_output() {
        let (t, labels) = dev();
        let mined = mine_lfs(&t, &labels, &[0, 1], &MiningConfig::default(), 1, 1);
        assert!(mined.lfs.len() <= 2);
        assert_eq!(mined.report.n_lfs, mined.lfs.len());
    }

    #[test]
    fn report_counts_are_consistent() {
        let (t, labels) = dev();
        let mined = mine_lfs(&t, &labels, &[0, 1], &MiningConfig::default(), 100, 100);
        assert!(mined.report.n_candidates >= mined.report.n_positive_itemsets);
        assert_eq!(
            mined.report.n_lfs,
            mined.report.n_positive_itemsets.min(100) + mined.report.n_negative_itemsets.min(100)
        );
        assert!(mined.report.mining_time.as_nanos() > 0);
    }

    #[test]
    fn numeric_lfs_are_range_shaped() {
        let (t, labels) = dev();
        let mined = mine_lfs(&t, &labels, &[1], &MiningConfig::default(), 20, 0);
        // All positive values live in the top bins; the mined LF must not
        // fire on low values.
        let m = LabelMatrix::apply(&t, &mined.lfs);
        for r in 80..200 {
            assert!(
                m.row(r).iter().all(|&v| v <= 0),
                "numeric LF fired positively on a negative row"
            );
        }
    }
}
