//! Linear projection between embedding spaces (the "P" layer of DeViSE).

use cm_linalg::rng::SliceRandom;
use cm_linalg::rng::StdRng;
use cm_linalg::{xavier_uniform, Matrix};
use cm_models::{Adam, Optimizer};

/// A linear map `y = W x + b` trained by mini-batch MSE regression.
#[derive(Debug, Clone)]
pub struct LinearProjection {
    w: Matrix,
    b: Vec<f32>,
}

/// Hyperparameters for [`LinearProjection::fit`].
#[derive(Debug, Clone)]
pub struct ProjectionConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        Self { epochs: 40, batch_size: 32, lr: 0.01, seed: 0 }
    }
}

impl LinearProjection {
    /// Fits the projection mapping rows of `src` to rows of `dst`.
    ///
    /// # Panics
    /// Panics if row counts differ or the input is empty.
    pub fn fit(src: &Matrix, dst: &Matrix, config: &ProjectionConfig) -> Self {
        assert_eq!(src.rows(), dst.rows(), "row count mismatch");
        assert!(src.rows() > 0, "empty projection training set");
        let (d_in, d_out) = (src.cols(), dst.cols());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = xavier_uniform(&mut rng, d_in, d_out);
        let mut b = vec![0.0f32; d_out];
        let mut opt_w = Adam::new(config.lr, d_out * d_in);
        let mut opt_b = Adam::new(config.lr, d_out);
        let mut order: Vec<usize> = (0..src.rows()).collect();
        let mut grad_w = Matrix::zeros(d_out, d_in);
        let mut grad_b = vec![0.0f32; d_out];
        for epoch in 0..config.epochs {
            let mut epoch_rng = StdRng::seed_from_u64(config.seed ^ (epoch as u64 + 1));
            order.shuffle(&mut epoch_rng);
            for batch in order.chunks(config.batch_size) {
                grad_w.fill_zero();
                grad_b.fill(0.0);
                for &i in batch {
                    let x = src.row(i);
                    let y = dst.row(i);
                    for o in 0..d_out {
                        let pred = cm_linalg::dot(w.row(o), x) + b[o];
                        let err = 2.0 * (pred - y[o]) / batch.len() as f32;
                        cm_linalg::axpy(err, x, grad_w.row_mut(o));
                        grad_b[o] += err;
                    }
                }
                opt_w.step(w.as_mut_slice(), grad_w.as_slice());
                opt_b.step(&mut b, &grad_b);
            }
        }
        Self { w, b }
    }

    /// Projects rows of `x`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn project(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.w.cols(), "projection width mismatch");
        let mut out = Matrix::zeros(x.rows(), self.w.rows());
        for r in 0..x.rows() {
            let y = self.w.matvec(x.row(r));
            let row = out.row_mut(r);
            for (o, (v, &bias)) in y.iter().zip(&self.b).enumerate() {
                row[o] = v + bias;
            }
        }
        out
    }

    /// Mean squared error of the projection on a paired set.
    pub fn mse(&self, src: &Matrix, dst: &Matrix) -> f64 {
        assert_eq!(src.rows(), dst.rows(), "row count mismatch");
        let proj = self.project(src);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for r in 0..src.rows() {
            for (a, b) in proj.row(r).iter().zip(dst.row(r)) {
                total += f64::from(a - b).powi(2);
                count += 1;
            }
        }
        if count > 0 {
            total / count as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds y = A x + c data.
    fn linear_data(n: usize) -> (Matrix, Matrix) {
        let a = [[1.0f32, -2.0], [0.5, 0.5], [3.0, 0.0]];
        let c = [0.1f32, -0.2, 0.3];
        let mut src = Vec::with_capacity(n);
        let mut dst = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = ((i * 31 % 97) as f32) / 97.0 - 0.5;
            let x1 = ((i * 57 % 89) as f32) / 89.0 - 0.5;
            src.push(vec![x0, x1]);
            dst.push((0..3).map(|o| a[o][0] * x0 + a[o][1] * x1 + c[o]).collect());
        }
        (Matrix::from_rows(&src), Matrix::from_rows(&dst))
    }

    #[test]
    fn recovers_linear_map() {
        let (src, dst) = linear_data(300);
        let cfg = ProjectionConfig { epochs: 120, ..ProjectionConfig::default() };
        let p = LinearProjection::fit(&src, &dst, &cfg);
        let mse = p.mse(&src, &dst);
        assert!(mse < 5e-3, "mse = {mse}");
    }

    #[test]
    fn project_shape() {
        let (src, dst) = linear_data(50);
        let p = LinearProjection::fit(
            &src,
            &dst,
            &ProjectionConfig { epochs: 2, ..Default::default() },
        );
        assert_eq!(p.project(&src).shape(), (50, 3));
    }

    #[test]
    fn deterministic() {
        let (src, dst) = linear_data(100);
        let cfg = ProjectionConfig::default();
        let a = LinearProjection::fit(&src, &dst, &cfg);
        let b = LinearProjection::fit(&src, &dst, &cfg);
        assert_eq!(a.project(&src).as_slice(), b.project(&src).as_slice());
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn rejects_unpaired_data() {
        let (src, _) = linear_data(10);
        LinearProjection::fit(&src, &Matrix::zeros(5, 3), &ProjectionConfig::default());
    }

    #[test]
    #[should_panic(expected = "projection width mismatch")]
    fn project_rejects_wrong_width() {
        let (src, dst) = linear_data(10);
        let p = LinearProjection::fit(
            &src,
            &dst,
            &ProjectionConfig { epochs: 1, ..Default::default() },
        );
        p.project(&Matrix::zeros(1, 5));
    }
}
