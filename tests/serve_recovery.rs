//! Serving-tier recovery contracts for `cm-serve`.
//!
//! Two guarantees, tested at `CM_THREADS` ∈ {1, 2, 4} (`scripts/ci.sh`
//! runs the suite under each):
//!
//! 1. **Golden replay** — ingesting the pool as many arrival batches
//!    matches ingesting it as one batch. Coverage and the propagation
//!    graph are *exactly* cut-invariant; the EM posterior follows a
//!    warm-start chain whose fixed point can lag the cold fit, so the
//!    documented tolerance is a max posterior drift `< 0.05` with the
//!    default 20-iteration refit cap (see
//!    `cm_pipeline::incremental::IncrementalConfig::refit_max_iters`).
//! 2. **Crash/restart bit-identity** — for *every* batch index `k`,
//!    crashing after the k-th ingest (`CM_CRASH_AT` semantics) and
//!    resuming from the last checkpoint produces a final report
//!    byte-identical to an uninterrupted run. Checkpoint state is exact,
//!    so unlike replay there is no tolerance here at all.

use std::path::PathBuf;

use cross_modal::json::ToJson;
use cross_modal::par::ParConfig;
use cross_modal::pipeline::{IncrementalConfig, IncrementalCurator};
use cross_modal::prelude::*;
use cross_modal::serve::{self, RunOutcome, ServeConfig, ServeReport};

fn task() -> TaskConfig {
    TaskConfig::paper(TaskId::Ct2).scaled(0.02)
}

fn incremental_config() -> IncrementalConfig {
    let mut config = IncrementalConfig::default();
    config.curation.prop_max_seeds = 400;
    config.curation.mining.min_recall = 0.05;
    config
}

fn serve_config(seed: u64) -> ServeConfig {
    let mut config = ServeConfig::new(task(), seed);
    config.incremental = incremental_config();
    config.batch_rows = 40;
    config
}

fn run_completed(config: &ServeConfig, par: &ParConfig) -> Box<ServeReport> {
    match serve::run(config, par).expect("serve run failed") {
        RunOutcome::Completed { report, .. } => report,
        RunOutcome::Crashed { at_tick } => panic!("unexpected crash at tick {at_tick}"),
    }
}

fn scratch_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cm_serve_recovery_{}_{tag}.json", std::process::id()))
}

#[test]
fn replaying_all_batches_matches_one_batch_within_tolerance() {
    let par = ParConfig::from_env();
    let seed = 11u64;
    let ds = seed ^ 0xD1CE;
    let t = task();
    let world = World::build(WorldConfig::new(t.clone(), seed));
    let text = world.generate(ModalityKind::Text, t.n_text_labeled, ds ^ 0x1);
    let pool = world.generate(ModalityKind::Image, t.n_image_unlabeled, ds ^ 0x2);

    let mut one = IncrementalCurator::new(&world, &text, incremental_config());
    one.ingest_batch(&pool, &par);

    let mut many = IncrementalCurator::new(&world, &text, incremental_config());
    let mut start = 0;
    while start < pool.len() {
        let end = (start + 45).min(pool.len());
        let idx: Vec<usize> = (start..end).collect();
        many.ingest_batch(&pool.gather(&idx), &par);
        start = end;
    }

    // Coverage (votes + propagation graph) is exactly cut-invariant.
    assert_eq!(one.covered(), many.covered(), "coverage must not depend on batch cuts");
    // The EM warm chain carries a documented tolerance (module docs).
    let drift = one
        .posteriors()
        .iter()
        .zip(many.posteriors())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(drift < 0.05, "posterior drift {drift} exceeds the documented 0.05 tolerance");
}

#[test]
fn crash_at_every_batch_resumes_bit_identically() {
    // ci.sh runs this binary at CM_THREADS 1, 2, and 4; from_env picks
    // that up, so one test body covers the whole thread matrix.
    let par = ParConfig::from_env();
    let path = scratch_checkpoint("matrix");
    let _ = std::fs::remove_file(&path);

    let mut config = serve_config(11);
    config.checkpoint_path = Some(path.clone());

    let reference = run_completed(&config, &par);
    let reference_json = reference.to_json().to_string_pretty();
    let n_batches = reference.batches.len();
    assert!(n_batches >= 2, "need at least two batches for a meaningful crash matrix");

    for k in 1..=n_batches {
        let _ = std::fs::remove_file(&path);
        let mut crashing = config.clone();
        crashing.crash_at = Some(k);
        match serve::run(&crashing, &par).expect("crashing run errored") {
            RunOutcome::Crashed { at_tick } => {
                assert!(at_tick >= k, "crash after ingest {k} cannot precede tick {k}")
            }
            RunOutcome::Completed { .. } => panic!("crash_at={k} never fired"),
        }
        // k = 1 crashes before the first tick's checkpoint is ever
        // written — resuming from nothing (a fresh start) must also be
        // bit-identical. Every later k leaves a checkpoint behind.
        if k > 1 {
            assert!(path.exists(), "crash after batch {k} must leave a checkpoint behind");
        }

        // Restart with crash injection cleared: picks up the checkpoint.
        let resumed = run_completed(&config, &par);
        assert_eq!(
            resumed.to_json().to_string_pretty(),
            reference_json,
            "resume after crash at batch {k} diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpointed_and_uncheckpointed_runs_agree() {
    // Checkpoint persistence must be a pure observer: turning it on
    // cannot perturb the deterministic report.
    let par = ParConfig::from_env();
    let plain = run_completed(&serve_config(5), &par);
    let path = scratch_checkpoint("observer");
    let _ = std::fs::remove_file(&path);
    let mut with_cp = serve_config(5);
    with_cp.checkpoint_path = Some(path.clone());
    let observed = run_completed(&with_cp, &par);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        plain.to_json().to_string_pretty(),
        observed.to_json().to_string_pretty(),
        "checkpointing changed the run output"
    );
}

#[test]
fn crash_under_fault_storm_still_resumes_bit_identically() {
    // The hard case: breaker state, fault draws, and stale snapshots are
    // all mid-flight when the crash lands.
    let par = ParConfig::from_env();
    let storm = "seed=7;topics=unavailable@0.5;keywords=transient(2)@0.6;\
                 page_quality=latency(300)@0.5;user_reports=corrupt@0.4;\
                 kg_entities=stale;sentiment=unavailable@0.9";
    let path = scratch_checkpoint("storm");
    let _ = std::fs::remove_file(&path);
    let mut config = serve_config(11);
    config.plan = FaultPlan::parse(storm).expect("storm plan parses");
    config.checkpoint_path = Some(path.clone());

    let reference = run_completed(&config, &par);
    let reference_json = reference.to_json().to_string_pretty();
    let mid = (reference.batches.len() / 2).max(1);

    let _ = std::fs::remove_file(&path);
    let mut crashing = config.clone();
    crashing.crash_at = Some(mid);
    assert!(matches!(
        serve::run(&crashing, &par).expect("crashing storm run errored"),
        RunOutcome::Crashed { .. }
    ));
    let resumed = run_completed(&config, &par);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        resumed.to_json().to_string_pretty(),
        reference_json,
        "storm resume diverged from the uninterrupted storm run"
    );
}
