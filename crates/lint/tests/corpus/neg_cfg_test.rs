//@ path: crates/demo/src/lib.rs
// Seeded negative (bans): `#[cfg(test)]` items are exempt — panicking on
// a violated expectation is exactly right there. Both the block-bodied
// module and the out-of-line declaration form must be recognized.

pub fn lib_code(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests_elsewhere;

#[cfg(test)]
#[allow(dead_code)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let x = Some(1).unwrap();
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &m {
            assert!(k <= v);
        }
        let mut scores = vec![1.0f64];
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if x == 0 {
            panic!("fine in tests");
        }
    }
}
