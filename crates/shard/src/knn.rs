//! Sharded similarity-scale fitting and k-NN graph construction.
//!
//! Both entry points replay the resident `cm-propagation` plans over
//! segment sweeps:
//!
//! - [`fit_scales_sharded`] runs the two-pass MAD fit through the
//!   mergeable [`ScaleAccumulator`] / `DeviationAccumulator` pair — the
//!   resident [`SimilarityConfig::fit_scales`] is *defined* as the
//!   single-segment case, so the fitted scales agree bit for bit.
//! - [`build_graph_sharded`] reproduces [`GraphBuilder::build_with`]'s
//!   edge list exactly: the same exact-vs-anchors decision (from the
//!   shared [`GraphBuilder::uses_exact`]), the same anchor plan and
//!   routing ranks (via the shared `anchor_plan` / `route_row` /
//!   `candidate_stride` helpers), and the same `TopK` insertion order —
//!   candidates are fed in ascending global row order, exactly the
//!   resident scan order, so ties break identically. Pair weights come
//!   from [`normalized_similarity`], the reference the resident
//!   `PairKernel` is pinned to bitwise.
//!
//! Everything here is single-threaded on purpose: segment sweeps already
//! match the resident builder at any `CM_THREADS` because the resident
//! builder's chunk plan is thread-count independent and its chunk results
//! concatenate in row order — the order these sweeps emit natively.

use cm_featurespace::{
    normalized_similarity, CmError, CmResult, ErrorKind, FeatureTable, FrozenTable,
    ScaleAccumulator, SimilarityConfig,
};
use cm_propagation::{
    anchor_plan, candidate_stride, route_row, GraphBuilder, KnnMethod, SparseGraph, TopK,
};

use crate::config::MemTracker;
use crate::corpus::SegmentedCorpus;

/// Fits per-column numeric similarity scales over a segmented corpus,
/// bit-identical to `SimilarityConfig::uniform(columns).fit_scales(t)`
/// over the concatenated resident table.
pub fn fit_scales_sharded(
    corpus: &SegmentedCorpus<'_>,
    columns: &[usize],
    tracker: &mut MemTracker,
) -> CmResult<SimilarityConfig> {
    let mut acc = ScaleAccumulator::new(columns);
    corpus.for_each(tracker, &mut |_, seg, _| {
        acc.observe(&FrozenTable::freeze(seg));
        Ok(())
    })?;
    let mut dev = acc.finish_means();
    corpus.for_each(tracker, &mut |_, seg, _| {
        dev.observe(&FrozenTable::freeze(seg));
        Ok(())
    })?;
    Ok(SimilarityConfig { numeric_scales: dev.finish(), columns: columns.to_vec() })
}

/// Approximate heap bytes of a `Vec`-of-`Vec` nest.
fn nested_bytes<T>(outer: &[Vec<T>]) -> usize {
    outer.iter().map(|v| v.capacity() * std::mem::size_of::<T>()).sum::<usize>()
        + outer.len() * std::mem::size_of::<Vec<T>>()
}

/// Builds the k-NN graph over a segmented corpus, bit-identical to
/// `builder.build_with(resident, sim, seed, par)` over the concatenated
/// resident table at any thread count.
///
/// The `O(n · probes)` routing table and per-segment candidate lists are
/// held resident (and charged to the tracker); feature rows are only ever
/// resident one segment pair at a time.
pub fn build_graph_sharded(
    corpus: &SegmentedCorpus<'_>,
    builder: &GraphBuilder,
    sim: &SimilarityConfig,
    seed: u64,
    tracker: &mut MemTracker,
) -> CmResult<SparseGraph> {
    let n = corpus.total_rows();
    if n == 0 {
        return Ok(SparseGraph::from_edges(0, &[]));
    }
    let edges = if builder.uses_exact(n) {
        sweep_exact(corpus, builder, sim, tracker)?
    } else {
        let KnnMethod::Anchors { n_anchors, probes, max_candidates } = builder.method else {
            unreachable!("non-exact path implies the anchor method")
        };
        sweep_anchors(corpus, builder, sim, n_anchors, probes, max_candidates, seed, tracker)?
    };
    Ok(SparseGraph::from_edges(n, &edges))
}

/// Exact all-pairs sweep: for each segment of query rows, one full pass
/// over the corpus feeds every candidate in ascending global order.
fn sweep_exact(
    corpus: &SegmentedCorpus<'_>,
    builder: &GraphBuilder,
    sim: &SimilarityConfig,
    tracker: &mut MemTracker,
) -> CmResult<Vec<(u32, u32, f32)>> {
    let mut edges = Vec::new();
    corpus.for_each(tracker, &mut |off_a, seg_a, tracker| {
        let mut tops: Vec<TopK> = (0..seg_a.len()).map(|_| TopK::new(builder.k)).collect();
        let top_bytes = seg_a.len() * (builder.k + 1) * std::mem::size_of::<(u32, f32)>();
        tracker.charge(top_bytes, "exact sweep top-k")?;
        corpus.for_each(tracker, &mut |off_b, seg_b, _| {
            for (ra, top) in tops.iter_mut().enumerate() {
                let i = off_a + ra;
                for rb in 0..seg_b.len() {
                    if off_b + rb == i {
                        continue;
                    }
                    let s = normalized_similarity((seg_a, ra), (seg_b, rb), sim);
                    if s >= builder.min_weight {
                        top.push((off_b + rb) as u32, s as f32);
                    }
                }
            }
            Ok(())
        })?;
        for (ra, top) in tops.into_iter().enumerate() {
            top.drain_into((off_a + ra) as u32, &mut edges);
        }
        tracker.release(top_bytes);
        Ok(())
    })?;
    Ok(edges)
}

/// Anchor-routed sweep: gather the anchor rows, route every row to its
/// probed anchors, then scan each row's strided candidate list against
/// ascending corpus segments.
#[allow(clippy::too_many_arguments)]
fn sweep_anchors(
    corpus: &SegmentedCorpus<'_>,
    builder: &GraphBuilder,
    sim: &SimilarityConfig,
    n_anchors: usize,
    probes: usize,
    max_candidates: usize,
    seed: u64,
    tracker: &mut MemTracker,
) -> CmResult<Vec<(u32, u32, f32)>> {
    let n = corpus.total_rows();
    let anchor_ids = anchor_plan(n, n_anchors, seed);

    // Pass 1: materialize the sampled anchor rows into one small table,
    // slot order preserved so routing scores line up with the resident
    // kernel's anchor order.
    let mut anchor_rows: Vec<Option<Vec<cm_featurespace::FeatureValue>>> = vec![None; n_anchors];
    corpus.for_each(tracker, &mut |offset, seg, _| {
        for (slot, &row) in anchor_ids.iter().enumerate() {
            if row >= offset && row < offset + seg.len() {
                anchor_rows[slot] = Some(seg.row(row - offset));
            }
        }
        Ok(())
    })?;
    let mut anchor_table = FeatureTable::new(corpus.schema());
    for (slot, row) in anchor_rows.into_iter().enumerate() {
        let row = row.ok_or_else(|| {
            CmError::new(
                ErrorKind::OutOfBounds,
                "build_graph_sharded",
                format!("anchor slot {slot} (row {}) never streamed", anchor_ids[slot]),
            )
        })?;
        anchor_table.push_row(&row);
    }
    let anchor_bytes = anchor_table.approx_bytes();
    tracker.charge(anchor_bytes, "anchor table")?;

    // Pass 2: route every row to its `probes` most-similar anchors —
    // `route_row` over the same scores the resident kernel computes.
    let mut routes: Vec<Vec<usize>> = Vec::with_capacity(n);
    corpus.for_each(tracker, &mut |_, seg, _| {
        for r in 0..seg.len() {
            let scores: Vec<f64> = (0..n_anchors)
                .map(|slot| normalized_similarity((seg, r), (&anchor_table, slot), sim))
                .collect();
            routes.push(route_row(&scores, probes));
        }
        Ok(())
    })?;
    let route_bytes = nested_bytes(&routes);
    tracker.charge(route_bytes, "anchor routes")?;
    let mut anchor_members: Vec<Vec<u32>> = vec![Vec::new(); n_anchors];
    for (i, route) in routes.iter().enumerate() {
        for &a in route {
            anchor_members[a].push(i as u32);
        }
    }
    let member_bytes = nested_bytes(&anchor_members);
    tracker.charge(member_bytes, "anchor members")?;

    // Pass 3: per query segment, build each row's strided candidate list
    // (sorted ascending — the resident scan order), then consume it with a
    // monotone cursor while sweeping candidate segments in offset order.
    let mut edges = Vec::new();
    corpus.for_each(tracker, &mut |off_a, seg_a, tracker| {
        let mut candidates: Vec<Vec<u32>> = Vec::with_capacity(seg_a.len());
        let mut scratch: Vec<u32> = Vec::new();
        for ra in 0..seg_a.len() {
            scratch.clear();
            for &a in &routes[off_a + ra] {
                scratch.extend_from_slice(&anchor_members[a]);
            }
            scratch.sort_unstable();
            scratch.dedup();
            let stride = candidate_stride(scratch.len(), max_candidates);
            candidates.push(scratch.iter().copied().step_by(stride).collect());
        }
        let cand_bytes = nested_bytes(&candidates)
            + seg_a.len() * ((builder.k + 1) * std::mem::size_of::<(u32, f32)>());
        tracker.charge(cand_bytes, "candidate lists")?;
        let mut tops: Vec<TopK> = (0..seg_a.len()).map(|_| TopK::new(builder.k)).collect();
        let mut cursors: Vec<usize> = vec![0; seg_a.len()];
        corpus.for_each(tracker, &mut |off_b, seg_b, _| {
            let end_b = (off_b + seg_b.len()) as u32;
            for ra in 0..seg_a.len() {
                let list = &candidates[ra];
                let cursor = &mut cursors[ra];
                while *cursor < list.len() && list[*cursor] < end_b {
                    let j = list[*cursor];
                    *cursor += 1;
                    if j as usize == off_a + ra {
                        continue;
                    }
                    let s = normalized_similarity((seg_a, ra), (seg_b, j as usize - off_b), sim);
                    if s >= builder.min_weight {
                        tops[ra].push(j, s as f32);
                    }
                }
            }
            Ok(())
        })?;
        for (ra, top) in tops.into_iter().enumerate() {
            top.drain_into((off_a + ra) as u32, &mut edges);
        }
        tracker.release(cand_bytes);
        Ok(())
    })?;
    tracker.release(member_bytes);
    tracker.release(route_bytes);
    tracker.release(anchor_bytes);
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use cm_featurespace::ModalityKind;
    use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};
    use cm_par::ParConfig;

    use super::*;
    use crate::config::{MemBudget, MemTracker};
    use crate::corpus::StreamSpec;

    fn world() -> World {
        World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct2).scaled(0.02), 7))
    }

    /// Resident table + segmented corpus over the same logical rows.
    fn setup(w: &World, head_rows: usize, tail_rows: usize) -> (FeatureTable, Vec<usize>) {
        let head = w.generate(ModalityKind::Text, head_rows, 21);
        let tail = w.generate(ModalityKind::Image, tail_rows, 22);
        let mut resident = head.table.clone();
        resident.extend_from(&tail.table);
        let columns = (0..resident.schema().len()).collect();
        (resident, columns)
    }

    #[test]
    fn sharded_scale_fit_matches_resident_bitwise() {
        let w = world();
        let head = w.generate(ModalityKind::Text, 60, 21);
        let tail = w.generate(ModalityKind::Image, 90, 22);
        let mut resident = head.table.clone();
        resident.extend_from(&tail.table);
        let columns: Vec<usize> = (0..resident.schema().len()).collect();
        let want = SimilarityConfig::uniform(columns.clone()).fit_scales(&resident);
        for seg_rows in [1usize, 13, 64, 200] {
            let mut corpus = SegmentedCorpus::new(seg_rows);
            corpus.push_head(&head.table);
            corpus.set_stream(StreamSpec {
                world: &w,
                modality: ModalityKind::Image,
                rows: 90,
                seed: 22,
            });
            let mut tracker = MemTracker::new(MemBudget::default());
            let got = fit_scales_sharded(&corpus, &columns, &mut tracker).unwrap();
            assert_eq!(got.columns, want.columns);
            assert_eq!(got.numeric_scales.len(), want.numeric_scales.len());
            for ((c1, s1), (c2, s2)) in got.numeric_scales.iter().zip(&want.numeric_scales) {
                assert_eq!(c1, c2);
                assert_eq!(s1.to_bits(), s2.to_bits(), "seg_rows {seg_rows} col {c1}");
            }
        }
    }

    #[test]
    fn sharded_exact_graph_matches_resident() {
        let w = world();
        let (resident, columns) = setup(&w, 40, 50);
        let sim = SimilarityConfig::uniform(columns).fit_scales(&resident);
        let builder = GraphBuilder::exact(5);
        let want = builder.build_with(&resident, &sim, 3, &ParConfig::threads(2));
        for seg_rows in [1usize, 17, 32, 90] {
            let mut corpus = SegmentedCorpus::new(seg_rows);
            let head = w.generate(ModalityKind::Text, 40, 21);
            corpus.push_head(&head.table);
            corpus.set_stream(StreamSpec {
                world: &w,
                modality: ModalityKind::Image,
                rows: 50,
                seed: 22,
            });
            let mut tracker = MemTracker::new(MemBudget::default());
            let got = build_graph_sharded(&corpus, &builder, &sim, 3, &mut tracker).unwrap();
            assert_eq!(got, want, "seg_rows {seg_rows}");
        }
    }

    #[test]
    fn sharded_anchor_graph_matches_resident() {
        let w = world();
        let (resident, columns) = setup(&w, 120, 240);
        let sim = SimilarityConfig::uniform(columns).fit_scales(&resident);
        let builder = GraphBuilder {
            k: 5,
            method: KnnMethod::Anchors { n_anchors: 24, probes: 3, max_candidates: 64 },
            min_weight: 0.05,
        };
        assert!(!builder.uses_exact(resident.len()), "test must exercise the anchor path");
        let want = builder.build_with(&resident, &sim, 9, &ParConfig::threads(4));
        for seg_rows in [37usize, 128, 360] {
            let mut corpus = SegmentedCorpus::new(seg_rows);
            let head = w.generate(ModalityKind::Text, 120, 21);
            corpus.push_head(&head.table);
            corpus.set_stream(StreamSpec {
                world: &w,
                modality: ModalityKind::Image,
                rows: 240,
                seed: 22,
            });
            let mut tracker = MemTracker::new(MemBudget::default());
            let got = build_graph_sharded(&corpus, &builder, &sim, 9, &mut tracker).unwrap();
            assert_eq!(got, want, "seg_rows {seg_rows}");
            assert!(tracker.peak() > 0);
            assert_eq!(tracker.current(), 0, "all charges released");
        }
    }

    #[test]
    fn empty_corpus_builds_empty_graph() {
        let corpus = SegmentedCorpus::new(8);
        let sim = SimilarityConfig::uniform(vec![0]);
        let mut tracker = MemTracker::new(MemBudget::bytes(1));
        let g =
            build_graph_sharded(&corpus, &GraphBuilder::exact(3), &sim, 0, &mut tracker).unwrap();
        assert_eq!(g.n_edges(), 0);
    }
}
