//@ path: crates/orgsim/src/dataset.rs
// Seeded negative (path scoping): row-wise table access is legal outside
// the hot-path crates — construction and simulation code may keep the
// convenient API.

pub fn f(table: &Table) -> usize {
    let r = table.row(3);
    let v = table.value(r, 0);
    v
}
