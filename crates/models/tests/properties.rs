//! Randomized tests for losses and model behaviour (seeded, in-tree PRNG).

use cm_linalg::rng::{Rng, StdRng};
use cm_linalg::Matrix;
use cm_models::loss::{bce_grad, bce_with_logit, class_balance_weights, mean_bce};
use cm_models::{LogisticConfig, LogisticRegression};

const CASES: u64 = 96;

/// BCE is non-negative, finite, and zero only at perfect confidence.
#[test]
fn bce_is_nonnegative() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBCE ^ case);
        let z = rng.gen_range(-80.0f32..80.0);
        let q = rng.gen_range(0.0f64..1.0);
        let l = bce_with_logit(z, q);
        assert!(l >= -1e-12, "case {case}");
        assert!(l.is_finite(), "case {case}");
    }
}

/// Gradient matches central finite differences.
#[test]
fn bce_grad_matches_finite_difference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x62AD ^ case);
        let z = rng.gen_range(-8.0f32..8.0);
        let q = rng.gen_range(0.0f64..1.0);
        let eps = 1e-3f32;
        let fd = (bce_with_logit(z + eps, q) - bce_with_logit(z - eps, q)) / (2.0 * f64::from(eps));
        assert!((f64::from(bce_grad(z, q)) - fd).abs() < 1e-4, "case {case}");
    }
}

/// BCE is convex in the logit: midpoint below the chord.
#[test]
fn bce_is_convex() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0F ^ case);
        let z1 = rng.gen_range(-20.0f32..20.0);
        let z2 = rng.gen_range(-20.0f32..20.0);
        let q = rng.gen_range(0.0f64..1.0);
        let mid = bce_with_logit((z1 + z2) / 2.0, q);
        let chord = (bce_with_logit(z1, q) + bce_with_logit(z2, q)) / 2.0;
        // In the saturated (affine) regimes mid == chord up to f32
        // rounding of the logit, so the tolerance scales with the loss.
        assert!(mid <= chord + 1e-6 * (1.0 + mid.abs()), "case {case}");
    }
}

/// Class-balance weights equalize total class mass whenever both
/// classes exist.
#[test]
fn class_balance_equalizes_mass() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA1 ^ case);
        let n = rng.gen_range(2..50usize);
        let targets: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let w = class_balance_weights(&targets);
        assert_eq!(w.len(), targets.len(), "case {case}");
        let pos_mass: f64 = w.iter().zip(&targets).filter(|(_, &t)| t >= 0.5).map(|(w, _)| w).sum();
        let neg_mass: f64 = w.iter().zip(&targets).filter(|(_, &t)| t < 0.5).map(|(w, _)| w).sum();
        if pos_mass > 0.0 && neg_mass > 0.0 {
            assert!((pos_mass - neg_mass).abs() < 1e-6 * (pos_mass + neg_mass), "case {case}");
        }
    }
}

/// Zero-weighted samples do not influence the mean loss.
#[test]
fn zero_weight_samples_are_ignored() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0E16 ^ case);
        let n = rng.gen_range(2..20usize);
        let logits: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let targets: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        // Weight only the first sample.
        let mut w = vec![0.0; n];
        w[0] = 1.0;
        let weighted = mean_bce(&logits, &targets, Some(&w));
        let single = bce_with_logit(logits[0], targets[0]);
        assert!((weighted - single).abs() < 1e-12, "case {case}");
    }
}

/// Logistic regression on a constant-label problem predicts that label
/// confidently.
#[test]
fn logistic_fits_constant_labels() {
    // Full training per case is slow; a smaller case count keeps the same
    // coverage the proptest version had in practice.
    for case in 0..16 {
        let mut rng = StdRng::seed_from_u64(0x106 ^ case);
        let n = rng.gen_range(8..24usize);
        let rows: Vec<Vec<f32>> =
            (0..n).map(|_| (0..3).map(|_| rng.gen_range(-2.0f32..2.0)).collect()).collect();
        let positive = rng.gen_bool(0.5);
        let x = Matrix::from_rows(&rows);
        let y = vec![if positive { 1.0 } else { 0.0 }; rows.len()];
        let model = LogisticRegression::fit(
            &x,
            &y,
            None,
            &LogisticConfig { epochs: 200, lr: 0.1, ..LogisticConfig::default() },
        );
        for p in model.predict_proba(&x) {
            if positive {
                assert!(p > 0.6, "case {case}: p = {p}");
            } else {
                assert!(p < 0.4, "case {case}: p = {p}");
            }
        }
    }
}
