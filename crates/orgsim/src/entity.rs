//! Latent entities: the hidden state a data point carries before any
//! modality observes it.

use cm_featurespace::{CatSet, Label};

/// Numeric latents an entity carries. Aggregate-statistic services read
/// these; they stand in for the paper's organization-wide metadata joins
//  (user id -> report counts, URL -> reputation, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct NumericLatents {
    /// How often this entity's author gets reported (drives `user_reports`).
    pub report_propensity: f64,
    /// How quickly the entity's content spreads (drives `share_velocity`).
    pub virality: f64,
    /// Reputation of the linked URL/domain (drives `url_reputation`).
    pub url_reputation: f64,
    /// Quality score of the linked page (drives `page_quality`).
    pub page_quality: f64,
    /// Density of extractable text (drives `ocr_density` on images).
    pub ocr_density: f64,
    /// Age of the linked domain in days (drives `domain_age`; deliberately
    /// label-uninformative, exercising the paper's "no gain" feature case).
    pub domain_age: f64,
    /// Length of the textual content (text-specific `word_count`).
    pub word_count: f64,
}

/// A latent entity. One entity corresponds to one data point of one
/// modality; the modality gap is modeled by sampling *disjoint* entity
/// populations per modality (no shared ids, captions, or links).
#[derive(Debug, Clone)]
pub struct LatentEntity {
    /// Hidden ground-truth label for the task under study.
    pub label: Label,
    /// Behavioral archetype. Positives are a mixture of archetypes; some are
    /// *borderline* (weak categorical signal), which is what label
    /// propagation exists to recover (§4.4). Negatives use archetype
    /// `usize::MAX`.
    pub archetype: usize,
    /// Whether the archetype is a borderline mode.
    pub borderline: bool,
    /// Latent categorical attributes, one [`CatSet`] per attribute space
    /// (topics, objects, keywords, URL categories, ...).
    pub cats: Vec<CatSet>,
    /// Numeric latents.
    pub numerics: NumericLatents,
    /// Latent style vector; modality-specific embedding services observe a
    /// random projection of it. Archetype-clustered, which gives the
    /// propagation graph its signal.
    pub style: Vec<f32>,
}

impl LatentEntity {
    /// Whether the entity is a ground-truth positive.
    pub fn is_positive(&self) -> bool {
        self.label.is_positive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_positive_reflects_label() {
        let e = LatentEntity {
            label: Label::Positive,
            archetype: 0,
            borderline: false,
            cats: vec![],
            numerics: NumericLatents {
                report_propensity: 0.0,
                virality: 0.0,
                url_reputation: 0.0,
                page_quality: 0.0,
                ocr_density: 0.0,
                domain_age: 0.0,
                word_count: 0.0,
            },
            style: vec![],
        };
        assert!(e.is_positive());
    }
}
