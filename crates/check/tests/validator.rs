//! Validator tests: positive paths on well-formed artifacts, and negative
//! fixtures asserting the *exact* violations each corruption produces.

use std::sync::Arc;

use cm_check::{
    check_fusion_plan, check_graph, check_lf_degeneracy, check_table, check_vote_matrix, CheckRule,
    FusionKind, FusionPlan, Violation,
};
use cm_featurespace::{
    CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, ServingMode,
    Vocabulary,
};
use cm_labelmodel::LabelMatrix;
use cm_propagation::SparseGraph;

fn schema() -> Arc<FeatureSchema> {
    Arc::new(FeatureSchema::from_defs(vec![
        FeatureDef::numeric("score", FeatureSet::A, ServingMode::Servable),
        FeatureDef::categorical(
            "topic",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names((0..4).map(|i| format!("t{i}"))),
        ),
        FeatureDef::embedding("emb", 3, FeatureSet::D, ServingMode::Servable),
    ]))
}

fn good_row() -> Vec<FeatureValue> {
    vec![
        FeatureValue::Numeric(0.5),
        FeatureValue::Categorical(CatSet::from_ids(vec![1, 3])),
        FeatureValue::Embedding(vec![0.1, 0.2, 0.3]),
    ]
}

#[test]
fn conforming_table_is_clean() {
    let s = schema();
    let mut t = FeatureTable::new(s.clone());
    for _ in 0..5 {
        t.push_row(&good_row());
    }
    t.push_row(&[FeatureValue::Missing, FeatureValue::Missing, FeatureValue::Missing]);
    assert_eq!(check_table(&t, &s, "t"), Vec::new());
}

#[test]
fn column_count_mismatch_is_exactly_reported() {
    let narrow = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::numeric(
        "score",
        FeatureSet::A,
        ServingMode::Servable,
    )]));
    let mut t = FeatureTable::new(narrow);
    t.push_row(&[FeatureValue::Numeric(1.0)]);
    let violations = check_table(&t, &schema(), "neg.table");
    assert_eq!(
        violations,
        vec![Violation::new(
            CheckRule::SchemaTableMismatch,
            "neg.table",
            "table has 1 columns, registry schema has 3",
        )]
    );
}

#[test]
fn out_of_vocab_id_is_exactly_reported() {
    let s = schema();
    let mut t = FeatureTable::new(s.clone());
    t.push_row(&good_row());
    t.push_row(&[
        FeatureValue::Numeric(0.0),
        FeatureValue::Categorical(CatSet::from_ids(vec![9])),
        FeatureValue::Missing,
    ]);
    let violations = check_table(&t, &s, "neg.table");
    assert_eq!(
        violations,
        vec![Violation::new(
            CheckRule::VocabIndexOutOfBounds,
            "neg.table[col topic, row 1]",
            "id 9 >= vocabulary size 4",
        )]
    );
}

#[test]
fn non_finite_numeric_is_flagged() {
    let s = schema();
    let mut t = FeatureTable::new(s.clone());
    t.push_row(&[FeatureValue::Numeric(f64::NAN), FeatureValue::Missing, FeatureValue::Missing]);
    let violations = check_table(&t, &s, "t");
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, CheckRule::NonFiniteNumeric);
    assert_eq!(violations[0].location, "t[col score, row 0]");
}

#[test]
fn healthy_vote_matrix_is_clean() {
    let names = vec!["a".to_owned(), "b".to_owned()];
    let m = LabelMatrix::from_votes(3, 2, vec![1, 0, -1, 1, 0, -1], names.clone());
    assert_eq!(check_vote_matrix(&m, &names, 3, "votes"), Vec::new());
    assert_eq!(check_lf_degeneracy(&m, "votes"), Vec::new());
}

#[test]
fn constant_lf_is_exactly_reported() {
    let names = vec!["always_pos".to_owned(), "varied".to_owned()];
    let m = LabelMatrix::from_votes(3, 2, vec![1, 1, 1, -1, 1, 0], names);
    let violations = check_lf_degeneracy(&m, "votes");
    assert_eq!(
        violations,
        vec![Violation::new(
            CheckRule::DegenerateLf,
            "votes[lf always_pos]",
            "votes +1 on every row (constant; carries no evidence)",
        )]
    );
}

#[test]
fn all_abstain_lf_is_exactly_reported() {
    let names = vec!["silent".to_owned(), "varied".to_owned()];
    let m = LabelMatrix::from_votes(2, 2, vec![0, 1, 0, -1], names);
    let violations = check_lf_degeneracy(&m, "votes");
    assert_eq!(
        violations,
        vec![Violation::new(
            CheckRule::DegenerateLf,
            "votes[lf silent]",
            "abstains on every row (zero coverage)",
        )]
    );
}

#[test]
fn vote_matrix_shape_mismatches_are_reported() {
    let names = vec!["a".to_owned(), "b".to_owned()];
    let m = LabelMatrix::from_votes(2, 2, vec![1, 0, 0, -1], names.clone());
    // Wrong registry size short-circuits.
    let violations = check_vote_matrix(&m, &["a".to_owned()], 2, "votes");
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, CheckRule::VoteMatrixShape);
    // Wrong row count.
    let violations = check_vote_matrix(&m, &names, 7, "votes");
    assert_eq!(
        violations,
        vec![Violation::new(
            CheckRule::VoteMatrixShape,
            "votes",
            "matrix covers 2 rows, pool has 7",
        )]
    );
    // Wrong LF name.
    let violations = check_vote_matrix(&m, &["a".to_owned(), "z".to_owned()], 2, "votes");
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].location, "votes[lf 1]");
}

#[test]
fn consistent_fusion_plans_are_clean() {
    let early = FusionPlan {
        kind: FusionKind::Early,
        part_dims: vec![24, 24],
        embedding_dims: None,
        projection: None,
    };
    assert_eq!(check_fusion_plan(&early, "early"), Vec::new());
    let intermediate = FusionPlan {
        kind: FusionKind::Intermediate,
        part_dims: vec![24, 10],
        embedding_dims: None,
        projection: None,
    };
    assert_eq!(check_fusion_plan(&intermediate, "mid"), Vec::new());
    let devise = FusionPlan {
        kind: FusionKind::DeVise,
        part_dims: vec![24, 24],
        embedding_dims: Some((16, 12)),
        projection: Some((12, 16)),
    };
    assert_eq!(check_fusion_plan(&devise, "devise"), Vec::new());
}

#[test]
fn wrong_devise_projection_dim_is_exactly_reported() {
    let plan = FusionPlan {
        kind: FusionKind::DeVise,
        part_dims: vec![24, 24],
        embedding_dims: Some((16, 12)),
        projection: Some((12, 8)),
    };
    let violations = check_fusion_plan(&plan, "neg.devise");
    assert_eq!(
        violations,
        vec![Violation::new(
            CheckRule::FusionDimChain,
            "neg.devise[projection]",
            "projection target width 8 != old-model embedding width 16",
        )]
    );
}

#[test]
fn early_fusion_width_mismatch_is_reported() {
    let plan = FusionPlan {
        kind: FusionKind::Early,
        part_dims: vec![24, 30],
        embedding_dims: None,
        projection: None,
    };
    let violations = check_fusion_plan(&plan, "neg.early");
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, CheckRule::FusionDimChain);
    assert_eq!(violations[0].location, "neg.early[part 1]");
}

#[test]
fn symmetric_graph_is_clean() {
    let g = SparseGraph::from_edges(4, &[(0, 1, 0.5), (1, 2, 0.25), (2, 3, 1.0)]);
    assert_eq!(check_graph(&g, "g"), Vec::new());
}

#[test]
fn nan_edge_weight_is_flagged_in_both_directions() {
    let g = SparseGraph::from_edges(3, &[(0, 1, f32::NAN), (1, 2, 0.5)]);
    let violations = check_graph(&g, "g");
    // The CSR stores both directions of the NaN edge.
    assert_eq!(violations.len(), 2);
    assert!(violations.iter().all(|v| v.rule == CheckRule::GraphNonFiniteWeight));
    assert_eq!(violations[0].location, "g[edge 0->1]");
}

#[test]
fn nonpositive_edge_weight_is_flagged() {
    let g = SparseGraph::from_edges(2, &[(0, 1, 0.0)]);
    let violations = check_graph(&g, "g");
    assert_eq!(violations.len(), 2);
    assert!(violations.iter().all(|v| v.rule == CheckRule::GraphInvalidWeight));
}
