//! Incremental curation service: checkpointed crash recovery,
//! backpressure, and degradation-aware serving.
//!
//! `cm-serve` wraps [`cm_pipeline::IncrementalCurator`] in a serving
//! envelope that makes the batch pipeline survivable as a long-running
//! process:
//!
//! - [`queue`] — a bounded admission queue with watermark backpressure:
//!   overload yields a structured [`SheddingReport`], never an OOM or a
//!   panic (`CM_MEM_BUDGET` bounds queued payload bytes).
//! - [`guards`] — per-batch quality guards (coverage, abstain rate,
//!   posterior-entropy delta) that quarantine suspect batches into a
//!   single-retry queue instead of letting a fault burst pollute the
//!   label-model warm chain.
//! - [`snapshot`] — versioned checkpoints of every piece of
//!   arrival-dependent state; a restarted service resumes **bit-identical**
//!   to an uninterrupted run (the `checkpoint-drift` lint confines
//!   checkpoint construction to that module).
//! - [`service`] — the tick loop that wires it all together over the
//!   fault-injecting access layer and the simulated clock, with
//!   crash-injection (`CM_CRASH_AT`) for recovery drills.

pub mod guards;
pub mod queue;
pub mod service;
pub mod snapshot;

pub use guards::{GuardVerdict, QualityGuards, QuarantinedBatch};
pub use queue::{Admission, AdmissionQueue, QueueConfig, QueuedBatch, SheddingReport};
pub use service::{run, CheckpointTickCost, RunOutcome, ServeConfig, ServeReport, ServeTiming};
pub use snapshot::{
    CheckpointFormat, CheckpointStore, CompactionPolicy, PendingWork, ServeTelemetry,
    CHECKPOINT_VERSION, LOG_VERSION,
};
