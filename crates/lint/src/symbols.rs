//! Workspace symbol index: the name-resolution layer under the
//! interprocedural passes.
//!
//! [`SymbolIndex::build`] sweeps every [`FileUnit`] of the workspace and
//! derives, from the token stream alone:
//!
//! - the **module tree**, combining the crate file layout
//!   (`crates/<dir>/src/foo/bar.rs` → module `foo::bar` of crate
//!   `cm_<dir>`) with inline `mod name { … }` blocks;
//! - every **`fn` item** with its exact name-token span, body range,
//!   enclosing `impl`/`trait` type, and `#[cfg(test)]` status;
//! - per-module **`use` imports** (full use-tree syntax: nested groups,
//!   `as` renames, `self` leaves, globs, `crate`/`self`/`super`
//!   normalization) extending the PR 5 per-file alias machinery to the
//!   whole workspace;
//! - **`pub use` re-exports**, resolved to a fixpoint so a call through
//!   a re-exported path lands on the defining function.
//!
//! Resolution is deliberately over-approximate — a lint, not a compiler.
//! Method calls resolve by name with conservative fan-out (every
//! function of that name is a candidate callee); bare calls resolve
//! through the module tree and imports only, so an unresolvable name
//! produces *no* edge rather than a wrong one. The false-positive
//! contract is documented in DESIGN.md §7j: imprecision surfaces as
//! extra call edges, which the effect passes turn into findings a
//! developer can waive — never as silently missing edges over code that
//! actually reaches an effect through a resolvable path.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::context::{self, stmt_end, Code, FileContext};
use crate::lexer::{self, Tok, TokKind};

/// One lexed and structurally analyzed source file of the workspace.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path; drives module derivation, path-scoped
    /// rules, and effect sanctions.
    pub path: PathBuf,
    /// Full token stream (comments included).
    pub toks: Vec<Tok>,
    /// Structural facts from [`context::analyze`].
    pub ctx: FileContext,
}

impl FileUnit {
    /// Lexes and analyzes one source text.
    pub fn parse(path: PathBuf, source: &str) -> Self {
        let toks = lexer::lex(source);
        let ctx = context::analyze(&toks);
        FileUnit { path, toks, ctx }
    }

    pub(crate) fn code(&self) -> Code<'_> {
        Code::new(&self.toks, &self.ctx.code)
    }
}

/// One indexed `fn` item.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Bare function name.
    pub name: String,
    /// Module path within its crate (file layout plus inline `mod`s).
    pub module: Vec<String>,
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Token-stream index of the name identifier (position anchor).
    pub name_tok: usize,
    /// Code-view index range of the body braces, inclusive; `None` for
    /// bodyless signatures (trait requirements).
    pub body: Option<(usize, usize)>,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Enclosing `impl`/`trait` type name, when any.
    pub impl_type: Option<String>,
}

/// The workspace symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Every indexed function, in (file, position) order.
    pub fns: Vec<FnSym>,
    /// Crate ident candidates per file, primary (`cm_<dir>`) first.
    crate_idents: Vec<Vec<String>>,
    /// Module path per file from the file layout alone.
    base_module: Vec<Vec<String>>,
    /// Secondary crate ident → primary (`pipeline` → `cm_pipeline`).
    crate_alias: BTreeMap<String, String>,
    /// Absolute path (primary-crate-qualified, `::`-joined) → fn indices.
    by_abs: BTreeMap<String, Vec<usize>>,
    /// Bare name → fn indices (method fan-out).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (impl type, method name) → fn indices.
    by_impl: BTreeMap<(String, String), Vec<usize>>,
    /// (file, `::`-joined module) → local name → absolute target path.
    imports: BTreeMap<(usize, String), BTreeMap<String, Vec<String>>>,
    /// (file, `::`-joined module) → glob-imported module paths.
    globs: BTreeMap<(usize, String), Vec<Vec<String>>>,
    /// Absolute module path → exported name → absolute target path
    /// (`pub use` re-exports).
    exports: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

/// Keywords that can never head a call expression.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Derives (crate ident candidates, base module path) from a
/// workspace-relative path. `crates/<dir>/src/a/b.rs` → crate
/// `cm_<dir>` (alias `<dir>`), module `a::b`; `lib.rs` and `mod.rs`
/// contribute no segment. Paths outside the layout (corpus fixtures
/// without a `//@ path:` directive) fall back to the file stem as a
/// one-file crate.
fn path_anatomy(path: &Path) -> (Vec<String>, Vec<String>) {
    let comps: Vec<String> =
        path.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    let stem = |name: &str| name.strip_suffix(".rs").unwrap_or(name).to_owned();
    if comps.len() >= 4 && comps[0] == "crates" && comps[2] == "src" {
        let dir = comps[1].replace('-', "_");
        let idents = vec![format!("cm_{dir}"), dir];
        let mut module: Vec<String> = comps[3..comps.len() - 1].to_vec();
        let s = stem(&comps[comps.len() - 1]);
        if s != "lib" && s != "mod" {
            module.push(s);
        }
        (idents, module)
    } else {
        let s = comps.last().map(|c| stem(c)).unwrap_or_default();
        (vec![s], Vec::new())
    }
}

/// One leaf of a parsed use tree: the path and the locally bound name
/// (`None` marks a glob).
struct UseLeaf {
    path: Vec<String>,
    name: Option<String>,
}

/// Scope kinds tracked while sweeping a file's items.
enum ScopeKind {
    Mod(String),
    Type(Option<String>),
}

struct Scope {
    kind: ScopeKind,
    close: usize,
}

impl SymbolIndex {
    /// Builds the index over every file of the workspace.
    pub fn build(units: &[FileUnit]) -> Self {
        let mut sym = SymbolIndex::default();
        for u in units {
            let (idents, base) = path_anatomy(&u.path);
            for alias in idents.iter().skip(1) {
                sym.crate_alias.insert(alias.clone(), idents[0].clone());
            }
            sym.crate_idents.push(idents);
            sym.base_module.push(base);
        }
        for (fi, u) in units.iter().enumerate() {
            sym.scan_file(fi, u);
        }
        for (i, f) in sym.fns.iter().enumerate() {
            let primary = &sym.crate_idents[f.file][0];
            let mut abs = vec![primary.clone()];
            abs.extend(f.module.iter().cloned());
            abs.push(f.name.clone());
            sym.by_abs.entry(abs.join("::")).or_default().push(i);
            sym.by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(ty) = &f.impl_type {
                sym.by_impl.entry((ty.clone(), f.name.clone())).or_default().push(i);
            }
        }
        sym
    }

    /// Sweeps one file: inline `mod`/`impl`/`trait` scopes, `fn` items,
    /// and `use` statements.
    fn scan_file(&mut self, fi: usize, u: &FileUnit) {
        let code = u.code();
        let n = u.ctx.code.len();
        let mut scopes: Vec<Scope> = Vec::new();
        let mut j = 0usize;
        while j < n {
            while scopes.last().is_some_and(|s| j > s.close) {
                scopes.pop();
            }
            let Some(tok) = code.at(j) else { break };
            // Inline module: `mod name { … }`.
            if tok.is_ident("mod")
                && code.at(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
                && code.is_punct(j + 2, '{')
            {
                let close = code.matching_close(j + 2).unwrap_or(n.saturating_sub(1));
                let name = code.at(j + 1).map(|t| t.ident_text().to_owned()).unwrap_or_default();
                scopes.push(Scope { kind: ScopeKind::Mod(name), close });
                j += 3;
                continue;
            }
            // `impl [<…>] [Trait for] Type { … }` / `trait Name { … }`.
            if (tok.is_ident("impl") || tok.is_ident("trait")) && item_position(&code, j) {
                if let Some(open) = find_body_brace(&code, j + 1, n) {
                    let ty = header_type_name(&code, j + 1, open, tok.is_ident("trait"));
                    let close = code.matching_close(open).unwrap_or(n.saturating_sub(1));
                    scopes.push(Scope { kind: ScopeKind::Type(ty), close });
                    j = open + 1;
                    continue;
                }
            }
            // `use` statement (imports; `pub use` also exports).
            if tok.is_ident("use") && item_position(&code, j) {
                let end = stmt_end(&code, j + 1);
                let is_pub = j >= 1
                    && (code.is_ident(j - 1, "pub") || code.is_punct(j.wrapping_sub(1), ')'));
                let module: Vec<String> = self.module_at(fi, &scopes);
                let mut leaves = Vec::new();
                let mut prefix = Vec::new();
                let mut k = j + 1;
                while k < end {
                    let before = prefix.len();
                    k = parse_use_tree(&code, k, end, &mut prefix, &mut leaves);
                    prefix.truncate(before);
                    if code.is_punct(k, ',') {
                        k += 1;
                    }
                }
                self.record_use(fi, &module, is_pub, leaves);
                j = end + 1;
                continue;
            }
            // `fn name(…)` item.
            if tok.is_ident("fn") && code.at(j + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                if let Some(open) = find_paren(&code, j + 2, n) {
                    let close_paren = code.matching_close(open).unwrap_or(open);
                    let mut body = None;
                    let mut q = close_paren + 1;
                    while q < n {
                        if code.is_punct(q, '{') {
                            body = Some((q, code.matching_close(q).unwrap_or(n - 1)));
                            break;
                        }
                        if code.is_punct(q, ';') {
                            break;
                        }
                        q += 1;
                    }
                    let name_tok = u.ctx.code[j + 1];
                    self.fns.push(FnSym {
                        name: code.at(j + 1).map(|t| t.ident_text().to_owned()).unwrap_or_default(),
                        module: self.module_at(fi, &scopes),
                        file: fi,
                        name_tok,
                        body,
                        is_test: u.ctx.test_mask[name_tok],
                        impl_type: scopes
                            .iter()
                            .rev()
                            .find_map(|s| match &s.kind {
                                ScopeKind::Type(t) => Some(t.clone()),
                                ScopeKind::Mod(_) => None,
                            })
                            .flatten(),
                    });
                    j = close_paren + 1;
                    continue;
                }
            }
            j += 1;
        }
    }

    /// The module path at the current scope stack.
    fn module_at(&self, fi: usize, scopes: &[Scope]) -> Vec<String> {
        let mut m = self.base_module[fi].clone();
        for s in scopes {
            if let ScopeKind::Mod(name) = &s.kind {
                m.push(name.clone());
            }
        }
        m
    }

    /// Records the leaves of one `use` statement as imports (and exports
    /// when `pub`).
    fn record_use(&mut self, fi: usize, module: &[String], is_pub: bool, leaves: Vec<UseLeaf>) {
        let primary = self.crate_idents[fi][0].clone();
        let scope_key = (fi, module.join("::"));
        let abs_module = {
            let mut m = vec![primary.clone()];
            m.extend(module.iter().cloned());
            m.join("::")
        };
        for leaf in leaves {
            let mut target = normalize_path(&leaf.path, &primary, module);
            // 2018 uniform paths: `use spanned::x;` with a bare module
            // head resolves from this crate's root. A head that names no
            // workspace crate is qualified with the current crate; truly
            // external heads (std, serde) then resolve to nothing, which
            // is the same dead import either way.
            let known = |h: &String| self.crate_idents.iter().any(|v| v.contains(h));
            if target.first().is_some_and(|h| h != &primary && !known(h)) {
                target.insert(0, primary.clone());
            }
            match leaf.name {
                None => {
                    self.globs.entry(scope_key.clone()).or_default().push(target);
                }
                Some(name) => {
                    self.imports
                        .entry(scope_key.clone())
                        .or_default()
                        .insert(name.clone(), target.clone());
                    if is_pub {
                        self.exports.entry(abs_module.clone()).or_default().insert(name, target);
                    }
                }
            }
        }
    }

    /// Canonicalizes an absolute path: maps secondary crate idents to the
    /// primary and rewrites `pub use` re-export prefixes to a fixpoint
    /// (bounded, so cyclic re-exports terminate).
    pub fn canonicalize(&self, path: &[String]) -> Vec<String> {
        let mut p = path.to_vec();
        for _ in 0..32 {
            if let Some(first) = p.first() {
                if let Some(primary) = self.crate_alias.get(first) {
                    p[0] = primary.clone();
                }
            }
            let mut changed = false;
            for k in (1..p.len()).rev() {
                let module = p[..k].join("::");
                if let Some(exp) = self.exports.get(&module) {
                    if let Some(target) = exp.get(&p[k]) {
                        let mut np = target.clone();
                        np.extend(p[k + 1..].iter().cloned());
                        if np != p {
                            p = np;
                            changed = true;
                            break;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        p
    }

    /// Functions registered under the canonicalized absolute path.
    pub fn lookup_abs(&self, path: &[String]) -> Vec<usize> {
        let p = self.canonicalize(path);
        self.by_abs.get(&p.join("::")).cloned().unwrap_or_default()
    }

    /// Every function with this bare name (conservative method fan-out).
    pub fn fns_named(&self, name: &str) -> Vec<usize> {
        self.by_name.get(name).cloned().unwrap_or_default()
    }

    /// Every `impl`/`trait` method with this name (restricted fan-out for
    /// `Type::method` calls whose type is unresolvable).
    pub fn methods_named(&self, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|v| {
                v.iter().copied().filter(|&i| self.fns[i].impl_type.is_some()).collect::<Vec<_>>()
            })
            .unwrap_or_default()
    }

    /// The methods named `name` in impl blocks of exactly the type `ty` —
    /// the precise resolution for `self.name(…)` receivers, where the
    /// workspace-wide by-name fan-out would smear unrelated impls (e.g. a
    /// std `RangeInclusive::start` hitting a `Stopwatch::start`) into the
    /// call graph.
    pub fn impl_methods(&self, ty: &str, name: &str) -> Vec<usize> {
        self.by_impl.get(&(ty.to_owned(), name.to_owned())).cloned().unwrap_or_default()
    }

    /// Resolves a bare call `name(…)` from the given scope: the module
    /// itself, then its imports and globs, walking up the module chain to
    /// the crate root. Unresolvable names yield no candidates.
    pub fn resolve_bare(&self, file: usize, module: &[String], name: &str) -> Vec<usize> {
        let primary = &self.crate_idents[file][0];
        let mut m = module.to_vec();
        loop {
            let mut abs: Vec<String> = vec![primary.clone()];
            abs.extend(m.iter().cloned());
            abs.push(name.to_owned());
            let v = self.lookup_abs(&abs);
            if !v.is_empty() {
                return v;
            }
            if let Some(map) = self.imports.get(&(file, m.join("::"))) {
                if let Some(target) = map.get(name) {
                    let v = self.lookup_abs(target);
                    if !v.is_empty() {
                        return v;
                    }
                }
            }
            if let Some(gs) = self.globs.get(&(file, m.join("::"))) {
                for g in gs {
                    let mut abs = g.clone();
                    abs.push(name.to_owned());
                    let v = self.lookup_abs(&abs);
                    if !v.is_empty() {
                        return v;
                    }
                }
            }
            if m.is_empty() {
                return Vec::new();
            }
            m.pop();
        }
    }

    /// Resolves a path call `a::b::name(…)` from the given scope:
    /// `Type::method` through the impl index (with `Self` mapped to the
    /// enclosing impl type), then module-tree + import resolution, then —
    /// for an unresolvable capitalized head — conservative method
    /// fan-out.
    pub fn resolve_path(
        &self,
        file: usize,
        module: &[String],
        impl_type: Option<&str>,
        segs: &[String],
    ) -> Vec<usize> {
        if segs.len() < 2 {
            return Vec::new();
        }
        let head = segs[0].as_str();
        if segs.len() == 2 {
            let ty = if head == "Self" { impl_type.unwrap_or(head) } else { head };
            if let Some(v) = self.by_impl.get(&(ty.to_owned(), segs[1].clone())) {
                return v.clone();
            }
        }
        let primary = &self.crate_idents[file][0];
        let mut abs = normalize_path(segs, primary, module);
        if abs.first().map(String::as_str) == Some(head) {
            // Head untouched by crate/self/super normalization: splice an
            // in-scope import binding when one exists.
            let mut m = module.to_vec();
            loop {
                if let Some(target) =
                    self.imports.get(&(file, m.join("::"))).and_then(|map| map.get(head))
                {
                    let mut np = target.clone();
                    np.extend(segs[1..].iter().cloned());
                    abs = np;
                    break;
                }
                if m.is_empty() {
                    break;
                }
                m.pop();
            }
        }
        // No blind `Type::method` → every-method-named fan-out here: a
        // type-qualified path that resolves to neither a module path nor
        // an indexed impl is an external type (`Vec::new`, `String::from`)
        // and external constructors are treated as effect-free — the
        // token bans still catch the named ambient ones directly.
        self.lookup_abs(&abs)
    }

    /// The crate ident candidates of a file (primary first).
    pub fn crate_idents(&self, file: usize) -> &[String] {
        &self.crate_idents[file]
    }

    /// The innermost non-test function whose body contains code-view
    /// index `j` of `file`.
    pub fn enclosing_fn(&self, file: usize, j: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.file != file || f.is_test {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            if j < lo || j > hi {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let (blo, bhi) = self.fns[b].body.unwrap_or((0, usize::MAX));
                    hi - lo < bhi - blo
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }
}

/// True when the token at `j` can start an item (not type/expression
/// position): start of file, after `}`/`;`/`{`/`]`/`)`, or after a
/// visibility/safety qualifier.
fn item_position(code: &Code<'_>, j: usize) -> bool {
    if j == 0 {
        return true;
    }
    let Some(prev) = code.at(j - 1) else { return true };
    prev.is_punct('}')
        || prev.is_punct(';')
        || prev.is_punct('{')
        || prev.is_punct(']')
        || prev.is_punct(')')
        || prev.is_ident("pub")
        || prev.is_ident("unsafe")
        || prev.is_ident("default")
}

/// First `{` at angle-bracket depth zero in `[from, n)`, or `None` if a
/// depth-zero `;` intervenes.
fn find_body_brace(code: &Code<'_>, from: usize, n: usize) -> Option<usize> {
    let mut angle = 0i64;
    for k in from..n {
        let Some(tok) = code.at(k) else { break };
        if tok.is_punct('<') {
            angle += 1;
        } else if tok.is_punct('>') && !code.is_punct(k.wrapping_sub(1), '-') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && tok.is_punct('{') {
            return Some(k);
        } else if angle == 0 && tok.is_punct(';') {
            return None;
        }
    }
    None
}

/// First `(` at angle-bracket depth zero in `[from, n)` — the parameter
/// list opener, skipping `Fn(…)` bounds inside generics.
fn find_paren(code: &Code<'_>, from: usize, n: usize) -> Option<usize> {
    let mut angle = 0i64;
    for k in from..n {
        let Some(tok) = code.at(k) else { break };
        if tok.is_punct('<') {
            angle += 1;
        } else if tok.is_punct('>') && !code.is_punct(k.wrapping_sub(1), '-') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && tok.is_punct('(') {
            return Some(k);
        } else if angle == 0 && (tok.is_punct('{') || tok.is_punct(';')) {
            return None;
        }
    }
    None
}

/// The type name an `impl`/`trait` header binds methods to: the last
/// path segment of the implemented-for type (after `for` when present),
/// or the trait's own name for `trait` blocks.
fn header_type_name(code: &Code<'_>, from: usize, open: usize, is_trait: bool) -> Option<String> {
    let mut k = from;
    // Skip leading generics `<…>`.
    if code.is_punct(k, '<') {
        let mut angle = 0i64;
        while k < open {
            if code.is_punct(k, '<') {
                angle += 1;
            } else if code.is_punct(k, '>') && !code.is_punct(k.wrapping_sub(1), '-') {
                angle -= 1;
                if angle == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    let mut angle = 0i64;
    let mut last: Option<String> = None;
    for q in k..open {
        let Some(tok) = code.at(q) else { break };
        if tok.is_punct('<') {
            angle += 1;
        } else if tok.is_punct('>') && !code.is_punct(q.wrapping_sub(1), '-') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && tok.kind == TokKind::Ident {
            let text = tok.ident_text();
            if text == "for" {
                last = None; // `impl Trait for Type`: the type follows
                continue;
            }
            if matches!(text, "mut" | "dyn" | "const" | "where") {
                continue;
            }
            if is_trait && last.is_some() {
                break; // `trait Name: Bound` — keep the trait's own name
            }
            last = Some(text.to_owned());
        } else if angle == 0 && is_trait && tok.is_punct(':') {
            break;
        }
    }
    last
}

/// Parses one use tree starting at `j` (bounded by `end`); pushes every
/// leaf and returns the index just past the tree.
fn parse_use_tree(
    code: &Code<'_>,
    mut j: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseLeaf>,
) -> usize {
    loop {
        if j >= end {
            return j;
        }
        if code.is_punct(j, '{') {
            let close = code.matching_close(j).unwrap_or(end).min(end);
            let mut k = j + 1;
            while k < close {
                let before = prefix.len();
                k = parse_use_tree(code, k, close, prefix, out);
                prefix.truncate(before);
                if code.is_punct(k, ',') {
                    k += 1;
                }
            }
            return close + 1;
        }
        if code.is_punct(j, '*') {
            out.push(UseLeaf { path: prefix.clone(), name: None });
            return j + 1;
        }
        let Some(tok) = code.at(j) else { return j + 1 };
        if tok.kind == TokKind::Ident {
            let seg = tok.ident_text().to_owned();
            if code.is_punct(j + 1, ':') && code.is_punct(j + 2, ':') {
                prefix.push(seg);
                j += 3;
                continue;
            }
            if seg == "self" && !prefix.is_empty() {
                // `use a::b::{self, …}` binds `b` to the module itself.
                out.push(UseLeaf { path: prefix.clone(), name: prefix.last().cloned() });
                return j + 1;
            }
            if code.is_ident(j + 1, "as")
                && code.at(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let mut path = prefix.clone();
                path.push(seg);
                out.push(UseLeaf { path, name: code.at(j + 2).map(|t| t.ident_text().to_owned()) });
                return j + 3;
            }
            let mut path = prefix.clone();
            path.push(seg.clone());
            out.push(UseLeaf { path, name: Some(seg) });
            return j + 1;
        }
        return j + 1;
    }
}

/// Normalizes a written path against its scope: `crate::` →
/// primary-crate-qualified, `self::`/`super::` resolved against the
/// current module; anything else is taken as already crate-qualified
/// (Rust 2018 extern-path semantics).
fn normalize_path(path: &[String], crate_primary: &str, module: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut rest: &[String] = path;
    match path.first().map(String::as_str) {
        Some("crate") => {
            out.push(crate_primary.to_owned());
            rest = &path[1..];
        }
        Some("self") => {
            out.push(crate_primary.to_owned());
            out.extend(module.iter().cloned());
            rest = &path[1..];
        }
        Some("super") => {
            let mut m = module.to_vec();
            let mut i = 0;
            while path.get(i).is_some_and(|s| s == "super") {
                m.pop();
                i += 1;
            }
            out.push(crate_primary.to_owned());
            out.extend(m);
            rest = &path[i..];
        }
        _ => {}
    }
    out.extend(rest.iter().cloned());
    out
}
