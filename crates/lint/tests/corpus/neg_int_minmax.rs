//@ path: crates/demo/src/lib.rs
// Seeded negative (float-ordering): integer ordering is total already —
// Ord-based sorts, folds, and std::cmp helpers stay silent.

pub fn f(xs: &mut [i64]) -> i64 {
    xs.sort_unstable();
    let hi = xs.iter().copied().max().unwrap_or(0);
    let lo = xs.iter().copied().fold(i64::MAX, i64::min);
    std::cmp::max(hi, lo)
}
