//! Serializable experiment outputs consumed by the bench binaries.

use cm_faults::FaultSummary;
use cm_json::{Json, JsonError, ToJson};

/// One trained-and-evaluated model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEval {
    /// Scenario display name.
    pub scenario: String,
    /// Absolute AUPRC on the image test set.
    pub auprc: f64,
    /// AUPRC relative to the embedding baseline, when computed.
    pub relative_auprc: Option<f64>,
    /// Training rows the model saw.
    pub n_train_rows: usize,
}

impl ToJson for ModelEval {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("auprc", self.auprc.to_json()),
            ("relative_auprc", self.relative_auprc.to_json()),
            ("n_train_rows", self.n_train_rows.to_json()),
        ])
    }
}

fn missing(field: &str) -> JsonError {
    JsonError { message: format!("missing or mistyped field {field:?}"), offset: 0 }
}

impl ModelEval {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            scenario: v
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("scenario"))?
                .to_owned(),
            auprc: v.get("auprc").and_then(Json::as_f64).ok_or_else(|| missing("auprc"))?,
            relative_auprc: match v.get("relative_auprc") {
                None | Some(Json::Null) => None,
                Some(r) => Some(r.as_f64().ok_or_else(|| missing("relative_auprc"))?),
            },
            n_train_rows: v
                .get("n_train_rows")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("n_train_rows"))?,
        })
    }
}

/// Abstain behaviour of one labeling function under (possible) service
/// degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct LfAbstainRates {
    /// LF display name.
    pub name: String,
    /// Fraction of dev (labeled old-modality) rows the LF abstained on.
    pub dev_abstain_rate: f64,
    /// Fraction of unlabeled-pool rows the LF abstained on.
    pub pool_abstain_rate: f64,
    /// Whether the label model dropped the LF for abstaining everywhere.
    pub dropped: bool,
}

impl ToJson for LfAbstainRates {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("dev_abstain_rate", self.dev_abstain_rate.to_json()),
            ("pool_abstain_rate", self.pool_abstain_rate.to_json()),
            ("dropped", self.dropped.to_json()),
        ])
    }
}

impl LfAbstainRates {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: v.get("name").and_then(Json::as_str).ok_or_else(|| missing("name"))?.to_owned(),
            dev_abstain_rate: v
                .get("dev_abstain_rate")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("dev_abstain_rate"))?,
            pool_abstain_rate: v
                .get("pool_abstain_rate")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("pool_abstain_rate"))?,
            dropped: v.get("dropped").and_then(Json::as_bool).ok_or_else(|| missing("dropped"))?,
        })
    }
}

/// Serving-mode degradation telemetry: how the incremental curation
/// service's robustness envelope (admission control, quality guards,
/// quarantine) behaved over a run. Attached to [`DegradationReport`] by
/// `cm-serve`; one-shot batch runs leave it `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// `"steady"` when every batch was ingested on first offer;
    /// `"degraded"` once anything was quarantined, shed, or dropped.
    pub mode: String,
    /// Arrival batches ingested into the curator.
    pub batches_ingested: usize,
    /// Batches the quality guards quarantined into the retry queue.
    pub batches_quarantined: usize,
    /// Quarantined batches that passed on retry and were ingested.
    pub batches_recovered: usize,
    /// Quarantined batches dropped after failing their retry.
    pub batches_dropped: usize,
    /// Rows lost to admission-queue shedding.
    pub rows_shed: usize,
    /// Arrival batches deferred by the watermark admission controller.
    pub deferrals: usize,
    /// Peak admission-queue depth observed.
    pub queue_peak_depth: usize,
}

impl ToJson for ServingReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mode", self.mode.to_json()),
            ("batches_ingested", self.batches_ingested.to_json()),
            ("batches_quarantined", self.batches_quarantined.to_json()),
            ("batches_recovered", self.batches_recovered.to_json()),
            ("batches_dropped", self.batches_dropped.to_json()),
            ("rows_shed", self.rows_shed.to_json()),
            ("deferrals", self.deferrals.to_json()),
            ("queue_peak_depth", self.queue_peak_depth.to_json()),
        ])
    }
}

impl ServingReport {
    /// Parses a report previously emitted by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let num = |field: &str| -> Result<usize, JsonError> {
            v.get(field).and_then(Json::as_usize).ok_or_else(|| missing(field))
        };
        Ok(Self {
            mode: v.get("mode").and_then(Json::as_str).ok_or_else(|| missing("mode"))?.to_owned(),
            batches_ingested: num("batches_ingested")?,
            batches_quarantined: num("batches_quarantined")?,
            batches_recovered: num("batches_recovered")?,
            batches_dropped: num("batches_dropped")?,
            rows_shed: num("rows_shed")?,
            deferrals: num("deferrals")?,
            queue_peak_depth: num("queue_peak_depth")?,
        })
    }
}

/// How a run degraded under injected service faults: which services were
/// lost, which LFs stopped voting, and what coverage survived. Emitted by
/// curation even on clean runs (then everything is empty / zero-delta), so
/// downstream consumers never have to guess whether degradation was
/// *measured* or merely *absent from the report*.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Seed of the fault plan (`0` when faults were disabled).
    pub fault_seed: u64,
    /// Services whose circuit breaker tripped during featurization.
    pub tripped_services: Vec<String>,
    /// LFs the label model dropped because they abstained on every dev or
    /// every pool row (an all-abstain column carries no evidence but still
    /// shifts anchored posteriors — dropping it is the safe default).
    pub dropped_lfs: Vec<String>,
    /// Fraction of pool rows covered by at least one surviving LF.
    pub pool_coverage: f64,
    /// Per-LF abstain rates on dev vs pool (the pool-minus-dev delta is the
    /// degradation signal: faults only perturb pool/test featurization).
    pub lf_abstain: Vec<LfAbstainRates>,
    /// Per-service fault statistics, when a fault plan was active.
    pub faults: Option<FaultSummary>,
    /// Serving-mode telemetry, when the run came through `cm-serve`.
    pub serving: Option<ServingReport>,
}

impl DegradationReport {
    /// A clean-run report: no faults, no drops, full coverage telemetry
    /// still attached by curation.
    pub fn clean() -> Self {
        Self {
            fault_seed: 0,
            tripped_services: Vec::new(),
            dropped_lfs: Vec::new(),
            pool_coverage: 0.0,
            lf_abstain: Vec::new(),
            faults: None,
            serving: None,
        }
    }

    /// Whether anything actually degraded (services tripped or LFs dropped).
    pub fn is_degraded(&self) -> bool {
        !self.tripped_services.is_empty() || !self.dropped_lfs.is_empty()
    }
}

impl ToJson for DegradationReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fault_seed", self.fault_seed.to_json()),
            ("tripped_services", self.tripped_services.to_json()),
            ("dropped_lfs", self.dropped_lfs.to_json()),
            ("pool_coverage", self.pool_coverage.to_json()),
            ("lf_abstain", self.lf_abstain.to_json()),
            ("faults", self.faults.as_ref().map_or(Json::Null, ToJson::to_json)),
            ("serving", self.serving.as_ref().map_or(Json::Null, ToJson::to_json)),
        ])
    }
}

impl DegradationReport {
    /// Parses a report previously emitted by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let strings = |field: &str| -> Result<Vec<String>, JsonError> {
            v.get(field)
                .and_then(Json::as_arr)
                .ok_or_else(|| missing(field))?
                .iter()
                .map(|s| s.as_str().map(str::to_owned).ok_or_else(|| missing(field)))
                .collect()
        };
        let faults =
            match v.get("faults") {
                None | Some(Json::Null) => None,
                Some(f) => Some(FaultSummary::from_json(f).map_err(|e| JsonError {
                    message: format!("bad faults field: {e}"),
                    offset: 0,
                })?),
            };
        // Absent on every report written before the serving layer existed.
        let serving = match v.get("serving") {
            None | Some(Json::Null) => None,
            Some(s) => Some(ServingReport::from_json(s)?),
        };
        Ok(Self {
            fault_seed: v
                .get("fault_seed")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("fault_seed"))? as u64,
            tripped_services: strings("tripped_services")?,
            dropped_lfs: strings("dropped_lfs")?,
            pool_coverage: v
                .get("pool_coverage")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("pool_coverage"))?,
            lf_abstain: v
                .get("lf_abstain")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("lf_abstain"))?
                .iter()
                .map(LfAbstainRates::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            faults,
            serving,
        })
    }
}

/// A group of evaluations for one task (one table row / figure panel).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Task display name (e.g. `"CT 1"`).
    pub task: String,
    /// Baseline absolute AUPRC all relative values divide by.
    pub baseline_auprc: f64,
    /// Evaluations.
    pub rows: Vec<ModelEval>,
    /// Degradation telemetry from the curation step, when recorded.
    pub degradation: Option<DegradationReport>,
}

impl ToJson for ScenarioReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("baseline_auprc", self.baseline_auprc.to_json()),
            ("rows", self.rows.to_json()),
            ("degradation", self.degradation.as_ref().map_or(Json::Null, ToJson::to_json)),
        ])
    }
}

impl ScenarioReport {
    /// Parses a report previously emitted by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let rows = v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("rows"))?
            .iter()
            .map(ModelEval::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let degradation = match v.get("degradation") {
            None | Some(Json::Null) => None,
            Some(d) => Some(DegradationReport::from_json(d)?),
        };
        Ok(Self {
            task: v.get("task").and_then(Json::as_str).ok_or_else(|| missing("task"))?.to_owned(),
            baseline_auprc: v
                .get("baseline_auprc")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("baseline_auprc"))?,
            rows,
            degradation,
        })
    }

    /// Renders a compact fixed-width table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{}  (baseline AUPRC {:.4})\n{:<42} {:>8} {:>9} {:>9}\n",
            self.task, self.baseline_auprc, "scenario", "AUPRC", "relative", "n_train"
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<42} {:>8.4} {:>9} {:>9}\n",
                row.scenario,
                row.auprc,
                row.relative_auprc.map_or_else(|| "-".to_owned(), |r| format!("{r:.2}x")),
                row.n_train_rows
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows() {
        let report = ScenarioReport {
            task: "CT 1".into(),
            baseline_auprc: 0.25,
            rows: vec![
                ModelEval {
                    scenario: "cross-modal".into(),
                    auprc: 0.38,
                    relative_auprc: Some(1.52),
                    n_train_rows: 25_000,
                },
                ModelEval {
                    scenario: "text-only".into(),
                    auprc: 0.28,
                    relative_auprc: None,
                    n_train_rows: 18_000,
                },
            ],
            degradation: None,
        };
        let t = report.to_table();
        assert!(t.contains("CT 1"));
        assert!(t.contains("1.52x"));
        assert!(t.contains("text-only"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = ScenarioReport {
            task: "CT 2".into(),
            baseline_auprc: 0.1,
            rows: vec![ModelEval {
                scenario: "fusion".into(),
                auprc: 0.31,
                relative_auprc: None,
                n_train_rows: 12,
            }],
            degradation: None,
        };
        let json = report.to_json().to_string_pretty();
        let back = ScenarioReport::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn degradation_report_round_trips_through_json() {
        let report = ScenarioReport {
            task: "CT 3".into(),
            baseline_auprc: 0.2,
            rows: Vec::new(),
            degradation: Some(DegradationReport {
                fault_seed: 7,
                tripped_services: vec!["topics".into()],
                dropped_lfs: vec!["topics:4".into(), "label_propagation".into()],
                pool_coverage: 0.41,
                lf_abstain: vec![LfAbstainRates {
                    name: "topics:4".into(),
                    dev_abstain_rate: 0.3,
                    pool_abstain_rate: 1.0,
                    dropped: true,
                }],
                faults: None,
                serving: Some(ServingReport {
                    mode: "degraded".into(),
                    batches_ingested: 9,
                    batches_quarantined: 2,
                    batches_recovered: 1,
                    batches_dropped: 1,
                    rows_shed: 37,
                    deferrals: 3,
                    queue_peak_depth: 4,
                }),
            }),
        };
        let json = report.to_json().to_string_pretty();
        let back = ScenarioReport::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(report, back);
        let deg = back.degradation.unwrap();
        assert!(deg.is_degraded());
        assert_eq!(deg.dropped_lfs.len(), 2);
        assert!(!DegradationReport::clean().is_degraded());
    }

    #[test]
    fn degradation_reports_without_serving_field_still_parse() {
        // Reports written before the serving layer lack the field; they
        // must keep parsing, and absence must read as `None`.
        let v = Json::parse(
            r#"{"fault_seed": 0, "tripped_services": [], "dropped_lfs": [],
                "pool_coverage": 0.5, "lf_abstain": []}"#,
        )
        .unwrap();
        let report = DegradationReport::from_json(&v).unwrap();
        assert!(report.serving.is_none());
    }

    #[test]
    fn reports_without_degradation_field_still_parse() {
        // Pre-fault-layer reports lack the field entirely; parsing must
        // stay tolerant so archived bench outputs remain readable.
        let v = Json::parse(r#"{"task": "CT 1", "baseline_auprc": 0.2, "rows": []}"#).unwrap();
        let report = ScenarioReport::from_json(&v).unwrap();
        assert!(report.degradation.is_none());
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let v = Json::parse(r#"{"task": "CT 1", "rows": []}"#).unwrap();
        assert!(ScenarioReport::from_json(&v).is_err());
    }
}
