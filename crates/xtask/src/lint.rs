//! Layer 1 of the static-analysis gate: a self-contained line/token
//! scanner over workspace `.rs` sources.
//!
//! Bans panicking escape hatches (`.unwrap()`, `.expect(...)`, `panic!`,
//! `todo!`, `unimplemented!`), `unsafe`, debug output (`dbg!`,
//! `println!`; `eprintln!` stays legal for diagnostics), and raw threading
//! (`thread::spawn`, `thread::scope` — all parallelism goes through
//! `cm-par`, which owns determinism and panic capture; `crates/par` itself
//! is exempt), and wall-clock reads (`Instant::now()`, `SystemTime::now()`
//! — library timing goes through `cm-faults`' `Stopwatch`/`SimClock` so
//! fault scenarios stay deterministic; the `Stopwatch` internals carry the
//! waiver pragma) in **library-crate non-test code**. Tests, benches,
//! examples, binary targets, and `#[cfg(test)]` blocks are exempt:
//! panicking on a violated expectation is exactly right there. A finding
//! can be waived in place with `// lint: allow(<rule>)` on the same line
//! or the line above.
//!
//! The scanner is deliberately token-level, not a full parser: it strips
//! comments and string literals per line, tracks `#[cfg(test)]` regions by
//! brace counting, and then looks for banned tokens at identifier
//! boundaries (so `.unwrap_or_default()` and `eprintln!` never match).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Rules the scanner enforces. `matches` must respect identifier
/// boundaries itself; the scanner hands it comment- and string-stripped
/// code.
const RULES: &[Rule] = &[
    Rule { name: "unwrap", check: |code| finds_method(code, "unwrap") },
    Rule { name: "expect", check: |code| finds_method(code, "expect") },
    Rule { name: "panic", check: |code| finds_macro(code, "panic") },
    Rule { name: "todo", check: |code| finds_macro(code, "todo") },
    Rule { name: "unimplemented", check: |code| finds_macro(code, "unimplemented") },
    Rule { name: "unsafe", check: |code| finds_word(code, "unsafe") },
    Rule { name: "dbg", check: |code| finds_macro(code, "dbg") },
    Rule { name: "println", check: |code| finds_macro(code, "println") },
    Rule { name: "thread-spawn", check: |code| finds_word(code, "thread::spawn") },
    Rule { name: "thread-scope", check: |code| finds_word(code, "thread::scope") },
    Rule { name: "instant-now", check: |code| finds_word(code, "Instant::now") },
    Rule { name: "systemtime-now", check: |code| finds_word(code, "SystemTime::now") },
    Rule { name: "table-row", check: |code| finds_receiver_method(code, "table", "row") },
    Rule { name: "table-value", check: |code| finds_receiver_method(code, "table", "value") },
];

/// Rules that do not apply inside `crates/par`: the substrate is the one
/// place allowed to touch `std::thread` directly.
const PAR_ONLY_RULES: &[&str] = &["thread-spawn", "thread-scope"];

/// Rules that apply **only** inside the hot-path library crates, where
/// per-row `FeatureTable::row` / `FeatureTable::value` access (which
/// allocates and dispatches through the schema per cell) must go through
/// `FrozenTable` columnar views instead. Other crates — construction,
/// simulation, I/O — may keep the convenient row-wise API.
const HOT_PATH_ONLY_RULES: &[&str] = &["table-row", "table-value"];

/// The crates whose library code sits on the per-pair / per-row kernels:
/// similarity + graph construction, itemset mining, and LF application.
const HOT_PATH_CRATES: &[&str] =
    &["crates/featurespace", "crates/propagation", "crates/mining", "crates/labelmodel"];

/// One lint rule: a stable name (used by the allow pragma) plus a matcher
/// over stripped code.
struct Rule {
    name: &'static str,
    check: fn(&str) -> bool,
}

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `"unwrap"`.
    pub rule: &'static str,
    /// Source file.
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.snippet)
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `code` calls `.name(` (boundary-checked, so `.unwrap_or*`,
/// `.unwrap_err`, and `.expect_err` do not match `unwrap`/`expect`).
fn finds_method(code: &str, name: &str) -> bool {
    let needle = format!(".{name}");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let end = from + pos + needle.len();
        let next_ident = code[end..].chars().next().is_some_and(is_ident);
        let then_call = code[end..].trim_start().starts_with('(');
        if !next_ident && then_call {
            return true;
        }
        from = end;
    }
    false
}

/// True when `code` invokes the macro `name!` (boundary-checked on the
/// left, so `eprintln!` never matches `println`).
fn finds_macro(code: &str, name: &str) -> bool {
    let needle = format!("{name}!");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let at = from + pos;
        let prev_ident = code[..at].chars().next_back().is_some_and(is_ident);
        if !prev_ident {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// True when `code` calls `.method(` on a receiver identifier named
/// `recv` (boundary-checked on both sides, so `ftable.row(`,
/// `table.rows(`, and `table().row(` never match).
fn finds_receiver_method(code: &str, recv: &str, method: &str) -> bool {
    let needle = format!("{recv}.{method}");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let at = from + pos;
        let end = at + needle.len();
        let prev_ident = code[..at].chars().next_back().is_some_and(is_ident);
        let next_ident = code[end..].chars().next().is_some_and(is_ident);
        let then_call = code[end..].trim_start().starts_with('(');
        if !prev_ident && !next_ident && then_call {
            return true;
        }
        from = end;
    }
    false
}

/// True when `code` contains the bare word `name`.
fn finds_word(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let at = from + pos;
        let end = at + name.len();
        let prev_ident = code[..at].chars().next_back().is_some_and(is_ident);
        let next_ident = code[end..].chars().next().is_some_and(is_ident);
        if !prev_ident && !next_ident {
            return true;
        }
        from = end;
    }
    false
}

/// Splits a source line into (code, comment) at the first `//` that is
/// not inside a string literal, and blanks out string/char literal
/// contents in the code half so banned tokens inside strings never match.
fn strip_line(line: &str) -> (String, &str) {
    let bytes = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '"' => {
                // Blank the string literal's body.
                code.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] as char {
                        '\\' => i += 2,
                        '"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. A lifetime has an identifier
                // char right after the quote and no closing quote nearby;
                // just copy it through — char literals are too short to
                // hold a banned token anyway.
                code.push('\'');
                i += 1;
                if i < bytes.len() && bytes[i] as char == '\\' {
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] as char == '\'' {
                    i += 2;
                    code.push('\'');
                } else {
                    continue;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] as char == '/' => {
                return (code, &line[i..]);
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, "")
}

/// Parses rule names out of a `// lint: allow(rule1, rule2)` pragma.
fn allow_pragma(comment: &str) -> Vec<String> {
    let Some(idx) = comment.find("lint: allow(") else {
        return Vec::new();
    };
    let rest = &comment[idx + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close].split(',').map(|s| s.trim().to_owned()).collect()
}

fn net_braces(code: &str) -> i64 {
    let mut net = 0i64;
    for c in code.chars() {
        match c {
            '{' => net += 1,
            '}' => net -= 1,
            _ => {}
        }
    }
    net
}

/// Scans one library source text; pure so the self-tests can feed it
/// fixtures. `file` is only used to label findings.
pub fn lint_source(source: &str, file: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_test_block = false;
    let mut test_depth = 0i64;
    // Set when `#[cfg(test)]` was seen but its item's `{` has not.
    let mut pending_test_item = false;
    let mut allowed_next: Vec<String> = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let (code, comment) = strip_line(line);
        let mut allowed = std::mem::take(&mut allowed_next);
        allowed.extend(allow_pragma(comment));
        if code.trim().is_empty() && !allowed.is_empty() {
            // Comment-only pragma line: applies to the next line.
            allowed_next = allowed;
            continue;
        }
        if in_test_block {
            test_depth += net_braces(&code);
            if test_depth <= 0 {
                in_test_block = false;
            }
            continue;
        }
        if pending_test_item {
            let net = net_braces(&code);
            if net > 0 {
                in_test_block = true;
                test_depth = net;
                pending_test_item = false;
            } else if code.contains(';') {
                // `#[cfg(test)] mod tests;` — the body lives elsewhere.
                pending_test_item = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            let net = net_braces(&code);
            if net > 0 {
                in_test_block = true;
                test_depth = net;
            } else {
                pending_test_item = true;
            }
            continue;
        }
        for rule in RULES {
            if (rule.check)(&code) && !allowed.iter().any(|a| a == rule.name) {
                findings.push(Finding {
                    rule: rule.name,
                    file: file.to_path_buf(),
                    line: idx + 1,
                    snippet: line.trim().to_owned(),
                });
            }
        }
    }
    findings
}

/// True when `path` belongs to a zone where panicking is idiomatic:
/// tests, benches, examples, or binary targets.
fn is_exempt_path(path: &Path) -> bool {
    let mut comps = path.components().peekable();
    while let Some(c) = comps.next() {
        let name = c.as_os_str().to_string_lossy();
        if name == "tests" || name == "benches" || name == "examples" {
            return true;
        }
        if name == "src" && comps.peek().is_some_and(|n| n.as_os_str() == "bin") {
            return true;
        }
        if name == "src" && comps.peek().is_some_and(|n| n.as_os_str() == "main.rs") {
            return true;
        }
    }
    false
}

/// Collects the workspace `.rs` files the lint applies to: everything
/// under `crates/` that is not in an exempt zone. Crates without a
/// `src/lib.rs` are binary crates and fully exempt.
fn collect_lint_targets(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates) else {
        return out;
    };
    let mut crate_dirs: Vec<PathBuf> =
        entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        if !dir.join("src/lib.rs").exists() {
            continue;
        }
        let mut stack = vec![dir.join("src")];
        while let Some(d) = stack.pop() {
            let Ok(entries) = fs::read_dir(&d) else { continue };
            let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
            paths.sort();
            for p in paths {
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let rel = p.strip_prefix(root).unwrap_or(&p);
                    if !is_exempt_path(rel) {
                        out.push(p);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Runs the lint over the workspace rooted at `root`; returns all
/// findings (empty means the gate passes).
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in collect_lint_targets(root) {
        match fs::read_to_string(&path) {
            Ok(source) => {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                findings.extend(lint_source(&source, &rel));
            }
            Err(e) => eprintln!("lint: skipping unreadable {}: {e}", path.display()),
        }
    }
    findings.retain(|f| !(f.file.starts_with("crates/par") && PAR_ONLY_RULES.contains(&f.rule)));
    findings.retain(|f| {
        !HOT_PATH_ONLY_RULES.contains(&f.rule)
            || HOT_PATH_CRATES.iter().any(|c| f.file.starts_with(c))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(source: &str) -> Vec<&'static str> {
        lint_source(source, Path::new("fixture.rs")).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_each_banned_token() {
        assert_eq!(rules_hit("let x = y.unwrap();"), vec!["unwrap"]);
        assert_eq!(rules_hit("let x = y.expect(\"boom\");"), vec!["expect"]);
        assert_eq!(rules_hit("panic!(\"no\");"), vec!["panic"]);
        assert_eq!(rules_hit("todo!()"), vec!["todo"]);
        assert_eq!(rules_hit("unimplemented!()"), vec!["unimplemented"]);
        assert_eq!(rules_hit("unsafe { *p }"), vec!["unsafe"]);
        assert_eq!(rules_hit("dbg!(x);"), vec!["dbg"]);
        assert_eq!(rules_hit("println!(\"hi\");"), vec!["println"]);
        assert_eq!(rules_hit("std::thread::spawn(move || work());"), vec!["thread-spawn"]);
        assert_eq!(rules_hit("thread::scope(|s| { s.spawn(f); });"), vec!["thread-scope"]);
        assert_eq!(rules_hit("let t = std::time::Instant::now();"), vec!["instant-now"]);
        assert_eq!(rules_hit("let t = Instant::now();"), vec!["instant-now"]);
        assert_eq!(rules_hit("let t = SystemTime::now();"), vec!["systemtime-now"]);
    }

    #[test]
    fn clock_rules_are_pragma_waivable() {
        assert!(rules_hit("let t = Instant::now(); // lint: allow(instant-now)").is_empty());
        assert!(rules_hit("// lint: allow(systemtime-now)\nlet t = SystemTime::now();").is_empty());
        // Unrelated identifiers sharing the suffix never match.
        assert!(rules_hit("let t = MyInstant::now_ish();").is_empty());
    }

    #[test]
    fn fallible_siblings_do_not_match() {
        assert!(rules_hit("let x = y.unwrap_or(0);").is_empty());
        assert!(rules_hit("let x = y.unwrap_or_else(|| 0);").is_empty());
        assert!(rules_hit("let x = y.unwrap_or_default();").is_empty());
        assert!(rules_hit("let e = y.unwrap_err();").is_empty());
        assert!(rules_hit("let e = y.expect_err(\"want err\");").is_empty());
        assert!(rules_hit("eprintln!(\"diagnostic\");").is_empty());
        assert!(rules_hit("core::panicking();").is_empty());
        assert!(rules_hit("my_thread::spawn(f);").is_empty());
        assert!(rules_hit("let spawned = pool.spawn(f);").is_empty());
    }

    #[test]
    fn thread_rules_are_pragma_waivable() {
        assert!(rules_hit("std::thread::spawn(f); // lint: allow(thread-spawn)").is_empty());
    }

    #[test]
    fn table_row_access_is_flagged_and_waivable() {
        assert_eq!(rules_hit("let r = table.row(i);"), vec!["table-row"]);
        assert_eq!(rules_hit("let v = table.value(r, c);"), vec!["table-value"]);
        assert_eq!(rules_hit("let r = self.table.row(i);"), vec!["table-row"]);
        // Boundary checks: different receiver, different method, or a
        // call-producing receiver never match.
        assert!(rules_hit("let r = ftable.row(i);").is_empty());
        assert!(rules_hit("let r = table.rows();").is_empty());
        assert!(rules_hit("let r = frozen.table().row(i);").is_empty());
        assert!(rules_hit("let r = table.row_count;").is_empty());
        // And the pragma waives it in place.
        assert!(rules_hit("let r = table.row(i); // lint: allow(table-row)").is_empty());
    }

    #[test]
    fn table_rules_apply_only_to_hot_path_crates() {
        let hot = Finding {
            rule: "table-row",
            file: PathBuf::from("crates/mining/src/apriori.rs"),
            line: 1,
            snippet: String::new(),
        };
        let cold = Finding { file: PathBuf::from("crates/orgsim/src/dataset.rs"), ..hot.clone() };
        let in_scope = |f: &Finding| {
            !HOT_PATH_ONLY_RULES.contains(&f.rule)
                || HOT_PATH_CRATES.iter().any(|c| f.file.starts_with(c))
        };
        assert!(in_scope(&hot));
        assert!(!in_scope(&cold));
    }

    #[test]
    fn strings_and_comments_do_not_match() {
        assert!(rules_hit("let s = \"call .unwrap() later\";").is_empty());
        assert!(rules_hit("// the docs mention panic!(...) here").is_empty());
        assert!(rules_hit("let url = \"https://x\"; // .expect( nothing").is_empty());
    }

    #[test]
    fn allow_pragma_waives_same_line_and_next_line() {
        assert!(rules_hit("let x = y.unwrap(); // lint: allow(unwrap)").is_empty());
        assert!(rules_hit("// lint: allow(panic)\npanic!(\"invariant\");").is_empty());
        // The waiver is rule-specific.
        assert_eq!(rules_hit("let x = y.unwrap(); // lint: allow(expect)"), vec!["unwrap"]);
        // And only covers one line.
        assert_eq!(
            rules_hit("// lint: allow(unwrap)\nlet a = b.unwrap();\nlet c = d.unwrap();"),
            vec!["unwrap"]
        );
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let source = "\
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = Some(1).unwrap();
        panic!(\"fine in tests\");
    }
}

pub fn after_tests(v: Option<u32>) -> u32 {
    v.unwrap()
}
";
        let findings = lint_source(source, Path::new("fixture.rs"));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unwrap");
        assert_eq!(findings[0].line, 13);
    }

    #[test]
    fn exempt_paths() {
        assert!(is_exempt_path(Path::new("crates/foo/tests/properties.rs")));
        assert!(is_exempt_path(Path::new("crates/foo/benches/b.rs")));
        assert!(is_exempt_path(Path::new("crates/foo/src/bin/tool.rs")));
        assert!(is_exempt_path(Path::new("examples/quickstart.rs")));
        assert!(!is_exempt_path(Path::new("crates/foo/src/lib.rs")));
        assert!(!is_exempt_path(Path::new("crates/foo/src/inner/mod.rs")));
    }

    #[test]
    fn seeded_violation_fixture_is_fully_caught() {
        // A little library file with one of everything; the scanner must
        // find all eight rules, in order.
        let source = "\
pub fn f(v: Option<u32>) -> u32 {
    println!(\"starting\");
    dbg!(&v);
    let w = v.unwrap();
    let x = v.expect(\"must exist\");
    if w != x { panic!(\"mismatch\") }
    unsafe { std::hint::unreachable_unchecked() }
    todo!();
    unimplemented!()
}
";
        let mut rules = rules_hit(source);
        rules.sort_unstable();
        assert_eq!(
            rules,
            vec!["dbg", "expect", "panic", "println", "todo", "unimplemented", "unsafe", "unwrap"]
        );
    }
}
