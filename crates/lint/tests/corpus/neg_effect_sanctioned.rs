//@ path: crates/serve/src/snapshot.rs
//! Negative: filesystem access inside the sanctioned snapshot module.
//! The sanction comes from specs/lint_effects.json, not from code.

use std::fs;

pub fn persist(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes)
}

pub fn restore(path: &str) -> std::io::Result<Vec<u8>> {
    fs::read(path)
}
