//! Integration of the three fusion strategies over world-generated data
//! (crates: orgsim, pipeline, fusion, models, eval).

use cross_modal::prelude::*;

fn setup(seed: u64) -> (TaskData, CurationOutput) {
    let data = TaskData::generate(TaskConfig::paper(TaskId::Ct2).scaled(0.04), seed, Some(400));
    let curation = curate(&data, &CurationConfig::default());
    (data, curation)
}

#[test]
fn all_strategies_produce_valid_models() {
    let (data, curation) = setup(3);
    let runner = ScenarioRunner {
        data: &data,
        model: ModelKind::Mlp { hidden: vec![12] },
        train: TrainConfig { epochs: 6, patience: None, ..TrainConfig::default() },
    };
    let mut results = Vec::new();
    for strategy in [FusionStrategy::Early, FusionStrategy::Intermediate, FusionStrategy::DeVise] {
        let mut s = Scenario::cross_modal(&FeatureSet::SHARED);
        s.strategy = strategy;
        s.name = format!("{strategy:?}");
        let eval = runner.run(&s, Some(&curation)).unwrap();
        assert!(eval.auprc.is_finite() && eval.auprc >= 0.0);
        results.push((format!("{strategy:?}"), eval.auprc));
    }
    // All should beat random ranking (positive rate ~0.09) at least 2x.
    for (name, ap) in &results {
        assert!(*ap > 0.18, "{name} AUPRC {ap} is near chance");
    }
}

#[test]
fn early_fusion_is_competitive_with_alternatives() {
    // §6.6: early fusion wins on average. A single small-scale seed only
    // supports a weaker claim: early fusion is within noise of the best.
    let (data, curation) = setup(7);
    let runner = ScenarioRunner {
        data: &data,
        model: ModelKind::Mlp { hidden: vec![12] },
        train: TrainConfig { epochs: 8, patience: None, ..TrainConfig::default() },
    };
    let ap = |strategy: FusionStrategy| {
        let mut s = Scenario::cross_modal(&FeatureSet::SHARED);
        s.strategy = strategy;
        runner.run(&s, Some(&curation)).unwrap().auprc
    };
    let early = ap(FusionStrategy::Early);
    let inter = ap(FusionStrategy::Intermediate);
    let devise = ap(FusionStrategy::DeVise);
    assert!(
        early >= inter.max(devise) * 0.8,
        "early {early:.3} vs intermediate {inter:.3} / devise {devise:.3}"
    );
}

#[test]
fn logistic_and_mlp_families_both_work_end_to_end() {
    let (data, curation) = setup(11);
    for model in [ModelKind::Logistic, ModelKind::Mlp { hidden: vec![8] }] {
        let runner = ScenarioRunner {
            data: &data,
            model,
            train: TrainConfig { epochs: 6, patience: None, ..TrainConfig::default() },
        };
        let eval =
            runner.run(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation)).unwrap();
        assert!(eval.auprc > 0.18, "AUPRC {}", eval.auprc);
    }
}

#[test]
fn feature_set_ladder_is_monotonic_in_the_large() {
    // Figure 6/7 shape at test scale: ABCD should beat A alone (weaker
    // claim than full monotonicity, which needs bench-scale data).
    let (data, curation) = setup(13);
    let runner = ScenarioRunner {
        data: &data,
        model: ModelKind::Logistic,
        train: TrainConfig { epochs: 8, ..TrainConfig::default() },
    };
    let a = runner.run(&Scenario::cross_modal(&[FeatureSet::A]), Some(&curation)).unwrap().auprc;
    let abcd =
        runner.run(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation)).unwrap().auprc;
    assert!(abcd > a, "all feature sets ({abcd:.3}) should beat set A alone ({a:.3})");
}
