//! Vector kernels with `f64` accumulation for numerically stable reductions.

/// Dot product with `f64` accumulation.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += f64::from(x) * f64::from(y);
    }
    acc as f32
}

/// `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `a += b` elementwise.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add_assign length mismatch");
    for (ai, &bi) in a.iter_mut().zip(b) {
        *ai += bi;
    }
}

/// Scales `a` in place by `s`.
#[inline]
pub fn scale(a: &mut [f32], s: f32) {
    for v in a {
        *v *= s;
    }
}

/// Euclidean norm with `f64` accumulation.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    let acc: f64 = a.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    acc.sqrt() as f32
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// In-place softmax (max-shifted for stability). No-op on an empty slice.
pub fn softmax_in_place(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().max_by(f32::total_cmp).unwrap_or(f32::NEG_INFINITY);
    let mut sum = 0.0f64;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += f64::from(*v);
    }
    let inv = (1.0 / sum) as f32;
    scale(x, inv);
}

/// Index of the maximum element; `None` on an empty slice. Ties break low.
pub fn argmax(x: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_hand_value() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_rejects_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn l2_norm_345() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_symmetry_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(10.0) + sigmoid(-10.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        // Extreme inputs must not produce NaN.
        assert!(!sigmoid(1e30).is_nan());
        assert!(!sigmoid(-1e30).is_nan());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = vec![1000.0, 1000.0];
        softmax_in_place(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-5);
        assert!(!x.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut x: Vec<f32> = vec![];
        softmax_in_place(&mut x);
        assert!(x.is_empty());
    }

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(argmax(&[]), None);
    }
}
