//! Loading the checked-in experiment specs from `specs/`.
//!
//! Each regenerator binary declares its evaluation matrix — tasks,
//! scale, seeds, labeled-image reservoir, scenarios — in a declarative
//! JSON spec at `specs/<name>.json`. `xtask validate` checks every spec
//! pre-merge; [`load_spec`] re-validates at startup so a binary never
//! runs a spec the gate would reject, and renders the same
//! `path:line:col: rule: message` diagnostics when one slips through.
//!
//! The environment knobs keep their override power (`CM_SCALE`,
//! `CM_SEED`, `CM_SEEDS`, `CM_SPEC`): the spec supplies defaults, the
//! environment wins, so `run_experiments.sh` and ad-hoc invocations
//! behave exactly as before.

use std::path::PathBuf;

use cm_check::{validate_spec_source, ExperimentSpec};
use cm_faults::CM_FAULTS_ENV;
use cm_pipeline::Scenario;

/// Resolves the on-disk path of the named spec: `CM_SPEC` wins
/// (pointing anywhere), else `specs/<name>.json` at the workspace root
/// (resolved from this crate's manifest so binaries work from any cwd).
fn spec_path(name: &str) -> PathBuf {
    if let Ok(p) = std::env::var("CM_SPEC") {
        return PathBuf::from(p);
    }
    let in_tree = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("specs")
        .join(format!("{name}.json"));
    if in_tree.exists() {
        in_tree
    } else {
        PathBuf::from("specs").join(format!("{name}.json"))
    }
}

/// Loads and validates `specs/<name>.json`, exiting with rendered
/// diagnostics when the file is unreadable or fails validation. When the
/// spec carries a `fault_plan` and `CM_FAULTS` is unset, the plan is
/// exported so the fault layer picks it up.
///
/// # Panics
///
/// Exits the process (status 2) rather than panicking on a bad spec.
#[must_use]
pub fn load_spec(name: &str) -> ExperimentSpec {
    let path = spec_path(name);
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read spec {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let (spec, violations) = validate_spec_source(&source, &path.display().to_string());
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("spec {} failed validation; refusing to run it", path.display());
        std::process::exit(2);
    }
    let Some(spec) = spec else {
        // Unreachable by validate_spec_source's contract (no violations
        // implies a parsed spec), but exit cleanly rather than panic.
        eprintln!("spec {} produced no violations yet failed to parse", path.display());
        std::process::exit(2);
    };
    if let Some(plan) = &spec.fault_plan {
        if std::env::var(CM_FAULTS_ENV).is_err() {
            std::env::set_var(CM_FAULTS_ENV, plan);
        }
    }
    spec
}

/// The spec's scale, unless `CM_SCALE` overrides it.
#[must_use]
pub fn spec_scale(spec: &ExperimentSpec) -> f64 {
    crate::env_scale(spec.scale)
}

/// The spec's master seed, unless `CM_SEED` overrides it.
#[must_use]
pub fn spec_seed(spec: &ExperimentSpec) -> u64 {
    std::env::var("CM_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(spec.seed)
}

/// Seeds to average over: the spec's count (or `CM_SEEDS`) consecutive
/// seeds starting at [`spec_seed`], stepping by 1000 like
/// [`crate::env_seeds`].
#[must_use]
pub fn spec_seeds(spec: &ExperimentSpec) -> Vec<u64> {
    let n = std::env::var("CM_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(spec.seeds);
    let base = spec_seed(spec);
    (0..n as u64).map(|i| base + i * 1000).collect()
}

/// The labeled-image reservoir size at `scale`. The spec declares the
/// scale-1.0 count; runs below full scale shrink it with the rest of the
/// world.
#[must_use]
pub fn spec_reservoir(spec: &ExperimentSpec, scale: f64) -> Option<usize> {
    spec.n_labeled_image.map(|n| (n as f64 * scale) as usize)
}

/// The named scenario from the spec, converted to a runnable
/// [`Scenario`].
///
/// # Panics
///
/// Panics when the spec declares no scenario with that name — a binary
/// asking for a scenario its spec lacks is a wiring bug the pinned specs
/// make impossible to hit silently.
#[must_use]
pub fn spec_scenario(spec: &ExperimentSpec, name: &str) -> Scenario {
    let found = spec
        .scenarios
        .iter()
        .find(|s| s.name == name)
        // lint: allow(panic) — a binary asking for a scenario its spec
        // lacks is a wiring bug; an early panic is the contract.
        .unwrap_or_else(|| panic!("spec {:?} declares no scenario named {name:?}", spec.name));
    Scenario::from_spec(found)
}
