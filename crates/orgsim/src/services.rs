//! Organizational resources as service specifications.
//!
//! A production service is, from the pipeline's point of view, a black box
//! that maps a data point to a structured output with some fidelity. Each
//! [`ServiceSpec`] describes one such box: what latent state it reads, how
//! accurately it observes it per modality, and how often it applies at all
//! (coverage). The [`standard_registry`] mirrors the paper's deployment
//! (§6.2): 15 shared services across sets A–D (3 + 2 + 5 + 5 features, two
//! of them nonservable) plus 3 image-specific features and 1 text-specific
//! feature.

use cm_featurespace::{FeatureSet, ModalityKind, ServingMode};

/// A value carried per modality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerModality<T> {
    /// Value for text.
    pub text: T,
    /// Value for image.
    pub image: T,
    /// Value for video.
    pub video: T,
}

impl<T: Copy> PerModality<T> {
    /// Same value for every modality.
    pub fn uniform(v: T) -> Self {
        Self { text: v, image: v, video: v }
    }

    /// Value for `m`.
    pub fn get(&self, m: ModalityKind) -> T {
        match m {
            ModalityKind::Text => self.text,
            ModalityKind::Image => self.image,
            ModalityKind::Video => self.video,
        }
    }
}

/// Which numeric latent a numeric service reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericSource {
    /// Aggregate statistic: author report count.
    UserReports,
    /// Aggregate statistic: share velocity (nonservable in the registry).
    ShareVelocity,
    /// URL reputation score.
    UrlReputation,
    /// Domain age (label-uninformative by construction).
    DomainAge,
    /// Page quality score.
    PageQuality,
    /// Text length (text-specific).
    WordCount,
    /// Image capture quality (image-specific, uninformative).
    ImgQuality,
    /// OCR text density (image-specific, mildly informative).
    OcrDensity,
}

/// What a service computes.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceKind {
    /// Model-based categorical service reading latent attribute space
    /// `attr`: each latent category is reported with per-modality
    /// probability `accuracy`, and `noise_cats` spurious background
    /// categories are added.
    Categorical {
        /// Index into the world's attribute spaces.
        attr: usize,
        /// Per-modality detection probability.
        accuracy: PerModality<f64>,
        /// Max spurious categories added per observation.
        noise_cats: u32,
    },
    /// Aggregate-statistic / metadata service reading a numeric latent.
    Numeric {
        /// Which latent to read.
        source: NumericSource,
        /// Gaussian observation noise.
        noise_sd: f64,
    },
    /// Pre-trained embedding service: a fixed random projection of the
    /// latent style vector plus weak label signal (see `WorldConfig`).
    Embedding {
        /// Output dimensionality.
        dim: usize,
    },
}

/// One organizational resource.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Feature name this service emits.
    pub name: String,
    /// Which of the paper's service groups it belongs to.
    pub set: FeatureSet,
    /// Servability at inference time.
    pub serving: ServingMode,
    /// What it computes.
    pub kind: ServiceKind,
    /// Per-modality probability that the service applies at all; `0.0`
    /// means the feature does not exist for that modality.
    pub coverage: PerModality<f64>,
}

/// Attribute-space indices used by the standard registry, in the order the
/// world allocates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attr {
    /// Topic-model categories.
    Topics = 0,
    /// Finer-grained subtopics.
    Subtopics = 1,
    /// Knowledge-graph entities.
    Entities = 2,
    /// Sentiment buckets.
    Sentiment = 3,
    /// Detected objects.
    Objects = 4,
    /// Extracted keywords.
    Keywords = 5,
    /// Rule-based heuristic flags.
    RuleFlags = 6,
    /// URL categories.
    UrlCategory = 7,
    /// Page-content topics.
    PageTopics = 8,
    /// Page-content keywords.
    PageKeywords = 9,
}

/// Number of attribute spaces the standard registry reads.
pub const N_ATTRS: usize = 10;

/// Vocabulary sizes per attribute space (indexable by `Attr as usize`).
pub const ATTR_VOCAB_SIZES: [u32; N_ATTRS] = [40, 60, 80, 4, 50, 100, 6, 30, 40, 80];

/// Count of positive-indicative category ids reserved at the bottom of each
/// attribute vocabulary.
pub const ATTR_INDICATIVE: [u32; N_ATTRS] = [12, 18, 24, 1, 15, 30, 3, 9, 12, 24];

/// The paper-shaped service registry: sets A (3 features), B (2), C (5),
/// D (5) shared across modalities, plus 3 image-specific and 1 text-specific
/// features. `share_velocity` is nonservable (the second nonservable
/// feature, the label-propagation score, is added by the pipeline at
/// curation time, exactly as in §6.2).
pub fn standard_registry() -> Vec<ServiceSpec> {
    use FeatureSet as FS;
    use ServingMode::{Nonservable, Servable};
    let cat = |name: &str,
               set: FS,
               attr: Attr,
               acc: PerModality<f64>,
               noise: u32,
               cov: PerModality<f64>| {
        ServiceSpec {
            name: name.to_owned(),
            set,
            serving: Servable,
            kind: ServiceKind::Categorical {
                attr: attr as usize,
                accuracy: acc,
                noise_cats: noise,
            },
            coverage: cov,
        }
    };
    let num = |name: &str,
               set: FS,
               serving: ServingMode,
               source: NumericSource,
               sd: f64,
               cov: PerModality<f64>| {
        ServiceSpec {
            name: name.to_owned(),
            set,
            serving,
            kind: ServiceKind::Numeric { source, noise_sd: sd },
            coverage: cov,
        }
    };
    vec![
        // ---- Set A: URL-based metadata services (3) ----
        cat(
            "url_category",
            FS::A,
            Attr::UrlCategory,
            PerModality { text: 0.9, image: 0.85, video: 0.8 },
            1,
            PerModality { text: 0.85, image: 0.8, video: 0.75 },
        ),
        num(
            "url_reputation",
            FS::A,
            Servable,
            NumericSource::UrlReputation,
            0.05,
            PerModality { text: 0.85, image: 0.8, video: 0.75 },
        ),
        num(
            "domain_age",
            FS::A,
            Servable,
            NumericSource::DomainAge,
            30.0,
            PerModality { text: 0.8, image: 0.8, video: 0.8 },
        ),
        // ---- Set B: keyword-based metadata services (2) ----
        cat(
            "keywords",
            FS::B,
            Attr::Keywords,
            PerModality { text: 0.92, image: 0.55, video: 0.45 },
            2,
            PerModality { text: 0.95, image: 0.65, video: 0.55 },
        ),
        cat(
            "rule_flags",
            FS::B,
            Attr::RuleFlags,
            PerModality { text: 0.95, image: 0.7, video: 0.6 },
            0,
            PerModality { text: 0.9, image: 0.75, video: 0.65 },
        ),
        // ---- Set C: topic-model-based services (5) ----
        cat(
            "topics",
            FS::C,
            Attr::Topics,
            PerModality { text: 0.9, image: 0.8, video: 0.7 },
            1,
            PerModality { text: 0.95, image: 0.9, video: 0.85 },
        ),
        cat(
            "subtopics",
            FS::C,
            Attr::Subtopics,
            PerModality { text: 0.85, image: 0.7, video: 0.6 },
            2,
            PerModality { text: 0.9, image: 0.85, video: 0.8 },
        ),
        cat(
            "kg_entities",
            FS::C,
            Attr::Entities,
            PerModality { text: 0.85, image: 0.65, video: 0.55 },
            2,
            PerModality { text: 0.9, image: 0.8, video: 0.7 },
        ),
        cat(
            "sentiment",
            FS::C,
            Attr::Sentiment,
            PerModality { text: 0.9, image: 0.75, video: 0.7 },
            0,
            PerModality { text: 0.95, image: 0.9, video: 0.85 },
        ),
        cat(
            "objects",
            FS::C,
            Attr::Objects,
            PerModality { text: 0.6, image: 0.9, video: 0.8 },
            2,
            PerModality { text: 0.7, image: 0.95, video: 0.9 },
        ),
        // ---- Set D: page-content-based services (5) ----
        cat(
            "page_topics",
            FS::D,
            Attr::PageTopics,
            PerModality { text: 0.85, image: 0.8, video: 0.75 },
            1,
            PerModality { text: 0.8, image: 0.8, video: 0.75 },
        ),
        cat(
            "page_keywords",
            FS::D,
            Attr::PageKeywords,
            PerModality { text: 0.85, image: 0.75, video: 0.65 },
            2,
            PerModality { text: 0.8, image: 0.75, video: 0.7 },
        ),
        num(
            "user_reports",
            FS::D,
            Servable,
            NumericSource::UserReports,
            1.0,
            PerModality::uniform(0.9),
        ),
        num(
            "share_velocity",
            FS::D,
            Nonservable,
            NumericSource::ShareVelocity,
            0.5,
            PerModality::uniform(0.85),
        ),
        num(
            "page_quality",
            FS::D,
            Servable,
            NumericSource::PageQuality,
            0.08,
            PerModality::uniform(0.8),
        ),
        // ---- Image-specific features (3) ----
        ServiceSpec {
            name: "img_embedding".to_owned(),
            set: FS::ModalitySpecific,
            serving: Servable,
            kind: ServiceKind::Embedding { dim: 16 },
            coverage: PerModality { text: 0.0, image: 1.0, video: 1.0 },
        },
        num(
            "img_quality",
            FS::ModalitySpecific,
            Servable,
            NumericSource::ImgQuality,
            0.1,
            PerModality { text: 0.0, image: 0.95, video: 0.9 },
        ),
        num(
            "ocr_density",
            FS::ModalitySpecific,
            Servable,
            NumericSource::OcrDensity,
            0.1,
            PerModality { text: 0.0, image: 0.9, video: 0.85 },
        ),
        // ---- Text-specific feature (1) ----
        num(
            "word_count",
            FS::ModalitySpecific,
            Servable,
            NumericSource::WordCount,
            2.0,
            PerModality { text: 1.0, image: 0.0, video: 0.0 },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_paper_shape() {
        let reg = standard_registry();
        let count = |set: FeatureSet| reg.iter().filter(|s| s.set == set).count();
        assert_eq!(count(FeatureSet::A), 3);
        assert_eq!(count(FeatureSet::B), 2);
        assert_eq!(count(FeatureSet::C), 5);
        assert_eq!(count(FeatureSet::D), 5);
        assert_eq!(count(FeatureSet::ModalitySpecific), 4);
        // 15 shared services, exactly as in §6.2.
        assert_eq!(reg.len() - count(FeatureSet::ModalitySpecific), 15);
    }

    #[test]
    fn one_registry_nonservable_feature() {
        let reg = standard_registry();
        let nonservable: Vec<_> = reg
            .iter()
            .filter(|s| s.serving == ServingMode::Nonservable)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(nonservable, vec!["share_velocity"]);
    }

    #[test]
    fn modality_specific_coverage_is_zero_elsewhere() {
        let reg = standard_registry();
        let img = reg.iter().find(|s| s.name == "img_embedding").unwrap();
        assert_eq!(img.coverage.get(ModalityKind::Text), 0.0);
        assert!(img.coverage.get(ModalityKind::Image) > 0.0);
        let wc = reg.iter().find(|s| s.name == "word_count").unwrap();
        assert_eq!(wc.coverage.get(ModalityKind::Image), 0.0);
        assert!(wc.coverage.get(ModalityKind::Text) > 0.0);
    }

    #[test]
    fn per_modality_uniform_and_get() {
        let p = PerModality::uniform(0.5);
        assert_eq!(p.get(ModalityKind::Text), 0.5);
        assert_eq!(p.get(ModalityKind::Video), 0.5);
    }

    #[test]
    fn attr_indices_are_in_range() {
        for spec in standard_registry() {
            if let ServiceKind::Categorical { attr, .. } = spec.kind {
                assert!(attr < N_ATTRS);
                assert!(ATTR_INDICATIVE[attr] < ATTR_VOCAB_SIZES[attr]);
            }
        }
    }
}
