//! `par-capture`: closures handed to the cm-par substrate must be pure.
//!
//! At every call of a cm-par entry point (`par_map`, `par_map_chunks`,
//! `par_map_reduce`, `par_chunks_mut`) the closure arguments are
//! checked, statically, for the race classes the thread-matrix suites
//! probe dynamically:
//!
//! - **interior-mutable captures** — naming `Cell`/`RefCell`/`Mutex`/
//!   `RwLock`/atomics/`OnceCell`-family types inside the closure means
//!   chunk workers share mutable state whose observation order depends
//!   on scheduling;
//! - **ambient effects**, direct or transitive — a closure that reaches
//!   `env`/`fs`/clock/entropy through *any* call chain (sanctioned
//!   modules included: sanctioning localizes an effect, it does not make
//!   it order-stable under parallel execution) can observe different
//!   state per worker.
//!
//! Named-function arguments are resolved and checked transitively too.
//! Findings anchor at the offending token inside the closure and carry
//! the call chain down to the effect.

use std::collections::BTreeSet;

use super::{closure_body, frames_for, split_args, WsFinding};
use crate::callgraph::{collect_calls, CallGraph};
use crate::context::collect_typed_names;
use crate::effects::{effects_in, EffectKind};
use crate::lexer::TokKind;
use crate::symbols::{FileUnit, SymbolIndex};

/// Rule name.
pub const RULE: &str = "par-capture";

/// The cm-par entry points whose closures must be pure.
pub const PAR_ENTRYPOINTS: &[&str] =
    &["par_map", "par_map_chunks", "par_map_reduce", "par_chunks_mut"];

/// Interior-mutable type names a par closure must not touch.
const INTERIOR_MUTABLE: &[&str] = &[
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

/// Runs the pass over the whole workspace.
pub fn run(units: &[FileUnit], sym: &SymbolIndex, graph: &CallGraph) -> Vec<WsFinding> {
    // First direct effect per function, for the transitive predicate.
    let fn_effect: Vec<Option<(EffectKind, String)>> = sym
        .fns
        .iter()
        .map(|f| {
            let (lo, hi) = f.body?;
            if hi <= lo + 1 {
                return None;
            }
            effects_in(&units[f.file], (lo + 1, hi - 1))
                .into_iter()
                .next()
                .map(|s| (s.kind, s.what))
        })
        .collect();

    let mut out = Vec::new();
    for (fi, u) in units.iter().enumerate() {
        let code = u.code();
        let n = u.ctx.code.len();
        let cell_bound = cell_bound_names(u);
        for k in 0..n {
            let Some(tok) = code.at(k) else { break };
            if tok.kind != TokKind::Ident || !PAR_ENTRYPOINTS.contains(&tok.ident_text()) {
                continue;
            }
            if !code.is_punct(k + 1, '(') || (k > 0 && code.is_ident(k - 1, "fn")) {
                continue;
            }
            if u.ctx.test_mask[u.ctx.code[k]] {
                continue;
            }
            let entry = tok.ident_text();
            let Some(owner) = sym.enclosing_fn(fi, k) else { continue };
            let (module, impl_type) =
                (sym.fns[owner].module.clone(), sym.fns[owner].impl_type.clone());
            for arg in split_args(&code, k + 1) {
                if let Some(body) = closure_body(&code, arg) {
                    check_closure(
                        units,
                        sym,
                        graph,
                        &fn_effect,
                        fi,
                        &module,
                        impl_type.as_deref(),
                        entry,
                        body,
                        &cell_bound,
                        &mut out,
                    );
                } else {
                    check_named_arg(
                        units,
                        sym,
                        graph,
                        &fn_effect,
                        fi,
                        &module,
                        impl_type.as_deref(),
                        entry,
                        arg,
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

/// Checks one closure body for interior mutability and (transitive)
/// ambient effects.
#[allow(clippy::too_many_arguments)]
fn check_closure(
    units: &[FileUnit],
    sym: &SymbolIndex,
    graph: &CallGraph,
    fn_effect: &[Option<(EffectKind, String)>],
    fi: usize,
    module: &[String],
    impl_type: Option<&str>,
    entry: &str,
    body: (usize, usize),
    cell_bound: &BTreeSet<String>,
    out: &mut Vec<WsFinding>,
) {
    let u = &units[fi];
    let code = u.code();
    for site in effects_in(u, body) {
        out.push(WsFinding {
            file: fi,
            rule: RULE,
            tok: site.tok,
            message: format!(
                "closure passed to {entry} performs ambient {} effect `{}`; cm-par closures \
                 must be pure",
                site.kind, site.what
            ),
            chain: Vec::new(),
        });
    }
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for k in body.0..=body.1 {
        let Some(tok) = code.at(k) else { break };
        if tok.kind != TokKind::Ident {
            continue;
        }
        let name = tok.ident_text();
        if INTERIOR_MUTABLE.contains(&name) && reported.insert(name) {
            out.push(WsFinding {
                file: fi,
                rule: RULE,
                tok: u.ctx.code[k],
                message: format!(
                    "closure passed to {entry} must not capture or construct interior-mutable \
                     `{name}`; chunk workers would race through it"
                ),
                chain: Vec::new(),
            });
        } else if cell_bound.contains(name) && reported.insert(name) {
            out.push(WsFinding {
                file: fi,
                rule: RULE,
                tok: u.ctx.code[k],
                message: format!(
                    "closure passed to {entry} captures `{name}`, which is bound to an \
                     interior-mutable type; chunk workers would race through it"
                ),
                chain: Vec::new(),
            });
        }
    }
    for site in collect_calls(u, sym, fi, module, impl_type, body) {
        if let Some((chain, kind, what)) = first_effect_chain(graph, fn_effect, &site.callees) {
            let Some(&hit) = chain.last() else { continue };
            let via = &sym.fns[hit].name;
            out.push(WsFinding {
                file: fi,
                rule: RULE,
                tok: site.tok,
                message: format!(
                    "closure passed to {entry} calls `{}`, which transitively performs ambient \
                     {kind} effect `{what}` in `{via}`; cm-par closures must be pure",
                    site.name
                ),
                chain: frames_for(sym, units, &chain),
            });
        }
    }
}

/// Checks a non-closure argument that names a function (`count_rows`,
/// `VoteCounts::merge`) for transitive ambient effects.
#[allow(clippy::too_many_arguments)]
fn check_named_arg(
    units: &[FileUnit],
    sym: &SymbolIndex,
    graph: &CallGraph,
    fn_effect: &[Option<(EffectKind, String)>],
    fi: usize,
    module: &[String],
    impl_type: Option<&str>,
    entry: &str,
    arg: (usize, usize),
    out: &mut Vec<WsFinding>,
) {
    let u = &units[fi];
    let Some(callees) = path_arg_fns(u, sym, fi, module, impl_type, arg) else { return };
    if let Some((chain, kind, what)) = first_effect_chain(graph, fn_effect, &callees) {
        let Some(&hit) = chain.last() else { return };
        let via = &sym.fns[hit].name;
        out.push(WsFinding {
            file: fi,
            rule: RULE,
            tok: u.ctx.code[arg.0],
            message: format!(
                "function passed to {entry} transitively performs ambient {kind} effect \
                 `{what}` in `{via}`; cm-par workers must be pure",
            ),
            chain: frames_for(sym, units, &chain),
        });
    }
}

/// Names in `u` bound to an interior-mutable type, through either a
/// `name: RefCell<…>` annotation (params, fields, lets) or a
/// `name = RefCell::new(…)`-style constructor binding.
fn cell_bound_names(u: &FileUnit) -> BTreeSet<String> {
    let code = u.code();
    let n = u.ctx.code.len();
    let watched: BTreeSet<String> = INTERIOR_MUTABLE.iter().map(|s| (*s).to_owned()).collect();
    let mut out = BTreeSet::new();
    collect_typed_names(&code, 0, n, &watched, &mut out);
    for k in 0..n {
        let Some(tok) = code.at(k) else { break };
        if tok.kind == TokKind::Ident
            && code.is_punct(k + 1, '=')
            && code.at(k + 2).is_some_and(|t| {
                t.kind == TokKind::Ident && INTERIOR_MUTABLE.contains(&t.ident_text())
            })
        {
            out.insert(tok.ident_text().to_owned());
        }
    }
    out
}

/// Resolves an argument that is a pure path expression (`name` or
/// `a::b::name`) to candidate functions; `None` when the argument is any
/// other expression shape.
pub(super) fn path_arg_fns(
    u: &FileUnit,
    sym: &SymbolIndex,
    fi: usize,
    module: &[String],
    impl_type: Option<&str>,
    arg: (usize, usize),
) -> Option<Vec<usize>> {
    let code = u.code();
    let mut segs: Vec<String> = Vec::new();
    let mut k = arg.0;
    while k <= arg.1 {
        let tok = code.at(k)?;
        if tok.kind != TokKind::Ident {
            return None;
        }
        segs.push(tok.ident_text().to_owned());
        if k == arg.1 {
            break;
        }
        if !(code.is_punct(k + 1, ':') && code.is_punct(k + 2, ':')) {
            return None;
        }
        k += 3;
    }
    if segs.is_empty() {
        return None;
    }
    let v = if segs.len() == 1 {
        sym.resolve_bare(fi, module, &segs[0])
    } else {
        sym.resolve_path(fi, module, impl_type, &segs)
    };
    (!v.is_empty()).then_some(v)
}

/// First callee (in candidate order) from which a function with a direct
/// effect is reachable; returns the chain and the effect it ends in.
pub(super) fn first_effect_chain(
    graph: &CallGraph,
    fn_effect: &[Option<(EffectKind, String)>],
    callees: &[usize],
) -> Option<(Vec<usize>, EffectKind, String)> {
    for &c in callees {
        if let Some(chain) = graph.find_reachable(c, |f| fn_effect[f].is_some()) {
            let hit = *chain.last()?;
            let (kind, what) = fn_effect[hit].clone()?;
            return Some((chain, kind, what));
        }
    }
    None
}
