//! Noise-aware binary cross-entropy over probabilistic targets.

use cm_linalg::sigmoid;

/// Numerically stable binary cross-entropy of a *logit* against a soft
/// target `q ∈ [0, 1]`:
/// `L = -(q·log σ(z) + (1-q)·log(1-σ(z)))`
/// computed as `max(z,0) - z·q + ln(1 + e^{-|z|})`.
#[inline]
pub fn bce_with_logit(z: f32, q: f64) -> f64 {
    let z = f64::from(z);
    z.max(0.0) - z * q + (-z.abs()).exp().ln_1p()
}

/// Gradient of [`bce_with_logit`] with respect to the logit: `σ(z) - q`.
#[inline]
pub fn bce_grad(z: f32, q: f64) -> f32 {
    (f64::from(sigmoid(z)) - q) as f32
}

/// Mean weighted BCE over a batch of logits.
///
/// # Panics
/// Panics on length mismatches.
pub fn mean_bce(logits: &[f32], targets: &[f64], weights: Option<&[f64]>) -> f64 {
    assert_eq!(logits.len(), targets.len(), "logit/target length mismatch");
    if let Some(w) = weights {
        assert_eq!(w.len(), logits.len(), "weight length mismatch");
    }
    if logits.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut wsum = 0.0;
    for (i, (&z, &q)) in logits.iter().zip(targets).enumerate() {
        let w = weights.map_or(1.0, |w| w[i]);
        total += w * bce_with_logit(z, q);
        wsum += w;
    }
    if wsum > 0.0 {
        total / wsum
    } else {
        0.0
    }
}

/// Per-sample weights that balance classes: positives (target >= 0.5) get
/// `neg_mass / pos_mass`, negatives get 1.0. Returns uniform weights when a
/// class is absent.
pub fn class_balance_weights(targets: &[f64]) -> Vec<f64> {
    let pos = targets.iter().filter(|&&q| q >= 0.5).count();
    let neg = targets.len() - pos;
    if pos == 0 || neg == 0 {
        return vec![1.0; targets.len()];
    }
    let w_pos = neg as f64 / pos as f64;
    targets.iter().map(|&q| if q >= 0.5 { w_pos } else { 1.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_formula_in_safe_range() {
        for &(z, q) in &[(0.5f32, 0.3f64), (-1.2, 0.9), (2.0, 0.0), (0.0, 1.0)] {
            let p = f64::from(sigmoid(z)).clamp(1e-12, 1.0 - 1e-12);
            let naive = -(q * p.ln() + (1.0 - q) * (1.0 - p).ln());
            // The reference value goes through an f32 sigmoid, so compare
            // at f32 precision.
            assert!((bce_with_logit(z, q) - naive).abs() < 1e-6, "z={z}, q={q}");
        }
    }

    #[test]
    fn stable_at_extreme_logits() {
        assert!(bce_with_logit(1e4, 1.0) < 1e-3);
        assert!(bce_with_logit(-1e4, 0.0) < 1e-3);
        assert!(bce_with_logit(1e4, 0.0) > 1e3);
        assert!(!bce_with_logit(-1e4, 1.0).is_nan());
    }

    #[test]
    fn grad_sign_and_zero() {
        assert!(bce_grad(0.0, 0.5).abs() < 1e-7);
        assert!(bce_grad(2.0, 0.0) > 0.0);
        assert!(bce_grad(-2.0, 1.0) < 0.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let (z, q) = (0.7f32, 0.3f64);
        let eps = 1e-3f32;
        let fd = (bce_with_logit(z + eps, q) - bce_with_logit(z - eps, q)) / (2.0 * f64::from(eps));
        assert!((f64::from(bce_grad(z, q)) - fd).abs() < 1e-5);
    }

    #[test]
    fn mean_bce_weighted() {
        let logits = [0.0f32, 0.0];
        let targets = [1.0, 0.0];
        // Symmetric: both contribute ln 2.
        let m = mean_bce(&logits, &targets, None);
        assert!((m - std::f64::consts::LN_2).abs() < 1e-9);
        // Weighting one sample to zero leaves the other's loss.
        let w = [1.0, 0.0];
        let mw = mean_bce(&logits, &targets, Some(&w));
        assert!((mw - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn mean_bce_empty_is_zero() {
        assert_eq!(mean_bce(&[], &[], None), 0.0);
    }

    #[test]
    fn class_weights_balance_mass() {
        let targets = [1.0, 0.0, 0.0, 0.0];
        let w = class_balance_weights(&targets);
        assert_eq!(w, vec![3.0, 1.0, 1.0, 1.0]);
        // Total positive mass equals total negative mass.
        let pos_mass: f64 = w.iter().zip(&targets).filter(|(_, &t)| t >= 0.5).map(|(w, _)| w).sum();
        let neg_mass: f64 = w.iter().zip(&targets).filter(|(_, &t)| t < 0.5).map(|(w, _)| w).sum();
        assert_eq!(pos_mass, neg_mass);
    }

    #[test]
    fn class_weights_degenerate_uniform() {
        assert_eq!(class_balance_weights(&[1.0, 1.0]), vec![1.0, 1.0]);
        assert_eq!(class_balance_weights(&[0.0]), vec![1.0]);
    }
}
