//! # cm-lint
//!
//! The span-aware semantic lint engine behind `xtask lint` — layer 1 of
//! the static-analysis gate, rebuilt from a per-line token scanner into a
//! real lexer (`lexer`), a lightweight structural analysis (`context`),
//! and semantic passes (`passes`) the old scanner could not express:
//!
//! - **nondet-iteration** — hash-ordered `HashMap`/`HashSet` iteration
//!   (through `use`/`type` aliases, fields, parameters, and same-file
//!   constructor functions) in library code, where order can feed float
//!   reductions and break the bit-identity suites;
//! - **float-ordering** — `partial_cmp` comparators and `f64::max`-style
//!   fold functions that must use `total_cmp`;
//! - the original token bans (`unwrap`, `expect`, `panic!`, threading,
//!   wall-clock, `table.row`), now matched across line breaks;
//! - **stale-waiver** — every `lint: allow` waiver pragma must suppress
//!   at least one finding, so waivers rot loudly instead of silently.
//!
//! On top of the per-file passes sits a workspace layer (`symbols`,
//! `callgraph`, `effects`) that indexes every function in the lint
//! scope, resolves `use`/re-export aliases to build an over-approximate
//! call graph, and proves the determinism discipline interprocedurally:
//!
//! - **effect-audit** — ambient env/fs/clock/entropy effects outside the
//!   modules sanctioned by `specs/lint_effects.json`, each finding
//!   rendering the full entry-point → effect call chain;
//! - **par-capture** — closures handed to the cm-par entry points must
//!   not capture interior-mutable state nor reach an ambient effect
//!   through any call chain;
//! - **merge-float** — float accumulation in (or reachable from) the
//!   `par_map_reduce` merge argument, where fold order is the parallel
//!   schedule.
//!
//! Scope mirrors the old gate: library-crate non-test code under
//! `crates/*/src`, with tests/benches/examples/binaries exempt,
//! `crates/par` exempt from the threading bans, and the `table-*` rules
//! restricted to the hot-path crates. Findings carry byte-accurate
//! line/column positions and render as `file:line:col: [rule] message`;
//! [`report::report_json`] emits the deterministic machine report.

pub mod callgraph;
pub mod context;
pub mod corpus;
pub mod effects;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod symbols;

use std::fs;
use std::path::{Path, PathBuf};

pub use report::{report_json, Finding};

use callgraph::CallGraph;
use passes::PassInput;
use report::Frame;
use symbols::{FileUnit, SymbolIndex};

/// The rule name emitted by the waiver audit.
pub const STALE_WAIVER_RULE: &str = "stale-waiver";

/// Every rule the engine can emit, in stable order (bans, then the
/// semantic passes, then the interprocedural passes, then the audit).
pub fn all_rules() -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = passes::bans::RULES.to_vec();
    rules.push(passes::nondet_iter::RULE);
    rules.push(passes::float_order::RULE);
    rules.push(passes::effect_audit::RULE);
    rules.push(passes::par_capture::RULE);
    rules.push(passes::merge_float::RULE);
    rules.push(STALE_WAIVER_RULE);
    rules
}

/// Path-scoping configuration: which crates are exempt from which rules.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes where the raw-threading bans do not apply (the
    /// parallel substrate is the one place allowed to touch
    /// `std::thread`).
    pub thread_exempt: Vec<PathBuf>,
    /// Path prefixes where the `table-row`/`table-value` rules apply (the
    /// hot-path crates that must use FrozenTable columnar views); the
    /// rules are off everywhere else.
    pub hot_path_crates: Vec<PathBuf>,
    /// Path prefixes where the `stream-materialize` rule applies (the
    /// streaming curation drivers, which must assemble segments through
    /// cm-shard instead of materializing whole `FeatureTable`s); the rule
    /// is off everywhere else.
    pub stream_driver_paths: Vec<PathBuf>,
    /// Path prefixes exempt from the `checkpoint-drift` rule — cm-serve's
    /// snapshot module, the one place allowed to name the checkpoint type.
    /// Everywhere else, checkpointed state must flow through that
    /// module's `capture`/`save`/`load` API so its layout cannot drift
    /// behind the version number.
    pub checkpoint_exempt: Vec<PathBuf>,
    /// Per-effect-kind sanctioned path prefixes for the `effect-audit`
    /// pass, loaded from `specs/lint_effects.json` by
    /// [`LintConfig::for_workspace`]. Empty (no sanctions) in
    /// [`LintConfig::repo_default`].
    pub effect_sanctions: effects::EffectSanctions,
}

/// Rules that do not apply inside the thread-exempt crates.
const THREAD_RULES: &[&str] = &["thread-spawn", "thread-scope"];

/// Rules that apply only inside the hot-path crates.
const HOT_PATH_RULES: &[&str] = &["table-row", "table-value"];

/// Rules that apply only inside the streaming curation drivers.
const STREAM_RULES: &[&str] = &["stream-materialize"];

/// Rules that do not apply inside the checkpoint-exempt paths.
const CHECKPOINT_RULES: &[&str] = &["checkpoint-drift"];

/// Rules that do not apply inside the thread-exempt crates: the cm-par
/// substrate's own internals hand closures to its entry points by
/// construction.
const PAR_RULES: &[&str] = &["par-capture"];

impl LintConfig {
    /// The repository's scoping: `crates/par` owns raw threading; the
    /// kernel crates must stay columnar.
    pub fn repo_default() -> Self {
        LintConfig {
            thread_exempt: vec![PathBuf::from("crates/par")],
            hot_path_crates: [
                "crates/featurespace",
                "crates/propagation",
                "crates/mining",
                "crates/labelmodel",
            ]
            .iter()
            .map(PathBuf::from)
            .collect(),
            stream_driver_paths: vec![PathBuf::from("crates/pipeline/src/stream.rs")],
            checkpoint_exempt: vec![PathBuf::from("crates/serve/src/snapshot.rs")],
            effect_sanctions: effects::EffectSanctions::default(),
        }
    }

    /// The repository scoping plus the effect sanctions declared in
    /// `specs/lint_effects.json` under `root`. A missing or malformed
    /// spec leaves the sanction list empty — every effect site then
    /// reports, which is noisy but fails safe (and `xtask validate`
    /// rejects the malformed spec with spans).
    pub fn for_workspace(root: &Path) -> Self {
        let mut cfg = Self::repo_default();
        if let Ok(s) = effects::EffectSanctions::load(&root.join("specs/lint_effects.json")) {
            cfg.effect_sanctions = s;
        }
        cfg
    }

    /// True when `rule` is enforced for the file at `path`.
    fn rule_applies(&self, rule: &str, path: &Path) -> bool {
        if THREAD_RULES.contains(&rule) && self.thread_exempt.iter().any(|p| path.starts_with(p)) {
            return false;
        }
        if PAR_RULES.contains(&rule) && self.thread_exempt.iter().any(|p| path.starts_with(p)) {
            return false;
        }
        if HOT_PATH_RULES.contains(&rule)
            && !self.hot_path_crates.iter().any(|p| path.starts_with(p))
        {
            return false;
        }
        if STREAM_RULES.contains(&rule)
            && !self.stream_driver_paths.iter().any(|p| path.starts_with(p))
        {
            return false;
        }
        if CHECKPOINT_RULES.contains(&rule)
            && self.checkpoint_exempt.iter().any(|p| path.starts_with(p))
        {
            return false;
        }
        true
    }
}

/// One pre-waiver finding inside a known file: the rule, its anchor
/// token, the message, and (for the interprocedural rules) a call chain.
struct Anchored {
    rule: &'static str,
    tok: usize,
    message: String,
    chain: Vec<Frame>,
}

/// Lints a set of files as one workspace: the per-file passes run on
/// each file, the symbol index and call graph are built over all of
/// them, and the interprocedural passes (`effect-audit`, `par-capture`,
/// `merge-float`) prove reachability across file boundaries. File paths
/// label findings, drive the path-scoped rules, and define the module
/// tree; pass workspace-relative paths. Returned findings are sorted by
/// position and already have waivers applied and audited.
pub fn lint_workspace(files: &[(PathBuf, String)], cfg: &LintConfig) -> Vec<Finding> {
    let units: Vec<FileUnit> = files.iter().map(|(p, s)| FileUnit::parse(p.clone(), s)).collect();
    let sym = SymbolIndex::build(&units);
    let graph = CallGraph::build(&units, &sym);

    let mut per_file: Vec<Vec<Anchored>> = units.iter().map(|_| Vec::new()).collect();
    for (fi, u) in units.iter().enumerate() {
        let input = PassInput { toks: &u.toks, ctx: &u.ctx };
        let raw = passes::bans::run(&input)
            .into_iter()
            .chain(passes::nondet_iter::run(&input))
            .chain(passes::float_order::run(&input));
        per_file[fi].extend(raw.map(|r| Anchored {
            rule: r.rule,
            tok: r.tok,
            message: r.message,
            chain: Vec::new(),
        }));
    }
    let ws = passes::effect_audit::run(&units, &sym, &graph, &cfg.effect_sanctions)
        .into_iter()
        .chain(passes::par_capture::run(&units, &sym, &graph))
        .chain(passes::merge_float::run(&units, &sym, &graph));
    for f in ws {
        per_file[f.file].push(Anchored {
            rule: f.rule,
            tok: f.tok,
            message: f.message,
            chain: f.chain,
        });
    }

    let mut findings = Vec::new();
    for (u, raw) in units.iter().zip(per_file) {
        findings.extend(finalize_file(u, raw, cfg));
    }
    findings.sort_by(Finding::sort_key_cmp);
    findings
}

/// Lints one source text as a single-file workspace. `file` labels
/// findings and drives the path-scoped rules; pass a workspace-relative
/// path. The interprocedural passes still run — confined to call chains
/// within this file.
pub fn lint_source(source: &str, file: &Path, cfg: &LintConfig) -> Vec<Finding> {
    lint_workspace(&[(file.to_path_buf(), source.to_owned())], cfg)
}

/// Resolves anchors, drops test-region and path-exempt findings, applies
/// waivers, and audits them for one file.
fn finalize_file(u: &FileUnit, raw: Vec<Anchored>, cfg: &LintConfig) -> Vec<Finding> {
    let (toks, ctx, file) = (&u.toks, &u.ctx, &u.path);
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|r| !ctx.test_mask[r.tok])
        .filter(|r| cfg.rule_applies(r.rule, file))
        .map(|r| {
            let t = &toks[r.tok];
            Finding {
                rule: r.rule,
                file: file.clone(),
                line: t.line(),
                col: t.col(),
                message: r.message,
                chain: r.chain,
            }
        })
        .collect();

    // Waiver application: a pragma waives findings of its listed rules on
    // its target line. Each (pragma, rule) pair must earn its keep.
    let mut used: Vec<Vec<bool>> = ctx.pragmas.iter().map(|p| vec![false; p.rules.len()]).collect();
    findings.retain(|f| {
        let mut waived = false;
        for (pi, p) in ctx.pragmas.iter().enumerate() {
            if p.target_line != Some(f.line) {
                continue;
            }
            for (ri, r) in p.rules.iter().enumerate() {
                if r == f.rule {
                    used[pi][ri] = true;
                    waived = true;
                }
            }
        }
        !waived
    });

    // Waiver audit. Pragmas inside test regions are not audited (the code
    // they sit in is exempt wholesale); everywhere else a pragma that
    // suppressed nothing is itself a finding.
    let test_lines: std::collections::BTreeSet<u32> =
        toks.iter().enumerate().filter(|(i, _)| ctx.test_mask[*i]).map(|(_, t)| t.line()).collect();
    for (pi, p) in ctx.pragmas.iter().enumerate() {
        if test_lines.contains(&p.line) {
            continue;
        }
        for (ri, r) in p.rules.iter().enumerate() {
            if !used[pi][ri] {
                findings.push(Finding {
                    rule: STALE_WAIVER_RULE,
                    file: file.clone(),
                    line: p.line,
                    col: p.col,
                    message: format!("waiver `lint: allow({r})` suppresses no finding; delete it"),
                    chain: Vec::new(),
                });
            }
        }
    }

    findings.sort_by(Finding::sort_key_cmp);
    findings
}

/// True when `path` belongs to a zone where panicking is idiomatic:
/// tests, benches, examples, or binary targets.
pub fn is_exempt_path(path: &Path) -> bool {
    let mut comps = path.components().peekable();
    while let Some(c) = comps.next() {
        let name = c.as_os_str().to_string_lossy();
        if name == "tests" || name == "benches" || name == "examples" {
            return true;
        }
        if name == "src" && comps.peek().is_some_and(|n| n.as_os_str() == "bin") {
            return true;
        }
        if name == "src" && comps.peek().is_some_and(|n| n.as_os_str() == "main.rs") {
            return true;
        }
    }
    false
}

/// Collects the workspace `.rs` files the lint applies to: everything
/// under `crates/*/src` that is not in an exempt zone. Crates without a
/// `src/lib.rs` are binary crates and fully exempt.
pub fn collect_lint_targets(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates) else {
        return out;
    };
    let mut crate_dirs: Vec<PathBuf> =
        entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        if !dir.join("src/lib.rs").exists() {
            continue;
        }
        let mut stack = vec![dir.join("src")];
        while let Some(d) = stack.pop() {
            let Ok(entries) = fs::read_dir(&d) else { continue };
            let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
            paths.sort();
            for p in paths {
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let rel = p.strip_prefix(root).unwrap_or(&p);
                    if !is_exempt_path(rel) {
                        out.push(p);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Runs the lint over the workspace rooted at `root`; returns all
/// findings sorted by (file, line, col, rule), plus the number of files
/// scanned. Empty findings means the gate passes.
pub fn run(root: &Path, cfg: &LintConfig) -> (Vec<Finding>, usize) {
    let targets = collect_lint_targets(root);
    let scanned = targets.len();
    let mut files = Vec::new();
    for path in targets {
        match fs::read_to_string(&path) {
            Ok(source) => {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                files.push((rel, source));
            }
            Err(e) => eprintln!("lint: skipping unreadable {}: {e}", path.display()),
        }
    }
    (lint_workspace(&files, cfg), scanned)
}
