//! `effect-audit`: ambient effects outside the sanctioned modules.
//!
//! Every direct effect site (env/fs/clock/entropy — see
//! [`crate::effects`]) inside a non-test function body is a finding
//! unless its file is sanctioned for that effect kind by
//! `specs/lint_effects.json`. Each finding renders the full call chain
//! from a workspace entry point (a function nobody calls) down to the
//! function holding the effect, so a violation buried three calls under
//! `curate_streamed` is self-explaining at the report line.
//!
//! Sanctioned modules are *boundaries*: their effects neither report nor
//! propagate to callers — calling `ParConfig::from_env` from anywhere is
//! fine because the env read is owned by the sanctioned module, which is
//! exactly the discipline the equivalence suites assume.

use super::{frames_for, WsFinding};
use crate::callgraph::CallGraph;
use crate::effects::{effects_in, EffectSanctions};
use crate::symbols::{FileUnit, SymbolIndex};

/// Rule name.
pub const RULE: &str = "effect-audit";

/// Runs the pass over the whole workspace.
pub fn run(
    units: &[FileUnit],
    sym: &SymbolIndex,
    graph: &CallGraph,
    sanctions: &EffectSanctions,
) -> Vec<WsFinding> {
    let mut out = Vec::new();
    for (fi, u) in units.iter().enumerate() {
        let n = u.ctx.code.len();
        if n == 0 {
            continue;
        }
        for site in effects_in(u, (0, n - 1)) {
            if sanctions.sanctioned(site.kind, &u.path) {
                continue;
            }
            // Anchor to the innermost non-test function; effects outside
            // any function body (use statements, const items) are not
            // call-reachable and are left to the token bans.
            let code_idx = u.ctx.code.iter().position(|&t| t == site.tok);
            let Some(code_idx) = code_idx else { continue };
            let Some(owner) = sym.enclosing_fn(fi, code_idx) else { continue };
            let chain = graph.chain_to_root(owner);
            out.push(WsFinding {
                file: fi,
                rule: RULE,
                tok: site.tok,
                message: format!(
                    "ambient {} effect `{}` in `{}` outside the modules sanctioned by \
                     specs/lint_effects.json; {}",
                    site.kind,
                    site.what,
                    sym.fns[owner].name,
                    site.kind.advice()
                ),
                chain: frames_for(sym, units, &chain),
            });
        }
    }
    out
}
