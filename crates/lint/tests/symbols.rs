//! Adversarial fixtures for the workspace symbol index and call graph:
//! nested module trees, `pub use` re-export chains, same-name functions
//! in sibling modules, trait-method fan-out, and calls through aliased
//! paths — the shapes that defeat name-only matching.

use std::path::PathBuf;

use cm_lint::callgraph::CallGraph;
use cm_lint::symbols::{FileUnit, SymbolIndex};
use cm_lint::{lint_workspace, LintConfig};

fn ws(files: &[(&str, &str)]) -> (Vec<FileUnit>, SymbolIndex) {
    let units: Vec<FileUnit> =
        files.iter().map(|&(p, s)| FileUnit::parse(PathBuf::from(p), s)).collect();
    let sym = SymbolIndex::build(&units);
    (units, sym)
}

/// The index of the fn named `name` defined in file `file`.
fn fn_in(sym: &SymbolIndex, file: usize, name: &str) -> usize {
    sym.fns
        .iter()
        .position(|f| f.file == file && f.name == name)
        .unwrap_or_else(|| panic!("fn `{name}` not indexed in file {file}"))
}

#[test]
fn nested_mod_tree_composes_with_file_layout() {
    let (_, sym) = ws(&[(
        "crates/alpha/src/deep/part.rs",
        "pub mod inner {\n    pub mod core {\n        pub fn leaf() {}\n    }\n}\npub fn top() {}\n",
    )]);
    let leaf = sym.lookup_abs(&[
        "cm_alpha".into(),
        "deep".into(),
        "part".into(),
        "inner".into(),
        "core".into(),
        "leaf".into(),
    ]);
    assert_eq!(leaf.len(), 1, "nested inline mods under a file-layout module");
    assert_eq!(sym.fns[leaf[0]].module, vec!["deep", "part", "inner", "core"]);
    let top = sym.lookup_abs(&["cm_alpha".into(), "deep".into(), "part".into(), "top".into()]);
    assert_eq!(top.len(), 1, "item after a closed mod block is back at file scope");
    assert_eq!(sym.fns[top[0]].module, vec!["deep", "part"]);
}

#[test]
fn same_name_functions_resolve_to_their_own_module() {
    let (units, sym) = ws(&[
        (
            "crates/beta/src/a.rs",
            "pub fn helper() -> u32 { 1 }\npub fn call_a() -> u32 { helper() }\n",
        ),
        (
            "crates/beta/src/b.rs",
            "pub fn helper() -> u32 { 2 }\npub fn call_b() -> u32 { helper() }\n",
        ),
    ]);
    let graph = CallGraph::build(&units, &sym);
    let helper_a = fn_in(&sym, 0, "helper");
    let helper_b = fn_in(&sym, 1, "helper");
    let call_a = fn_in(&sym, 0, "call_a");
    assert!(graph.find_reachable(call_a, |f| f == helper_a).is_some());
    assert!(
        graph.find_reachable(call_a, |f| f == helper_b).is_none(),
        "a sibling module's same-name fn must not leak into the edge"
    );
}

#[test]
fn pub_use_reexport_chain_resolves_across_crates() {
    let (units, sym) = ws(&[
        ("crates/gamma/src/detail.rs", "pub fn work() -> u32 { 7 }\n"),
        ("crates/gamma/src/lib.rs", "pub mod detail;\npub use detail::work;\n"),
        ("crates/delta/src/lib.rs", "use cm_gamma::work;\npub fn driver() -> u32 { work() }\n"),
    ]);
    let graph = CallGraph::build(&units, &sym);
    let work = fn_in(&sym, 0, "work");
    let driver = fn_in(&sym, 2, "driver");
    let chain = graph
        .find_reachable(driver, |f| f == work)
        .expect("driver reaches work through the re-export");
    assert_eq!(chain, vec![driver, work]);
}

#[test]
fn aliased_path_calls_resolve_through_the_alias() {
    let (units, sym) = ws(&[
        ("crates/eps/src/util.rs", "pub fn helper() -> u32 { 3 }\n"),
        (
            "crates/eps/src/lib.rs",
            "pub mod util;\nuse crate::util as u;\npub fn go() -> u32 { u::helper() }\n",
        ),
    ]);
    let graph = CallGraph::build(&units, &sym);
    let helper = fn_in(&sym, 0, "helper");
    let go = fn_in(&sym, 1, "go");
    assert!(graph.find_reachable(go, |f| f == helper).is_some());
}

#[test]
fn trait_method_call_fans_out_to_every_impl() {
    let (units, sym) = ws(&[(
        "crates/zeta/src/lib.rs",
        "pub trait Step { fn step(&self) -> u32; }\n\
         pub struct A;\n\
         impl Step for A { fn step(&self) -> u32 { 1 } }\n\
         pub struct B;\n\
         impl Step for B { fn step(&self) -> u32 { 2 } }\n\
         pub fn drive(x: &dyn Step) -> u32 { x.step() }\n",
    )]);
    let graph = CallGraph::build(&units, &sym);
    let drive = fn_in(&sym, 0, "drive");
    let steps: Vec<usize> = sym
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == "step" && f.body.is_some())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(steps.len(), 2, "both impls indexed with bodies");
    for s in steps {
        assert!(
            graph.find_reachable(drive, |f| f == s).is_some(),
            "conservative fan-out must cover impl {:?}",
            sym.fns[s].impl_type
        );
    }
}

#[test]
fn effect_audit_chains_across_crates() {
    let files = vec![
        (
            PathBuf::from("crates/one/src/lib.rs"),
            "pub fn read_knob() -> String { std::env::var(\"K\").unwrap_or_default() }\n"
                .to_owned(),
        ),
        (
            PathBuf::from("crates/two/src/lib.rs"),
            "use cm_one::read_knob;\npub fn entry() -> String { read_knob() }\n".to_owned(),
        ),
    ];
    let findings = lint_workspace(&files, &LintConfig::repo_default());
    let audit: Vec<_> = findings.iter().filter(|f| f.rule == "effect-audit").collect();
    assert_eq!(audit.len(), 1, "one env site: {findings:?}");
    let f = audit[0];
    assert_eq!(f.file, PathBuf::from("crates/one/src/lib.rs"));
    let names: Vec<&str> = f.chain.iter().map(|fr| fr.name.as_str()).collect();
    assert_eq!(names, ["entry", "read_knob"], "entry-point → effect holder");
    assert_eq!(f.chain[0].file, PathBuf::from("crates/two/src/lib.rs"));
}
