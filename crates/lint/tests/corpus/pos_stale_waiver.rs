//@ path: crates/demo/src/lib.rs
// Seeded positive for the waiver audit: the first pragma suppresses a
// real finding (earning its keep); the second waives a rule that never
// fires on its line and must be reported stale.

pub fn f(v: Option<u32>) -> u32 {
    // lint: allow(unwrap) — justified: demo waiver that does suppress
    let w = v.unwrap();
    // lint: allow(panic) — stale: nothing panics on the next line
    let x = w + 1;
    x
}
