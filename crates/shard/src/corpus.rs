//! Segmented corpora: a logical row range emitted as fixed-size segments,
//! re-streamable for multi-pass sharded algorithms.

use std::sync::Arc;

use cm_featurespace::{CmResult, FeatureSchema, FeatureTable, ModalityKind};
use cm_orgsim::{ModalityDataset, World};

use crate::config::MemTracker;

/// A streamed `orgsim` generation: the rows [`World::generate`] would
/// produce for this seed, regenerated segment by segment on every pass.
#[derive(Clone, Copy)]
pub struct StreamSpec<'a> {
    /// The generating world.
    pub world: &'a World,
    /// Modality of the generated rows.
    pub modality: ModalityKind,
    /// Total rows in the stream.
    pub rows: usize,
    /// Generation seed (the same seed [`World::generate`] takes).
    pub seed: u64,
}

/// A corpus assembled from resident *head* tables followed by an optional
/// generation-stream *tail*, exposed as fixed-size segments.
///
/// The pipeline's propagation corpus is `[seeds | dev | pool]`: the seed
/// and dev tables are small labeled-corpus gathers (heads), while the pool
/// is the large streamed tail. Each pass over the corpus re-emits the same
/// rows at the same global offsets, so multi-pass algorithms (scale fits,
/// anchor gathers, candidate sweeps) see a stable row numbering; because
/// every merge the sharded pipeline performs is exact, nothing downstream
/// depends on where the segment cuts fall.
pub struct SegmentedCorpus<'a> {
    heads: Vec<&'a FeatureTable>,
    tail: Option<StreamSpec<'a>>,
    segment_rows: usize,
}

impl<'a> SegmentedCorpus<'a> {
    /// An empty corpus emitting segments of up to `segment_rows` rows.
    pub fn new(segment_rows: usize) -> Self {
        Self { heads: Vec::new(), tail: None, segment_rows: segment_rows.max(1) }
    }

    /// Appends a resident head table (emitted before the tail, split into
    /// segment-sized chunks).
    pub fn push_head(&mut self, table: &'a FeatureTable) {
        self.heads.push(table);
    }

    /// Sets the streamed tail.
    pub fn set_stream(&mut self, spec: StreamSpec<'a>) {
        self.tail = Some(spec);
    }

    /// Rows per emitted segment.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// Total rows across heads and tail.
    pub fn total_rows(&self) -> usize {
        self.heads.iter().map(|t| t.len()).sum::<usize>() + self.tail.as_ref().map_or(0, |s| s.rows)
    }

    /// The shared schema, from the first head or the tail's world.
    ///
    /// # Panics
    /// Panics on a corpus with neither heads nor tail.
    pub fn schema(&self) -> Arc<FeatureSchema> {
        if let Some(head) = self.heads.first() {
            return Arc::clone(head.schema());
        }
        match &self.tail {
            Some(spec) => Arc::clone(spec.world.schema()),
            None => unreachable!("schema() on a corpus with neither heads nor tail"),
        }
    }

    /// One pass over the corpus: calls `f(global_offset, segment, tracker)`
    /// for each segment in corpus order. Segment tables are charged to the
    /// tracker while `f` runs and released afterwards; the first error
    /// (from a charge or from `f`) aborts the pass.
    pub fn for_each(
        &self,
        tracker: &mut MemTracker,
        f: &mut dyn FnMut(usize, &FeatureTable, &mut MemTracker) -> CmResult<()>,
    ) -> CmResult<()> {
        let mut offset = 0usize;
        for head in &self.heads {
            let mut start = 0usize;
            while start < head.len() {
                let end = (start + self.segment_rows).min(head.len());
                let idx: Vec<usize> = (start..end).collect();
                let seg = head.gather(&idx);
                let bytes = seg.approx_bytes();
                tracker.charge(bytes, "corpus head segment")?;
                let res = f(offset + start, &seg, tracker);
                tracker.release(bytes);
                res?;
                start = end;
            }
            offset += head.len();
        }
        if let Some(spec) = &self.tail {
            for_each_pool_segment(
                spec.world,
                spec.modality,
                spec.rows,
                spec.seed,
                self.segment_rows,
                tracker,
                &mut |seg_offset, seg, tracker| f(offset + seg_offset, &seg.table, tracker),
            )?;
        }
        Ok(())
    }
}

/// Approximate resident bytes of a generated segment: table storage plus
/// the label and borderline side arrays.
pub fn dataset_bytes(dataset: &ModalityDataset) -> usize {
    dataset.table.approx_bytes()
        + dataset.labels.len() * std::mem::size_of::<cm_featurespace::Label>()
        + dataset.borderline.len()
}

/// Streams the rows `world.generate(modality, rows, seed)` would produce,
/// in segments of up to `segment_rows`, charging each segment against the
/// tracker while `f(segment_offset, segment, tracker)` runs.
///
/// The segments concatenate to the resident dataset bit for bit
/// (`DatasetStream`'s contract), so anything merged over them in offset
/// order agrees with the resident computation.
pub fn for_each_pool_segment(
    world: &World,
    modality: ModalityKind,
    rows: usize,
    seed: u64,
    segment_rows: usize,
    tracker: &mut MemTracker,
    f: &mut dyn FnMut(usize, &ModalityDataset, &mut MemTracker) -> CmResult<()>,
) -> CmResult<()> {
    let mut stream = world.stream(modality, rows, seed);
    let mut offset = 0usize;
    while let Some(seg) = stream.next_segment(segment_rows.max(1)) {
        let bytes = dataset_bytes(&seg);
        tracker.charge(bytes, "streamed segment")?;
        let res = f(offset, &seg, tracker);
        tracker.release(bytes);
        res?;
        offset += seg.len();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use cm_orgsim::{TaskConfig, TaskId, WorldConfig};

    use super::*;
    use crate::config::{MemBudget, MemTracker};

    fn world() -> World {
        World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct2).scaled(0.02), 11))
    }

    #[test]
    fn corpus_concatenates_heads_and_tail_in_order() {
        let w = world();
        let head_a = w.generate(ModalityKind::Text, 37, 1);
        let head_b = w.generate(ModalityKind::Text, 5, 2);
        let tail = w.generate(ModalityKind::Image, 53, 3);
        let mut resident = head_a.table.clone();
        resident.extend_from(&head_b.table);
        resident.extend_from(&tail.table);

        for seg_rows in [1usize, 7, 16, 100] {
            let mut corpus = SegmentedCorpus::new(seg_rows);
            corpus.push_head(&head_a.table);
            corpus.push_head(&head_b.table);
            corpus.set_stream(StreamSpec {
                world: &w,
                modality: ModalityKind::Image,
                rows: 53,
                seed: 3,
            });
            assert_eq!(corpus.total_rows(), resident.len());
            let mut tracker = MemTracker::new(MemBudget::default());
            let mut seen = 0usize;
            corpus
                .for_each(&mut tracker, &mut |offset, seg, _| {
                    assert_eq!(offset, seen, "seg_rows = {seg_rows}");
                    assert!(seg.len() <= seg_rows);
                    for r in 0..seg.len() {
                        assert_eq!(seg.row(r), resident.row(offset + r));
                    }
                    seen += seg.len();
                    Ok(())
                })
                .unwrap();
            assert_eq!(seen, resident.len());
            assert_eq!(tracker.current(), 0, "segments must be released");
            assert!(tracker.peak() > 0);
        }
    }

    #[test]
    fn empty_corpus_emits_nothing() {
        let corpus = SegmentedCorpus::new(8);
        assert_eq!(corpus.total_rows(), 0);
        let mut tracker = MemTracker::new(MemBudget::bytes(1));
        corpus.for_each(&mut tracker, &mut |_, _, _| panic!("no segments expected")).unwrap();
        assert_eq!(tracker.peak(), 0);
    }

    #[test]
    fn tiny_budget_fails_instead_of_exceeding() {
        let w = world();
        let mut tracker = MemTracker::new(MemBudget::bytes(64));
        let err = for_each_pool_segment(
            &w,
            ModalityKind::Image,
            100,
            5,
            32,
            &mut tracker,
            &mut |_, _, _| Ok(()),
        )
        .unwrap_err();
        assert!(err.message.contains("memory budget exceeded"), "{err:?}");
        assert!(tracker.peak() <= 64, "peak {} leaked past the budget", tracker.peak());
    }

    #[test]
    fn multiple_passes_emit_identical_segments() {
        let w = world();
        let mut corpus = SegmentedCorpus::new(13);
        corpus.set_stream(StreamSpec {
            world: &w,
            modality: ModalityKind::Image,
            rows: 40,
            seed: 9,
        });
        let mut tracker = MemTracker::new(MemBudget::default());
        let mut first: Vec<(usize, usize)> = Vec::new();
        corpus
            .for_each(&mut tracker, &mut |offset, seg, _| {
                first.push((offset, seg.len()));
                Ok(())
            })
            .unwrap();
        let mut second: Vec<(usize, usize)> = Vec::new();
        corpus
            .for_each(&mut tracker, &mut |offset, seg, _| {
                second.push((offset, seg.len()));
                Ok(())
            })
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(first.iter().map(|(_, n)| n).sum::<usize>(), 40);
    }
}
