//! Randomized tests for the label models (seeded, in-tree PRNG).

use cm_featurespace::Label;
use cm_labelmodel::{majority_vote, AnchoredModel, LabelMatrix};
use cm_linalg::rng::{Rng, StdRng};

const CASES: u64 = 64;

/// A dev matrix with guaranteed class balance plus random votes.
fn dev_matrix(rng: &mut StdRng) -> (LabelMatrix, Vec<Label>) {
    let n_lfs = rng.gen_range(2..5usize);
    let n_rows = rng.gen_range(8..40usize);
    let votes: Vec<i8> =
        (0..n_rows * n_lfs).map(|_| [-1i8, 0, 1][rng.gen_range(0..3usize)]).collect();
    let mut label_bits: Vec<bool> = (0..n_rows).map(|_| rng.gen_bool(0.5)).collect();
    // Force both classes to be present.
    label_bits[0] = true;
    let last = label_bits.len() - 1;
    label_bits[last] = false;
    let names = (0..n_lfs).map(|i| format!("lf{i}")).collect();
    let m = LabelMatrix::from_votes(n_rows, n_lfs, votes, names);
    let labels =
        label_bits.into_iter().map(|b| if b { Label::Positive } else { Label::Negative }).collect();
    (m, labels)
}

/// Anchored posteriors are valid probabilities for any vote pattern.
#[test]
fn anchored_posteriors_are_probabilities() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA2C ^ case);
        let (m, labels) = dev_matrix(&mut rng);
        let model = AnchoredModel::fit(&m, &labels, None);
        for p in model.predict(&m) {
            assert!((0.0..=1.0).contains(&p) && !p.is_nan(), "case {case}");
        }
        for r in model.rates() {
            assert!(r.pos_given_pos > 0.0 && r.pos_given_pos < 1.0, "case {case}");
            assert!(r.pos_given_pos + r.neg_given_pos <= 1.0 + 1e-9, "case {case}");
            assert!(r.pos_given_neg + r.neg_given_neg <= 1.0 + 1e-9, "case {case}");
        }
    }
}

/// Monotonicity: flipping one abstain to a positive vote from an LF
/// that is positively aligned on dev never lowers the posterior.
#[test]
fn positive_evidence_is_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x900 ^ case);
        let (m, labels) = dev_matrix(&mut rng);
        let model = AnchoredModel::fit(&m, &labels, None);
        // Find an LF whose positive vote carries more positive evidence
        // than its abstain does: the likelihood ratio of the vote must
        // exceed that of abstaining (abstains are informative too in the
        // anchored model).
        let aligned: Vec<usize> = model
            .rates()
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                let abstain_pos = (1.0 - r.pos_given_pos - r.neg_given_pos).max(1e-9);
                let abstain_neg = (1.0 - r.pos_given_neg - r.neg_given_neg).max(1e-9);
                r.pos_given_pos / r.pos_given_neg >= abstain_pos / abstain_neg
            })
            .map(|(j, _)| j)
            .collect();
        let Some(&j) = aligned.first() else {
            continue; // analogue of prop_assume!: skip unusable draws
        };
        // Build two one-row matrices: all abstain vs positive vote at j.
        let n_lfs = m.n_lfs();
        let names: Vec<String> = m.names().to_vec();
        let base = LabelMatrix::from_votes(1, n_lfs, vec![0; n_lfs], names.clone());
        let mut votes = vec![0i8; n_lfs];
        votes[j] = 1;
        let boosted = LabelMatrix::from_votes(1, n_lfs, votes, names);
        let p_base = model.predict(&base)[0];
        let p_boost = model.predict(&boosted)[0];
        assert!(
            p_boost >= p_base - 1e-12,
            "case {case}: aligned positive vote lowered posterior: {p_base} -> {p_boost}"
        );
    }
}

/// Majority vote only emits {0, 0.5, 1} and matches the sign of the
/// vote sum.
#[test]
fn majority_vote_is_sign_of_sum() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5160 ^ case);
        let (m, _labels) = dev_matrix(&mut rng);
        let mv = majority_vote(&m);
        for (r, &value) in mv.iter().enumerate() {
            let sum: i32 = m.row(r).iter().map(|&v| i32::from(v)).sum();
            let expected = match sum.signum() {
                1 => 1.0,
                -1 => 0.0,
                _ => 0.5,
            };
            assert_eq!(value, expected, "case {case}");
        }
    }
}

/// Fitting is invariant to row order of the dev set.
#[test]
fn anchored_fit_is_row_order_invariant() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0238 ^ case);
        let (m, labels) = dev_matrix(&mut rng);
        let model = AnchoredModel::fit(&m, &labels, None);
        // Reverse the rows.
        let n = m.n_rows();
        let n_lfs = m.n_lfs();
        let mut votes = Vec::with_capacity(n * n_lfs);
        for r in (0..n).rev() {
            votes.extend_from_slice(m.row(r));
        }
        let reversed = LabelMatrix::from_votes(n, n_lfs, votes, m.names().to_vec());
        let rev_labels: Vec<Label> = labels.iter().rev().copied().collect();
        let model_rev = AnchoredModel::fit(&reversed, &rev_labels, None);
        for (a, b) in model.rates().iter().zip(model_rev.rates()) {
            assert!((a.pos_given_pos - b.pos_given_pos).abs() < 1e-12, "case {case}");
            assert!((a.neg_given_neg - b.neg_given_neg).abs() < 1e-12, "case {case}");
        }
    }
}
