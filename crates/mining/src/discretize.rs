//! Quantile discretization of numeric features, so threshold rules can be
//! mined like categorical values.

use cm_featurespace::FeatureTable;

/// Quantile-binned view of one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    /// Source column.
    pub column: usize,
    /// Interior bin edges (ascending); `edges.len() + 1` bins.
    pub edges: Vec<f64>,
}

impl Discretizer {
    /// Fits `n_bins` quantile bins over the present values of `column`.
    /// Duplicate edges (heavy ties) are collapsed, so the effective bin
    /// count may be smaller. Returns `None` if the column has no present
    /// values.
    ///
    /// # Panics
    /// Panics if `n_bins < 2`.
    pub fn fit(table: &FeatureTable, column: usize, n_bins: usize) -> Option<Self> {
        let values: Vec<f64> = (0..table.len()).filter_map(|r| table.numeric(r, column)).collect();
        Self::fit_values(column, values, n_bins)
    }

    /// Fits quantile bins from a pre-collected value vector — the entry
    /// point for segment streaming, where present values are gathered
    /// incrementally and fitted once at the end. `fit` on a whole table is
    /// exactly this on the values collected in row order; the quantile
    /// edges depend only on the sorted multiset, so any collection order
    /// yields identical bins. Returns `None` on an empty vector.
    ///
    /// # Panics
    /// Panics if `n_bins < 2`.
    pub fn fit_values(column: usize, mut values: Vec<f64>, n_bins: usize) -> Option<Self> {
        assert!(n_bins >= 2, "need at least two bins");
        if values.is_empty() {
            return None;
        }
        values.sort_unstable_by(f64::total_cmp);
        let mut edges = Vec::with_capacity(n_bins - 1);
        for k in 1..n_bins {
            let idx = (k * values.len()) / n_bins;
            let edge = values[idx.min(values.len() - 1)];
            if edges.last() != Some(&edge) {
                edges.push(edge);
            }
        }
        Some(Self { column, edges })
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.edges.len() + 1
    }

    /// Bin index for a value.
    pub fn bin(&self, value: f64) -> u32 {
        self.edges.partition_point(|&e| e <= value) as u32
    }

    /// Inclusive value range of a bin: `(lower, upper)`, unbounded ends as
    /// `None`.
    pub fn bin_range(&self, bin: u32) -> (Option<f64>, Option<f64>) {
        let bin = bin as usize;
        let lower = if bin == 0 { None } else { Some(self.edges[bin - 1]) };
        let upper = self.edges.get(bin).copied();
        (lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode};

    use super::*;

    fn table(values: &[Option<f64>]) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::numeric(
            "n",
            FeatureSet::A,
            ServingMode::Servable,
        )]));
        let mut t = FeatureTable::new(schema);
        for v in values {
            t.push_row(&[v.map_or(FeatureValue::Missing, FeatureValue::Numeric)]);
        }
        t
    }

    #[test]
    fn quartiles_of_uniform_sequence() {
        let t = table(&(0..100).map(|i| Some(f64::from(i))).collect::<Vec<_>>());
        let d = Discretizer::fit(&t, 0, 4).unwrap();
        assert_eq!(d.n_bins(), 4);
        assert_eq!(d.bin(0.0), 0);
        assert_eq!(d.bin(30.0), 1);
        assert_eq!(d.bin(60.0), 2);
        assert_eq!(d.bin(99.0), 3);
    }

    #[test]
    fn bins_partition_the_line() {
        let t = table(&(0..50).map(|i| Some(f64::from(i) * 0.1)).collect::<Vec<_>>());
        let d = Discretizer::fit(&t, 0, 5).unwrap();
        // Every value falls in exactly one bin and bins are monotone.
        let mut prev = 0;
        for i in 0..50 {
            let b = d.bin(f64::from(i) * 0.1);
            assert!(b >= prev);
            assert!(b < d.n_bins() as u32);
            prev = b;
        }
    }

    #[test]
    fn ties_collapse_edges() {
        let t = table(&vec![Some(1.0); 100]);
        let d = Discretizer::fit(&t, 0, 4).unwrap();
        assert_eq!(d.n_bins(), 2); // single distinct edge survives
    }

    #[test]
    fn missing_only_column_yields_none() {
        let t = table(&[None, None]);
        assert!(Discretizer::fit(&t, 0, 4).is_none());
    }

    #[test]
    fn bin_ranges_cover_and_order() {
        let t = table(&(0..100).map(|i| Some(f64::from(i))).collect::<Vec<_>>());
        let d = Discretizer::fit(&t, 0, 4).unwrap();
        let (lo0, hi0) = d.bin_range(0);
        assert!(lo0.is_none());
        let (lo_last, hi_last) = d.bin_range(d.n_bins() as u32 - 1);
        assert!(hi_last.is_none());
        assert!(hi0.unwrap() <= lo_last.unwrap() || d.n_bins() == 2);
    }

    #[test]
    fn values_outside_training_range_clamp_to_end_bins() {
        let t = table(&(0..10).map(|i| Some(f64::from(i))).collect::<Vec<_>>());
        let d = Discretizer::fit(&t, 0, 2).unwrap();
        assert_eq!(d.bin(-100.0), 0);
        assert_eq!(d.bin(100.0), d.n_bins() as u32 - 1);
    }
}
