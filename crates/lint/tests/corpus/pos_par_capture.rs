//@ path: crates/demo/src/par.rs
//! Positive: impure closures handed to the cm-par entry points — an
//! interior-mutable capture, a direct ambient effect, and an effect
//! reached transitively through a named helper.

use std::cell::RefCell;
use std::env;

fn seed_from_env() -> u64 {
    env::var("CM_SEED").map(|s| s.len() as u64).unwrap_or(0)
}

pub fn race(items: &[u64]) -> Vec<u64> {
    let total: RefCell<u64> = RefCell::new(0);
    cm_par::par_map(items.len(), |i| {
        *total.borrow_mut() += items[i];
        items[i]
    })
}

pub fn ambient(items: &[u64]) -> Vec<u64> {
    cm_par::par_map(items.len(), |i| items[i] ^ seed_from_env())
}

pub fn direct(items: &[u64]) -> Vec<u64> {
    cm_par::par_map(items.len(), |i| {
        items[i] ^ env::var("CM_K").map(|s| s.len() as u64).unwrap_or(0)
    })
}
