//! Pairwise similarity over the common feature space (paper §4.4,
//! Algorithm 1).
//!
//! Algorithm 1 as printed accumulates a numeric *distance* (any norm of the
//! difference) and a categorical Jaccard *similarity* into one weight, with
//! the text noting "each feature's contribution is normalized in lines 5 and
//! 7, which we omit for simplicity." We provide both:
//!
//! - [`algorithm1_weight`] — the literal pseudocode, for fidelity and tests;
//! - [`normalized_similarity`] — the normalized form used by the propagation
//!   graph: each shared, present feature contributes a value in `[0, 1]`
//!   (numeric via a scaled RBF of the absolute difference, categorical via
//!   Jaccard, embeddings via shifted cosine), averaged over contributing
//!   features.

use crate::table::FeatureTable;
use crate::value::FeatureKind;

/// Configuration for [`normalized_similarity`].
#[derive(Debug, Clone)]
pub struct SimilarityConfig {
    /// Per-numeric-feature scale: `sim = exp(-|a - b| / scale)`. Defaults to
    /// 1.0 per feature; fit from data with [`SimilarityConfig::fit_scales`].
    pub numeric_scales: Vec<(usize, f64)>,
    /// Columns to compare. Pairs with no shared present feature get weight 0.
    pub columns: Vec<usize>,
}

impl SimilarityConfig {
    /// Uses the given columns with unit numeric scales.
    pub fn uniform(columns: Vec<usize>) -> Self {
        Self { numeric_scales: Vec::new(), columns }
    }

    /// Fits per-column numeric scales to the mean absolute deviation of each
    /// numeric column in `table`, so one wide-ranged statistic (e.g. view
    /// counts) cannot dominate the weight — the normalization Algorithm 1
    /// alludes to.
    pub fn fit_scales(mut self, table: &FeatureTable) -> Self {
        let schema = table.schema();
        self.numeric_scales.clear();
        for &col in &self.columns {
            // Out-of-range columns are skipped here; `cm-check` validates
            // column lists against the schema before execution.
            if schema.def(col).map(|d| d.kind) != Some(FeatureKind::Numeric) {
                continue;
            }
            let mut values = Vec::new();
            for r in 0..table.len() {
                if let Some(v) = table.numeric(r, col) {
                    values.push(v);
                }
            }
            if values.is_empty() {
                continue;
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let mad = values.iter().map(|v| (v - mean).abs()).sum::<f64>() / values.len() as f64;
            self.numeric_scales.push((col, mad.max(1e-9)));
        }
        self
    }

    fn scale_for(&self, col: usize) -> f64 {
        self.numeric_scales.iter().find(|(c, _)| *c == col).map_or(1.0, |(_, s)| *s)
    }
}

/// The literal Algorithm 1 weight: sum of `|a - b|` over shared numeric
/// features and Jaccard over shared categorical features. Embedding and
/// missing features are skipped (the paper's F is "the set of all features
/// instantiated by F_i, F_j").
pub fn algorithm1_weight(
    a: (&FeatureTable, usize),
    b: (&FeatureTable, usize),
    columns: &[usize],
) -> f64 {
    let (ta, ra) = a;
    let (tb, rb) = b;
    debug_assert_eq!(ta.schema().len(), tb.schema().len(), "schema mismatch");
    let mut w = 0.0;
    for &col in columns {
        let Some(def) = ta.schema().def(col) else {
            // Out-of-range columns are skipped; `cm-check` validates column
            // lists against the schema before execution.
            continue;
        };
        match def.kind {
            FeatureKind::Numeric => {
                if let (Some(x), Some(y)) = (ta.numeric(ra, col), tb.numeric(rb, col)) {
                    w += (x - y).abs();
                }
            }
            FeatureKind::Categorical => {
                if let (Some(x), Some(y)) = (ta.categorical(ra, col), tb.categorical(rb, col)) {
                    w += jaccard_ids(x, y);
                }
            }
            FeatureKind::Embedding { .. } => {}
        }
    }
    w
}

/// Normalized similarity in `[0, 1]`: the mean per-feature similarity over
/// features present in *both* rows. Returns 0.0 when no feature is shared.
pub fn normalized_similarity(
    a: (&FeatureTable, usize),
    b: (&FeatureTable, usize),
    config: &SimilarityConfig,
) -> f64 {
    let (ta, ra) = a;
    let (tb, rb) = b;
    debug_assert_eq!(ta.schema().len(), tb.schema().len(), "schema mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for &col in &config.columns {
        let Some(def) = ta.schema().def(col) else {
            continue;
        };
        match def.kind {
            FeatureKind::Numeric => {
                if let (Some(x), Some(y)) = (ta.numeric(ra, col), tb.numeric(rb, col)) {
                    let scale = config.scale_for(col);
                    total += (-(x - y).abs() / scale).exp();
                    count += 1;
                }
            }
            FeatureKind::Categorical => {
                if let (Some(x), Some(y)) = (ta.categorical(ra, col), tb.categorical(rb, col)) {
                    total += jaccard_ids(x, y);
                    count += 1;
                }
            }
            FeatureKind::Embedding { .. } => {
                if let (Some(x), Some(y)) = (ta.embedding(ra, col), tb.embedding(rb, col)) {
                    total += 0.5 * (cosine(x, y) + 1.0);
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Jaccard similarity over two sorted id slices; both empty counts as 1.0.
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    let (mut i, mut j, mut inter) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    let denom = (na * nb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        (dot / denom).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::schema::{FeatureDef, FeatureSchema, FeatureSet, ServingMode};
    use crate::value::{CatSet, FeatureValue};
    use crate::vocab::Vocabulary;

    fn table() -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["a", "b", "c"]),
            ),
            FeatureDef::embedding("e", 2, FeatureSet::ModalitySpecific, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        // row 0 and 1: identical; row 2: different everywhere; row 3: mostly missing
        t.push_row(&[
            FeatureValue::Numeric(1.0),
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 1])),
            FeatureValue::Embedding(vec![1.0, 0.0]),
        ]);
        t.push_row(&[
            FeatureValue::Numeric(1.0),
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 1])),
            FeatureValue::Embedding(vec![1.0, 0.0]),
        ]);
        t.push_row(&[
            FeatureValue::Numeric(10.0),
            FeatureValue::Categorical(CatSet::single(2)),
            FeatureValue::Embedding(vec![-1.0, 0.0]),
        ]);
        t.push_row(&[FeatureValue::Missing, FeatureValue::Missing, FeatureValue::Missing]);
        t
    }

    #[test]
    fn paper_worked_example() {
        // Paper §4.4: F_t = (True, outdoor), F_i = (False, outdoor) gives
        // weight 1 (jaccard(True,False)=0 + jaccard(outdoor,outdoor)=1).
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "profanity",
                FeatureSet::A,
                ServingMode::Servable,
                Vocabulary::from_names(["false", "true"]),
            ),
            FeatureDef::categorical(
                "setting",
                FeatureSet::A,
                ServingMode::Servable,
                Vocabulary::from_names(["outdoor", "indoor"]),
            ),
        ]));
        let mut t = FeatureTable::new(schema);
        t.push_row(&[
            FeatureValue::Categorical(CatSet::single(1)),
            FeatureValue::Categorical(CatSet::single(0)),
        ]);
        t.push_row(&[
            FeatureValue::Categorical(CatSet::single(0)),
            FeatureValue::Categorical(CatSet::single(0)),
        ]);
        let w = algorithm1_weight((&t, 0), (&t, 1), &[0, 1]);
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_rows_have_max_normalized_similarity() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        let s = normalized_similarity((&t, 0), (&t, 1), &cfg);
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn dissimilar_rows_score_lower() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        let close = normalized_similarity((&t, 0), (&t, 1), &cfg);
        let far = normalized_similarity((&t, 0), (&t, 2), &cfg);
        assert!(far < close);
        assert!(far >= 0.0);
    }

    #[test]
    fn all_missing_pair_scores_zero() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        assert_eq!(normalized_similarity((&t, 0), (&t, 3), &cfg), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        for i in 0..t.len() {
            for j in 0..t.len() {
                let ij = normalized_similarity((&t, i), (&t, j), &cfg);
                let ji = normalized_similarity((&t, j), (&t, i), &cfg);
                assert!((ij - ji).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fitted_scales_tame_wide_numerics() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0]).fit_scales(&t);
        // With MAD-fitted scale, |1-10| should not drive similarity to ~0
        // as hard as with unit scale.
        let unit = SimilarityConfig::uniform(vec![0]);
        let s_fit = normalized_similarity((&t, 0), (&t, 2), &cfg);
        let s_unit = normalized_similarity((&t, 0), (&t, 2), &unit);
        assert!(s_fit > s_unit);
    }

    #[test]
    fn similarity_bounded_in_unit_interval() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]).fit_scales(&t);
        for i in 0..t.len() {
            for j in 0..t.len() {
                let s = normalized_similarity((&t, i), (&t, j), &cfg);
                assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
            }
        }
    }

    #[test]
    fn jaccard_ids_edge_cases() {
        assert_eq!(jaccard_ids(&[], &[]), 1.0);
        assert_eq!(jaccard_ids(&[1], &[]), 0.0);
        assert_eq!(jaccard_ids(&[1, 2], &[2, 3]), 1.0 / 3.0);
    }
}
