//@ path: crates/demo/src/lib.rs
// Seeded negative (nondet-iteration): point lookups, membership tests,
// inserts, and length reads on hash collections are order-free.

use std::collections::{HashMap, HashSet};

pub fn f(keys: &[String]) -> usize {
    let mut m: HashMap<String, u32> = HashMap::new();
    let mut s: HashSet<u32> = HashSet::new();
    for k in keys {
        m.insert(k.clone(), 1);
        s.insert(k.len() as u32);
    }
    let mut total = 0;
    for i in 0..m.len() {
        total += i;
    }
    if m.contains_key("x") && s.contains(&3) {
        total += m.get("x").copied().unwrap_or(0) as usize;
    }
    total + s.len()
}
