//! `cm-par`: the workspace's deterministic parallel substrate.
//!
//! Every expensive stage of the pipeline (Apriori support counting, LF
//! application, label-model EM, graph construction, GEMMs, gradient
//! accumulation, bootstrap resampling) funnels through the four primitives
//! in this crate instead of hand-rolled `std::thread::scope` blocks; the
//! `xtask lint` gate bans raw threading in every other library crate.
//!
//! ## Determinism contract
//!
//! Probabilistic-label pipelines are sensitive to floating-point reduction
//! order, so parallel results here are **bit-for-bit identical** to the
//! serial (`threads = 1`) results, and independent of the thread count:
//!
//! - Work is split into contiguous chunks whose boundaries depend only on
//!   the item count and the caller's `min_chunk` — never on the number of
//!   threads. `threads = 1` and `threads = 64` produce the same chunks.
//! - Chunk results are merged **in chunk index order**, never in
//!   first-finished order, so a chunked float fold performs the same
//!   additions in the same sequence regardless of scheduling.
//! - The serial fallback executes the same chunk plan inline, so switching
//!   thread counts never changes a single arithmetic operation, only which
//!   thread performs it.
//!
//! ## Panic propagation
//!
//! A panicking closure never aborts the process: the panic is captured,
//! every worker is joined, and the first payload is surfaced to the caller
//! as a [`ParError`] (convertible to the workspace `CmError`, kind
//! `panic`). The substrate holds no poisoned state — the next call works,
//! which the property tests in `tests/` pin.
//!
//! ## Configuration
//!
//! [`ParConfig::from_env`] reads `CM_THREADS` (falling back to the
//! machine's available parallelism, clamped to 8). `threads = 1` runs
//! everything inline on the caller's thread.

use std::any::Any;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Upper bound on chunks per operation. Fixed (never thread-derived) so the
/// chunk plan — and therefore every chunked float fold — is identical at
/// any thread count.
const MAX_CHUNKS: usize = 64;

/// Hard cap on worker threads, matching the pre-existing ad-hoc sites.
const MAX_THREADS: usize = 8;

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "CM_THREADS";

/// Worker-pool configuration for one parallel operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParConfig {
    threads: usize,
    min_chunk: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ParConfig {
    /// Configuration from the environment: `CM_THREADS` if set and valid
    /// (clamped to `1..=64`), otherwise the machine's available
    /// parallelism clamped to `1..=8`.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|t| t.clamp(1, 64))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
                    .clamp(1, MAX_THREADS)
            });
        Self { threads, min_chunk: 1 }
    }

    /// Explicit worker count (`0` is treated as `1`).
    pub fn threads(threads: usize) -> Self {
        Self { threads: threads.max(1), min_chunk: 1 }
    }

    /// Serial execution on the caller's thread.
    pub fn serial() -> Self {
        Self::threads(1)
    }

    /// Sets the minimum items per chunk (`0` is treated as `1`). Chunk
    /// boundaries depend only on this and the item count, so callers that
    /// need bit-stable folds must pass the same value at every thread
    /// count (the env-driven wrappers in the pipeline crates hard-code it
    /// per call site).
    pub fn with_min_chunk(mut self, min_chunk: usize) -> Self {
        self.min_chunk = min_chunk.max(1);
        self
    }

    /// Configured worker count.
    pub fn n_threads(&self) -> usize {
        self.threads
    }

    /// Configured minimum chunk size.
    pub fn min_chunk(&self) -> usize {
        self.min_chunk
    }

    /// The thread-count-independent chunk plan for `n` items: chunk size
    /// and chunk count.
    fn plan(&self, n: usize) -> (usize, usize) {
        let size = self.min_chunk.max(n.div_ceil(MAX_CHUNKS)).max(1);
        (size, n.div_ceil(size))
    }
}

/// A captured worker panic (the only error this crate produces; argument
/// misuse is a programming bug and asserts instead).
pub struct ParError {
    message: String,
    payload: Option<Box<dyn Any + Send + 'static>>,
}

impl ParError {
    fn from_payload(payload: Box<dyn Any + Send + 'static>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker panicked with a non-string payload".to_owned()
        };
        Self { message, payload: Some(payload) }
    }

    /// Human-readable panic message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Re-raises the original panic on the calling thread. Wrappers with
    /// infallible signatures (e.g. `Matrix::matmul`) use this so a worker
    /// panic behaves exactly like the serial code panicking in place.
    pub fn resume(self) -> ! {
        match self.payload {
            Some(p) => std::panic::resume_unwind(p),
            None => std::panic::resume_unwind(Box::new(self.message)),
        }
    }
}

impl fmt::Debug for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ParError {{ message: {:?} }}", self.message)
    }
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel worker panicked: {}", self.message)
    }
}

impl std::error::Error for ParError {}

/// Result of a parallel operation.
pub type ParResult<T> = Result<T, ParError>;

/// Maps contiguous index ranges (the deterministic chunk plan for
/// `n_items`) through `f` and returns the per-chunk results **in chunk
/// order**. The workhorse under every other primitive.
pub fn par_map_chunks<R, F>(config: &ParConfig, n_items: usize, f: F) -> ParResult<Vec<R>>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n_items == 0 {
        return Ok(Vec::new());
    }
    let (chunk_size, n_chunks) = config.plan(n_items);
    let n_workers = config.threads.min(n_chunks);
    let chunk_range = |c: usize| c * chunk_size..((c + 1) * chunk_size).min(n_items);
    if n_workers <= 1 {
        // Same chunk plan, executed inline in chunk order.
        return catch_unwind(AssertUnwindSafe(|| {
            (0..n_chunks).map(|c| f(chunk_range(c))).collect()
        }))
        .map_err(ParError::from_payload);
    }
    let mut merged: Vec<(usize, R)> = Vec::with_capacity(n_chunks);
    let mut first_panic: Option<ParError> = None;
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                scope.spawn(move || {
                    // Static round-robin chunk assignment; results carry
                    // their chunk index so merge order never depends on
                    // scheduling.
                    let mut out = Vec::new();
                    let mut c = w;
                    while c < n_chunks {
                        out.push((c, f(chunk_range(c))));
                        c += n_workers;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => merged.extend(part),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(ParError::from_payload(payload));
                    }
                }
            }
        }
    });
    if let Some(e) = first_panic {
        return Err(e);
    }
    merged.sort_unstable_by_key(|&(c, _)| c);
    Ok(merged.into_iter().map(|(_, r)| r).collect())
}

/// Maps every index in `0..n_items` through `f`; results are returned in
/// index order. Purely elementwise, so the output is identical to the
/// sequential map at any thread count and chunk size.
pub fn par_map<R, F>(config: &ParConfig, n_items: usize, f: F) -> ParResult<Vec<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunks = par_map_chunks(config, n_items, |range| range.map(&f).collect::<Vec<R>>())?;
    let mut out = Vec::with_capacity(n_items);
    for chunk in chunks {
        out.extend(chunk);
    }
    Ok(out)
}

/// Maps each chunk of the deterministic plan to a partial accumulator and
/// folds the partials **in chunk index order** (left to right). Returns
/// `None` only when `n_items == 0`. Because the chunk plan and the fold
/// order are both thread-count-independent, floating-point reductions
/// through this function are bit-stable across `CM_THREADS` settings.
pub fn par_map_reduce<A, M, F>(
    config: &ParConfig,
    n_items: usize,
    map: M,
    mut fold: F,
) -> ParResult<Option<A>>
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    F: FnMut(A, A) -> A,
{
    let partials = par_map_chunks(config, n_items, map)?;
    let mut acc: Option<A> = None;
    for part in partials {
        acc = Some(match acc {
            Some(a) => fold(a, part),
            None => part,
        });
    }
    Ok(acc)
}

/// Splits `data` into chunks of whole `unit`-element records (rows) along
/// the deterministic plan and hands each chunk to `f` together with the
/// index of its first record. Chunks are disjoint `&mut` views, so writes
/// race-free by construction and the result is identical at any thread
/// count.
///
/// # Panics
/// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`
/// (programming bugs, not data errors).
pub fn par_chunks_mut<T, F>(config: &ParConfig, data: &mut [T], unit: usize, f: F) -> ParResult<()>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "record unit must be positive");
    assert_eq!(data.len() % unit, 0, "data length {} is not a multiple of {unit}", data.len());
    let n_records = data.len() / unit;
    if n_records == 0 {
        return Ok(());
    }
    let (chunk_size, n_chunks) = config.plan(n_records);
    let n_workers = config.threads.min(n_chunks);
    if n_workers <= 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            for (c, chunk) in data.chunks_mut(chunk_size * unit).enumerate() {
                f(c * chunk_size, chunk);
            }
        }))
        .map_err(ParError::from_payload);
    }
    // Round-robin the chunk slices across workers.
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..n_workers).map(|_| Vec::new()).collect();
    for (c, chunk) in data.chunks_mut(chunk_size * unit).enumerate() {
        buckets[c % n_workers].push((c * chunk_size, chunk));
    }
    let mut first_panic: Option<ParError> = None;
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    for (start, chunk) in bucket {
                        f(start, chunk);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                if first_panic.is_none() {
                    first_panic = Some(ParError::from_payload(payload));
                }
            }
        }
    });
    match first_panic {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_thread_count_independent() {
        for n in [0usize, 1, 7, 64, 65, 1000, 1_000_000] {
            let a = ParConfig::threads(1).with_min_chunk(16).plan(n);
            let b = ParConfig::threads(8).with_min_chunk(16).plan(n);
            assert_eq!(a, b, "plan for n = {n}");
        }
    }

    #[test]
    fn plan_respects_min_chunk_and_cap() {
        let cfg = ParConfig::threads(4).with_min_chunk(10);
        let (size, chunks) = cfg.plan(25);
        assert_eq!(size, 10);
        assert_eq!(chunks, 3);
        // Large inputs are capped at MAX_CHUNKS chunks.
        let (size, chunks) = ParConfig::threads(4).plan(1_000_000);
        assert_eq!(chunks, MAX_CHUNKS);
        assert_eq!(size, 1_000_000_usize.div_ceil(MAX_CHUNKS));
    }

    #[test]
    fn par_map_matches_sequential() {
        let cfg = ParConfig::threads(4).with_min_chunk(3);
        let got = par_map(&cfg, 100, |i| i * i).into_iter().flatten().collect::<Vec<_>>();
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_chunks_preserves_chunk_order() {
        let cfg = ParConfig::threads(4).with_min_chunk(4);
        let chunks =
            par_map_chunks(&cfg, 10, |r| r.start).into_iter().flatten().collect::<Vec<_>>();
        assert_eq!(chunks, vec![0, 4, 8]);
    }

    #[test]
    fn par_map_reduce_is_bit_stable_across_thread_counts() {
        // A float sum whose result depends on grouping: identical plans and
        // in-order folds must give bit-identical totals.
        let value = |i: usize| 1.0f64 / (i as f64 + 1.0);
        let sum = |threads: usize| {
            let cfg = ParConfig::threads(threads).with_min_chunk(7);
            par_map_reduce(&cfg, 10_001, |r| r.map(value).sum::<f64>(), |a, b| a + b)
        };
        let s1 = sum(1).into_iter().flatten().next();
        let s4 = sum(4).into_iter().flatten().next();
        let s8 = sum(8).into_iter().flatten().next();
        assert_eq!(s1.map(f64::to_bits), s4.map(f64::to_bits));
        assert_eq!(s4.map(f64::to_bits), s8.map(f64::to_bits));
    }

    #[test]
    fn par_chunks_mut_fills_every_record() {
        let cfg = ParConfig::threads(3).with_min_chunk(2);
        let mut data = vec![0usize; 14 * 3];
        let r = par_chunks_mut(&cfg, &mut data, 3, |start, chunk| {
            for (k, rec) in chunk.chunks_exact_mut(3).enumerate() {
                rec.fill(start + k);
            }
        });
        assert!(r.is_ok());
        let want: Vec<usize> = (0..14).flat_map(|i| [i, i, i]).collect();
        assert_eq!(data, want);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let cfg = ParConfig::threads(4);
        assert!(par_map(&cfg, 0, |i| i).into_iter().next().is_some_and(|v| v.is_empty()));
        let folded = par_map_reduce(&cfg, 0, |r| r.len(), |a, b| a + b);
        assert!(matches!(folded, Ok(None)));
        let mut empty: Vec<u8> = Vec::new();
        assert!(par_chunks_mut(&cfg, &mut empty, 4, |_, _| {}).is_ok());
    }

    #[test]
    fn panic_surfaces_as_error_serial_and_parallel() {
        for threads in [1usize, 4] {
            let cfg = ParConfig::threads(threads).with_min_chunk(2);
            let r = par_map(&cfg, 32, |i| {
                assert!(i != 17, "seeded failure at 17");
                i
            });
            let e = match r {
                Err(e) => e,
                Ok(_) => unreachable!("index 17 must panic"),
            };
            assert!(e.message().contains("seeded failure"), "message: {}", e.message());
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn chunks_mut_rejects_ragged_data() {
        let mut data = vec![0u8; 7];
        let _ = par_chunks_mut(&ParConfig::serial(), &mut data, 3, |_, _| {});
    }
}
