//! # cm-span
//!
//! Byte/line/col source positions shared across the static-analysis
//! gates: `cm-lint`'s lexer produces [`Span`]-carrying tokens, `cm-json`'s
//! spanned parser attaches a [`Span`] to every JSON node, and `cm-check`'s
//! violations point back into scenario-spec files through them.
//!
//! A [`Span`] is self-contained — it caches the 1-based line/column of its
//! first character next to the byte range, so diagnostics can render
//! `path:line:col` without re-scanning the source. [`LineMap`] converts
//! byte offsets into line/column positions for producers (like a
//! byte-oriented parser) that do not track them incrementally.

use std::fmt;

/// A source region: byte range plus the 1-based line/column of its start.
///
/// Columns count **characters**, not bytes, matching the lint engine's
/// long-standing diagnostic convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub byte: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Span {
    /// Builds a span from its four coordinates.
    #[must_use]
    pub fn new(byte: usize, end: usize, line: u32, col: u32) -> Self {
        Self { byte, end, line, col }
    }

    /// Length of the region in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.byte)
    }

    /// True when the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.byte
    }

    /// The region's text within its source.
    #[must_use]
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.byte..self.end).unwrap_or("")
    }

    /// A span covering from the start of `self` to the end of `other`.
    #[must_use]
    pub fn to(&self, other: Span) -> Span {
        Span { byte: self.byte, end: other.end.max(self.end), line: self.line, col: self.col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Byte-offset → line/column conversion for one source text.
///
/// Construction is `O(len)`; each lookup is a binary search over line
/// starts plus a character count within the line, so producers that only
/// track byte offsets (e.g. a JSON parser) can mint [`Span`]s lazily.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the first character of each line; `[0]` is always 0.
    line_starts: Vec<usize>,
}

impl LineMap {
    /// Indexes `source`'s line starts.
    #[must_use]
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0usize];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { line_starts }
    }

    /// 1-based (line, column-in-characters) of the byte offset. Offsets
    /// past the end of `source` clamp to one past its last character.
    #[must_use]
    pub fn line_col(&self, source: &str, byte: usize) -> (u32, u32) {
        let byte = byte.min(source.len());
        let line_idx = match self.line_starts.binary_search(&byte) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = self.line_starts[line_idx];
        let col = source.get(start..byte).map_or(1, |s| s.chars().count() + 1);
        (line_idx as u32 + 1, col as u32)
    }

    /// Builds a [`Span`] for the byte range `byte..end`.
    #[must_use]
    pub fn span(&self, source: &str, byte: usize, end: usize) -> Span {
        let (line, col) = self.line_col(source, byte);
        Span { byte, end, line, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_map_finds_lines_and_columns() {
        let src = "ab\ncde\n\nf";
        let map = LineMap::new(src);
        assert_eq!(map.line_col(src, 0), (1, 1));
        assert_eq!(map.line_col(src, 1), (1, 2));
        assert_eq!(map.line_col(src, 3), (2, 1));
        assert_eq!(map.line_col(src, 5), (2, 3));
        assert_eq!(map.line_col(src, 7), (3, 1));
        assert_eq!(map.line_col(src, 8), (4, 1));
        // Past-the-end clamps.
        assert_eq!(map.line_col(src, 99), (4, 2));
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        let src = "é x";
        let map = LineMap::new(src);
        // 'é' is two bytes; the 'x' sits at byte 3, character column 3.
        assert_eq!(map.line_col(src, 3), (1, 3));
    }

    #[test]
    fn span_slice_and_join() {
        let src = "hello world";
        let map = LineMap::new(src);
        let a = map.span(src, 0, 5);
        let b = map.span(src, 6, 11);
        assert_eq!(a.slice(src), "hello");
        assert_eq!(b.slice(src), "world");
        assert_eq!(a.to(b).slice(src), "hello world");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(format!("{a}"), "1:1");
    }
}
