//! CrossTrainer-style modality reweighting (paper §7.3).
//!
//! "We are exploring domain adaptation as a primitive to help balance
//! between the data modalities under our common feature space" — and the
//! paper cites CrossTrainer (Chen et al., DEEM 2019), which balances a
//! source and target dataset by sweeping a loss weight α. This module
//! implements that primitive for early fusion: the old modality's samples
//! are weighted α and the new modality's `1 − α`, the sweep is scored on a
//! held-out validation slice, and the best α wins. α = 0.5 recovers plain
//! early fusion (up to weight normalization); α → 0 discards the old
//! modality.

use cm_linalg::Matrix;
use cm_models::trainer::train_model_with_weights;
use cm_models::{ModelKind, TrainConfig, TrainedModel};

use crate::{concat_parts, ModalityData};

/// Result of the α sweep.
pub struct ReweightedModel {
    /// Model trained at the winning α.
    pub model: TrainedModel,
    /// Winning weight on the *old* modality.
    pub alpha: f64,
    /// `(alpha, validation AUPRC)` for every swept candidate.
    pub sweep: Vec<(f64, f64)>,
}

impl ReweightedModel {
    /// Positive-class probabilities in the shared layout.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.model.predict_proba(x)
    }
}

/// Trains early-fusion models over `[old, new]` at each candidate α
/// (weighting old rows α and new rows `1 − α`), evaluates AUPRC on the
/// validation slice, and returns the best.
///
/// # Panics
/// Panics if `alphas` is empty, any α is outside `[0, 1]`, shapes
/// mismatch, or the validation slice has no positives.
pub fn reweighted_early_fusion(
    old: &ModalityData,
    new: &ModalityData,
    alphas: &[f64],
    kind: &ModelKind,
    config: &TrainConfig,
    validation: (&Matrix, &[bool]),
) -> ReweightedModel {
    assert!(!alphas.is_empty(), "need at least one alpha candidate");
    assert!(alphas.iter().all(|a| (0.0..=1.0).contains(a)), "alpha must be in [0, 1]");
    let (vx, vy) = validation;
    assert!(vy.iter().any(|&p| p), "validation slice has no positives");
    let (x, targets) = concat_parts(&[old.clone(), new.clone()]);
    let n_old = old.x.rows();

    let mut best: Option<(f64, f64, TrainedModel)> = None; // (auprc, alpha, model)
    let mut sweep = Vec::with_capacity(alphas.len());
    for &alpha in alphas {
        // Normalize so total mass is constant across α (2 units split
        // between the modalities), keeping the learning rate comparable.
        let w_old = 2.0 * alpha;
        let w_new = 2.0 * (1.0 - alpha);
        let weights: Vec<f64> =
            (0..x.rows()).map(|r| if r < n_old { w_old } else { w_new }).collect();
        let model = train_model_with_weights(kind, &x, &targets, Some(&weights), config, None);
        let auprc = cm_eval::auprc(&model.predict_proba(vx), vy);
        sweep.push((alpha, auprc));
        let better = best.as_ref().is_none_or(|(b, _, _)| auprc > *b);
        if better {
            best = Some((auprc, alpha, model));
        }
    }
    // lint: allow(expect) — the assert above guarantees a winner exists
    let (_, alpha, model) = best.expect("alphas is nonempty");
    ReweightedModel { model, alpha, sweep }
}

#[cfg(test)]
mod tests {
    use cm_models::ModelKind;

    use super::*;
    use crate::testutil::two_modality_task;

    #[test]
    fn sweep_covers_candidates_and_picks_the_best() {
        let (old, new, xt, yt) = two_modality_task(400, 31);
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let cfg = TrainConfig { epochs: 10, patience: None, ..TrainConfig::default() };
        let out = reweighted_early_fusion(
            &old,
            &new,
            &[0.1, 0.5, 0.9],
            &ModelKind::Logistic,
            &cfg,
            (&xt, &pos),
        );
        assert_eq!(out.sweep.len(), 3);
        let best_in_sweep =
            out.sweep.iter().cloned().fold(f64::NEG_INFINITY, |acc, (_, a)| acc.max(a));
        let winner = out.sweep.iter().find(|(a, _)| *a == out.alpha).unwrap();
        assert_eq!(winner.1, best_in_sweep);
    }

    #[test]
    fn noisy_old_modality_pushes_alpha_down() {
        // Corrupt the old modality's labels completely; the sweep should
        // prefer a small α (mostly new-modality training).
        let (mut old, new, xt, yt) = two_modality_task(500, 33);
        for t in old.targets.iter_mut() {
            *t = 1.0 - *t; // adversarial labels
        }
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let cfg = TrainConfig { epochs: 10, patience: None, ..TrainConfig::default() };
        let out = reweighted_early_fusion(
            &old,
            &new,
            &[0.1, 0.5, 0.9],
            &ModelKind::Logistic,
            &cfg,
            (&xt, &pos),
        );
        assert!(
            out.alpha < 0.5,
            "alpha {} should shrink when the old modality is adversarial",
            out.alpha
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_out_of_range_alpha() {
        let (old, new, xt, yt) = two_modality_task(60, 1);
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        reweighted_early_fusion(
            &old,
            &new,
            &[1.5],
            &ModelKind::Logistic,
            &TrainConfig::default(),
            (&xt, &pos),
        );
    }
}
