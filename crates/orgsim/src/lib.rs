//! Synthetic organizational world — the substitution substrate for the
//! paper's proprietary Google environment.
//!
//! The paper's evaluation (§6) runs over five production classification
//! tasks with tens of millions of proprietary text/image posts, featurized by
//! fifteen internal services. None of that is available, so this crate builds
//! the closest synthetic equivalent that exercises identical code paths:
//!
//! - [`entity`] — latent entities: each data point has a hidden task label,
//!   a *behavioral archetype* (the paper's "behavioral modes", §4.4), latent
//!   categorical attributes, numeric propensities, and a latent style vector;
//! - [`world`] — the seeded generative world: class-conditional attribute
//!   distributions, per-modality observation noise and *distribution shift*
//!   (the modality gap: each modality has its own entity population, no
//!   one-to-one links), and the service registry;
//! - [`services`] — organizational resources as noisy channels: model-based
//!   services (topic models, object detectors, knowledge-graph entities),
//!   aggregate statistics (user reports, share velocity), and rule-based
//!   services, grouped into the paper's feature sets A–D (§6.2) with
//!   servable/nonservable flags;
//! - [`tasks`] — the five classification-task profiles CT1–CT5, calibrated
//!   to reproduce the qualitative shapes of Tables 1–3;
//! - [`dataset`] — materialized [`ModalityDataset`]s: labeled old-modality
//!   corpora, unlabeled new-modality pools, and held-out test sets.

pub mod dataset;
pub mod entity;
pub mod services;
pub mod tasks;
pub mod world;

pub use dataset::{DatasetStream, ModalityDataset};
pub use entity::{LatentEntity, NumericLatents};
pub use services::{PerModality, ServiceKind, ServiceSpec};
pub use tasks::{TaskConfig, TaskId, TaskProfile};
pub use world::{World, WorldConfig};
