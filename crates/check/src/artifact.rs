//! Artifact checks: structural validation of built in-memory pipeline
//! artifacts (tables, vote matrices, fusion plans, propagation graphs).
//!
//! These are the original cm-check entry points; violations are labeled
//! with a descriptive `location` string (`"pool.table[col topic, row 17]"`)
//! because an in-memory artifact has no source text to span into. The
//! spec-file flavor of each rule — which *does* point at exact byte/line/
//! column positions — lives in [`crate::spec`].

use cm_featurespace::{FeatureKind, FeatureSchema, FeatureTable};
use cm_labelmodel::LabelMatrix;
use cm_propagation::SparseGraph;

use crate::{CheckRule, Violation};

/// How many table rows a full scan inspects before sampling would be
/// needed; all current seed artifacts are far below this.
const MAX_SCANNED_ROWS: usize = 1_000_000;

/// Checks a feature table against the registry schema it is supposed to
/// conform to: column count and per-column identity (name/kind), then a
/// row scan for out-of-vocabulary categorical ids, mis-sized embeddings,
/// and non-finite numerics.
#[must_use]
pub fn check_table(
    table: &FeatureTable,
    expected: &FeatureSchema,
    location: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let actual = table.schema();
    if actual.len() != expected.len() {
        out.push(Violation::new(
            CheckRule::SchemaTableMismatch,
            location,
            format!("table has {} columns, registry schema has {}", actual.len(), expected.len()),
        ));
        // Column identities are meaningless once the counts diverge.
        return out;
    }
    for (c, (have, want)) in actual.defs().iter().zip(expected.defs()).enumerate() {
        if have.name != want.name || have.kind != want.kind {
            out.push(Violation::new(
                CheckRule::SchemaTableMismatch,
                format!("{location}[col {c}]"),
                format!(
                    "column is {:?} {:?}, registry declares {:?} {:?}",
                    have.name, have.kind, want.name, want.kind
                ),
            ));
        }
    }
    if !out.is_empty() {
        return out;
    }
    for r in 0..table.len().min(MAX_SCANNED_ROWS) {
        for (c, def) in expected.defs().iter().enumerate() {
            match def.kind {
                FeatureKind::Categorical => {
                    if let Some(ids) = table.categorical(r, c) {
                        for &id in ids {
                            if id as usize >= def.vocab.len() {
                                out.push(Violation::new(
                                    CheckRule::VocabIndexOutOfBounds,
                                    format!("{location}[col {}, row {r}]", def.name),
                                    format!("id {id} >= vocabulary size {}", def.vocab.len()),
                                ));
                            }
                        }
                    }
                }
                FeatureKind::Embedding { dim } => {
                    if let Some(e) = table.embedding(r, c) {
                        if e.len() != dim {
                            out.push(Violation::new(
                                CheckRule::EmbeddingDimMismatch,
                                format!("{location}[col {}, row {r}]", def.name),
                                format!("stored width {} != declared dim {dim}", e.len()),
                            ));
                        } else if !e.iter().all(|v| v.is_finite()) {
                            out.push(Violation::new(
                                CheckRule::NonFiniteNumeric,
                                format!("{location}[col {}, row {r}]", def.name),
                                "embedding holds a non-finite component".to_owned(),
                            ));
                        }
                    }
                }
                FeatureKind::Numeric => {
                    if let Some(v) = table.numeric(r, c) {
                        if !v.is_finite() {
                            out.push(Violation::new(
                                CheckRule::NonFiniteNumeric,
                                format!("{location}[col {}, row {r}]", def.name),
                                format!("numeric value is {v}"),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Checks an LF vote matrix's shape against the LF registry
/// (`expected_lfs`) and the row count it is supposed to cover, plus vote
/// encoding validity. Degeneracy is a separate check
/// ([`check_lf_degeneracy`]) because it is only meaningful on the dev
/// matrix the LFs were fit on: abstaining on an entire *pool* is
/// legitimate when the pool's modality lacks the LF's source feature.
#[must_use]
pub fn check_vote_matrix(
    m: &LabelMatrix,
    expected_lfs: &[String],
    expected_rows: usize,
    location: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if m.n_lfs() != expected_lfs.len() {
        out.push(Violation::new(
            CheckRule::VoteMatrixShape,
            location,
            format!("matrix has {} LF columns, registry has {}", m.n_lfs(), expected_lfs.len()),
        ));
        return out;
    }
    for (j, (have, want)) in m.names().iter().zip(expected_lfs).enumerate() {
        if have != want {
            out.push(Violation::new(
                CheckRule::VoteMatrixShape,
                format!("{location}[lf {j}]"),
                format!("column is named {have:?}, registry says {want:?}"),
            ));
        }
    }
    if m.n_rows() != expected_rows {
        out.push(Violation::new(
            CheckRule::VoteMatrixShape,
            location,
            format!("matrix covers {} rows, pool has {expected_rows}", m.n_rows()),
        ));
    }
    for r in 0..m.n_rows() {
        for (j, &v) in m.row(r).iter().enumerate() {
            if !(-1..=1).contains(&v) {
                out.push(Violation::new(
                    CheckRule::InvalidVote,
                    format!("{location}[lf {j}, row {r}]"),
                    format!("vote {v} outside {{-1, 0, +1}}"),
                ));
            }
        }
    }
    out
}

/// Flags degenerate LFs in a **dev** vote matrix: all-abstain columns
/// (zero coverage — the label model learns nothing about them) and
/// constant columns (the same non-abstain vote on every row —
/// indistinguishable from a class prior). Run this on the matrix the LFs
/// were fit on, not on a pool matrix.
#[must_use]
pub fn check_lf_degeneracy(m: &LabelMatrix, location: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if m.n_rows() == 0 {
        return out;
    }
    for j in 0..m.n_lfs() {
        let first = m.row(0)[j];
        let constant = (1..m.n_rows()).all(|r| m.row(r)[j] == first);
        if !constant {
            continue;
        }
        let name = &m.names()[j];
        if first == 0 {
            out.push(Violation::new(
                CheckRule::DegenerateLf,
                format!("{location}[lf {name}]"),
                "abstains on every row (zero coverage)".to_owned(),
            ));
        } else if m.n_rows() > 1 {
            out.push(Violation::new(
                CheckRule::DegenerateLf,
                format!("{location}[lf {name}]"),
                format!("votes {first:+} on every row (constant; carries no evidence)"),
            ));
        }
    }
    out
}

/// Which fusion strategy a [`FusionPlan`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionKind {
    /// One model over the concatenated shared layout (§5 early fusion).
    Early,
    /// Per-modality encoders meeting at a fusion layer.
    Intermediate,
    /// Frozen old-modality model + projection from the new modality's
    /// embedding space (§5 DeViSE-style).
    DeVise,
}

/// Static description of a planned fusion computation — just the widths,
/// extracted before any training happens — so the dimension chain can be
/// validated up front.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// Fusion strategy.
    pub kind: FusionKind,
    /// Dense width of each modality part, in training order.
    pub part_dims: Vec<usize>,
    /// DeViSE only: (old-model A embedding width, new-model B embedding
    /// width).
    pub embedding_dims: Option<(usize, usize)>,
    /// DeViSE only: planned projection shape `(src, dst)`; must map B's
    /// embedding space onto A's.
    pub projection: Option<(usize, usize)>,
}

/// Checks a fusion plan's dimension chain: no empty parts, early/DeViSE
/// parts share one dense width, and the DeViSE projection composes
/// `B-embedding -> A-embedding`.
#[must_use]
pub fn check_fusion_plan(plan: &FusionPlan, location: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if plan.part_dims.is_empty() {
        out.push(Violation::new(
            CheckRule::FusionDimChain,
            location,
            "plan has no modality parts".to_owned(),
        ));
        return out;
    }
    for (i, &d) in plan.part_dims.iter().enumerate() {
        if d == 0 {
            out.push(Violation::new(
                CheckRule::FusionDimChain,
                format!("{location}[part {i}]"),
                "modality part encodes to width 0".to_owned(),
            ));
        }
    }
    match plan.kind {
        FusionKind::Early | FusionKind::DeVise => {
            let first = plan.part_dims[0];
            for (i, &d) in plan.part_dims.iter().enumerate().skip(1) {
                if d != first {
                    out.push(Violation::new(
                        CheckRule::FusionDimChain,
                        format!("{location}[part {i}]"),
                        format!(
                            "dense width {d} differs from part 0's width {first}; \
                             shared-layout fusion needs one width"
                        ),
                    ));
                }
            }
        }
        FusionKind::Intermediate => {}
    }
    if plan.kind == FusionKind::DeVise {
        match (plan.embedding_dims, plan.projection) {
            (Some((a_emb, b_emb)), Some((src, dst))) => {
                if src != b_emb {
                    out.push(Violation::new(
                        CheckRule::FusionDimChain,
                        format!("{location}[projection]"),
                        format!(
                            "projection source width {src} != new-model embedding width {b_emb}"
                        ),
                    ));
                }
                if dst != a_emb {
                    out.push(Violation::new(
                        CheckRule::FusionDimChain,
                        format!("{location}[projection]"),
                        format!(
                            "projection target width {dst} != old-model embedding width {a_emb}"
                        ),
                    ));
                }
            }
            _ => out.push(Violation::new(
                CheckRule::FusionDimChain,
                location,
                "DeViSE plan needs both embedding_dims and projection".to_owned(),
            )),
        }
    }
    out
}

/// Checks a propagation graph: every edge must have a reverse edge with
/// an identical weight (the propagation fixed point assumes a symmetric
/// operator), weights must be finite and strictly positive, and no
/// vertex may neighbor itself.
#[must_use]
pub fn check_graph(g: &SparseGraph, location: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for v in 0..g.n_vertices() {
        let (neigh, weights) = g.neighbors(v);
        for (&u, &w) in neigh.iter().zip(weights) {
            let u = u as usize;
            if !w.is_finite() {
                out.push(Violation::new(
                    CheckRule::GraphNonFiniteWeight,
                    format!("{location}[edge {v}->{u}]"),
                    format!("weight is {w}"),
                ));
                continue;
            }
            if w <= 0.0 {
                out.push(Violation::new(
                    CheckRule::GraphInvalidWeight,
                    format!("{location}[edge {v}->{u}]"),
                    format!("weight {w} is not strictly positive"),
                ));
            }
            if u == v {
                out.push(Violation::new(
                    CheckRule::GraphInvalidWeight,
                    format!("{location}[edge {v}->{v}]"),
                    "self-loop".to_owned(),
                ));
                continue;
            }
            if u >= g.n_vertices() {
                out.push(Violation::new(
                    CheckRule::GraphAsymmetry,
                    format!("{location}[edge {v}->{u}]"),
                    format!("neighbor index {u} >= vertex count {}", g.n_vertices()),
                ));
                continue;
            }
            let (back, back_w) = g.neighbors(u);
            match back.iter().position(|&x| x as usize == v) {
                None => out.push(Violation::new(
                    CheckRule::GraphAsymmetry,
                    format!("{location}[edge {v}->{u}]"),
                    "reverse edge missing".to_owned(),
                )),
                Some(pos) => {
                    if (back_w[pos] - w).abs() > f32::EPSILON * w.abs().max(1.0) {
                        out.push(Violation::new(
                            CheckRule::GraphAsymmetry,
                            format!("{location}[edge {v}->{u}]"),
                            format!("reverse weight {} != forward weight {w}", back_w[pos]),
                        ));
                    }
                }
            }
        }
    }
    out
}
