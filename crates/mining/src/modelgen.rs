//! Snuba-style model-based LF generation (the alternative §4.3 rejects).
//!
//! Snuba (Varma & Ré, 2018) generates labeling functions by training small
//! heuristic models over feature subsets and keeping a diverse,
//! high-quality committee. The paper found this "too costly to immediately
//! integrate" with production workflows and used itemset mining instead.
//! This module implements a lightweight Snuba analogue — decision stumps
//! over single features, selected greedily for quality and diversity — so
//! the trade-off can be measured (see the `ablations` bench): stump
//! generation explores thresholds mining's quantile bins miss, at a higher
//! runtime and with more correlated output.

use cm_featurespace::{FeatureKind, FeatureTable, Label};
use cm_labelmodel::{
    CategoricalContainsLf, LabelingFunction, NumericThresholdLf, ThresholdDirection, Vote,
};

/// Configuration for [`generate_stump_lfs`].
#[derive(Debug, Clone)]
pub struct StumpConfig {
    /// Maximum LFs to keep.
    pub max_lfs: usize,
    /// Minimum F1 (on the dev set, for the LF's vote class) to consider a
    /// stump at all.
    pub min_f1: f64,
    /// Maximum Jaccard overlap (of fired rows) with any already-selected
    /// stump — the diversity criterion.
    pub max_overlap: f64,
    /// Candidate thresholds per numeric feature.
    pub n_thresholds: usize,
}

impl Default for StumpConfig {
    fn default() -> Self {
        Self { max_lfs: 30, min_f1: 0.05, max_overlap: 0.8, n_thresholds: 12 }
    }
}

struct Candidate {
    lf: Box<dyn LabelingFunction>,
    f1: f64,
    fired: Vec<bool>,
}

/// Generates decision-stump LFs from a labeled dev table: one candidate per
/// categorical value and per numeric threshold, scored by dev F1 and
/// selected greedily under a pairwise-overlap cap.
///
/// # Panics
/// Panics on label-count mismatch.
pub fn generate_stump_lfs(
    dev: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    config: &StumpConfig,
) -> Vec<Box<dyn LabelingFunction>> {
    assert_eq!(dev.len(), labels.len(), "label count mismatch");
    let n = dev.len();
    let n_pos = labels.iter().filter(|l| l.is_positive()).count();
    let n_neg = n - n_pos;

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut consider = |lf: Box<dyn LabelingFunction>, positive_vote: bool| {
        let mut fired = vec![false; n];
        let mut tp = 0usize;
        let mut fp = 0usize;
        for (r, label) in labels.iter().enumerate() {
            if lf.vote(dev, r) != Vote::Abstain {
                fired[r] = true;
                let correct = label.is_positive() == positive_vote;
                if correct {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let class_total = if positive_vote { n_pos } else { n_neg };
        if tp == 0 || class_total == 0 {
            return;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / class_total as f64;
        let f1 = 2.0 * precision * recall / (precision + recall);
        if f1 >= config.min_f1 && precision > 0.5 {
            candidates.push(Candidate { lf, f1, fired });
        }
    };

    let schema = dev.schema().clone();
    for &col in columns {
        let Some(def) = schema.def(col) else {
            // Out-of-range columns generate no candidates; `cm-check`
            // validates column lists before execution.
            continue;
        };
        match def.kind {
            FeatureKind::Categorical => {
                for id in 0..def.vocab.len() as u32 {
                    for vote in [Vote::Positive, Vote::Negative] {
                        consider(
                            Box::new(CategoricalContainsLf::new(col, vec![id], false, vote)),
                            vote == Vote::Positive,
                        );
                    }
                }
            }
            FeatureKind::Numeric => {
                let mut values: Vec<f64> = (0..n).filter_map(|r| dev.numeric(r, col)).collect();
                if values.is_empty() {
                    continue;
                }
                values.sort_by(f64::total_cmp);
                for k in 1..=config.n_thresholds {
                    let idx = (k * (values.len() - 1)) / (config.n_thresholds + 1);
                    let threshold = values[idx];
                    for (dir, vote) in [
                        (ThresholdDirection::Above, Vote::Positive),
                        (ThresholdDirection::Below, Vote::Negative),
                        (ThresholdDirection::Above, Vote::Negative),
                        (ThresholdDirection::Below, Vote::Positive),
                    ] {
                        consider(
                            Box::new(NumericThresholdLf::new(col, threshold, dir, vote)),
                            vote == Vote::Positive,
                        );
                    }
                }
            }
            FeatureKind::Embedding { .. } => {}
        }
    }

    // Greedy selection: best F1 first, subject to the overlap cap.
    candidates.sort_by(|a, b| b.f1.total_cmp(&a.f1));
    let mut selected: Vec<Candidate> = Vec::new();
    for cand in candidates {
        if selected.len() >= config.max_lfs {
            break;
        }
        let diverse = selected.iter().all(|s| {
            let inter = s.fired.iter().zip(&cand.fired).filter(|(&a, &b)| a && b).count();
            let union = s.fired.iter().zip(&cand.fired).filter(|(&a, &b)| a || b).count();
            union == 0 || (inter as f64 / union as f64) <= config.max_overlap
        });
        if diverse {
            selected.push(cand);
        }
    }
    selected.into_iter().map(|c| c.lf).collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode, Vocabulary,
    };
    use cm_labelmodel::LabelMatrix;

    use super::*;

    fn dev() -> (FeatureTable, Vec<Label>) {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["p", "bg", "n"]),
            ),
            FeatureDef::numeric("s", FeatureSet::A, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..60 {
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(vec![0, 1])),
                FeatureValue::Numeric(10.0 + (i % 5) as f64),
            ]);
            labels.push(Label::Positive);
        }
        for i in 0..540 {
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(vec![1, 2])),
                FeatureValue::Numeric((i % 9) as f64),
            ]);
            labels.push(Label::Negative);
        }
        (t, labels)
    }

    #[test]
    fn stumps_find_both_feature_kinds() {
        let (t, labels) = dev();
        let lfs = generate_stump_lfs(&t, &labels, &[0, 1], &StumpConfig::default());
        assert!(!lfs.is_empty());
        assert!(lfs.iter().any(|l| l.name().starts_with("cat[")), "no categorical stump");
        assert!(lfs.iter().any(|l| l.name().starts_with("num[")), "no numeric stump");
    }

    #[test]
    fn stump_votes_are_accurate_on_dev() {
        let (t, labels) = dev();
        let lfs = generate_stump_lfs(&t, &labels, &[0, 1], &StumpConfig::default());
        let m = LabelMatrix::apply(&t, &lfs);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (r, label) in labels.iter().enumerate() {
            for &v in m.row(r) {
                if v != 0 {
                    total += 1;
                    if (v > 0) == label.is_positive() {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.7, "stump committee accuracy {acc}");
    }

    #[test]
    fn diversity_cap_limits_redundancy() {
        let (t, labels) = dev();
        let tight = StumpConfig { max_overlap: 0.1, ..Default::default() };
        let loose = StumpConfig { max_overlap: 1.0, ..Default::default() };
        let n_tight = generate_stump_lfs(&t, &labels, &[0, 1], &tight).len();
        let n_loose = generate_stump_lfs(&t, &labels, &[0, 1], &loose).len();
        assert!(n_tight <= n_loose);
    }

    #[test]
    fn max_lfs_is_respected() {
        let (t, labels) = dev();
        let cfg = StumpConfig { max_lfs: 3, ..Default::default() };
        assert!(generate_stump_lfs(&t, &labels, &[0, 1], &cfg).len() <= 3);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn rejects_mismatched_labels() {
        let (t, _) = dev();
        generate_stump_lfs(&t, &[Label::Positive], &[0], &StumpConfig::default());
    }
}
