//@ path: crates/serve/src/service.rs
// Seeded positive: naming the checkpoint type outside cm-serve's snapshot
// module bypasses the versioned capture/save/load API, letting the
// serialized layout drift behind the format version.

use crate::snapshot::Checkpoint;

pub fn resume(text: &str) -> Checkpoint {
    let cp = Checkpoint { version: 1, ticks: 0 };
    cp
}

pub fn append(d: crate::snapshot::TickDelta) {
    let _ = d;
}
