//! Unified training entry point over both model families.

use cm_linalg::Matrix;

use crate::logistic::{LogisticConfig, LogisticRegression};
use crate::loss::{class_balance_weights, mean_bce};
use crate::mlp::{Mlp, MlpEpochConfig};

/// Anything that yields positive-class probabilities.
pub trait BinaryClassifier {
    /// Positive-class probability per row.
    fn predict_proba(&self, x: &Matrix) -> Vec<f64>;
}

impl BinaryClassifier for LogisticRegression {
    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        LogisticRegression::predict_proba(self, x)
    }
}

impl BinaryClassifier for Mlp {
    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        Mlp::predict_proba(self, x)
    }
}

/// Model family selector. The paper's TFX pipelines support exactly these
/// two and deploy whichever performs better per task (§6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelKind {
    /// Logistic regression.
    Logistic,
    /// Fully-connected network with the given hidden widths.
    Mlp {
        /// Hidden-layer widths.
        hidden: Vec<usize>,
    },
}

/// Training hyperparameters shared by both families.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs (upper bound when early stopping is active).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (Adam).
    pub lr: f32,
    /// L2 penalty.
    pub l2: f32,
    /// Seed for init and shuffling.
    pub seed: u64,
    /// Early-stopping patience in epochs (MLP only; requires a validation
    /// set at the [`train_model`] call).
    pub patience: Option<usize>,
    /// Re-weight samples to balance classes (heavy imbalance is the norm in
    /// these tasks).
    pub class_balance: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 25,
            batch_size: 64,
            lr: 0.02,
            l2: 1e-4,
            seed: 0,
            patience: Some(5),
            class_balance: true,
        }
    }
}

/// A trained model of either family.
pub enum TrainedModel {
    /// Logistic regression.
    Logistic(LogisticRegression),
    /// Fully-connected network.
    Mlp(Mlp),
}

impl TrainedModel {
    /// Positive-class probabilities.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        match self {
            TrainedModel::Logistic(m) => m.predict_proba(x),
            TrainedModel::Mlp(m) => m.predict_proba(x),
        }
    }

    /// Pre-head representation: the penultimate activation for MLPs, the
    /// raw input for logistic regression (whose "embedding" is the feature
    /// vector itself).
    pub fn embed(&self, x: &Matrix) -> Matrix {
        match self {
            TrainedModel::Logistic(_) => x.clone(),
            TrainedModel::Mlp(m) => m.embed(x),
        }
    }

    /// Width of [`TrainedModel::embed`] output.
    pub fn embed_dim(&self, input_dim: usize) -> usize {
        match self {
            TrainedModel::Logistic(_) => input_dim,
            TrainedModel::Mlp(m) => m.embed_dim(),
        }
    }

    /// Applies only the final prediction layer to a pre-head embedding —
    /// what DeViSE reuses from the frozen old-modality model (§5).
    pub fn head_logit(&self, embedding: &[f32]) -> f32 {
        match self {
            TrainedModel::Logistic(m) => cm_linalg::dot(m.weights(), embedding) + m.bias(),
            TrainedModel::Mlp(m) => {
                let (w, b) = m.head_weights();
                cm_linalg::dot(w, embedding) + b
            }
        }
    }
}

impl BinaryClassifier for TrainedModel {
    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        TrainedModel::predict_proba(self, x)
    }
}

/// Trains a model of the requested kind on soft targets.
///
/// `validation` enables early stopping for the MLP family: training stops
/// once validation BCE fails to improve for `patience` consecutive epochs,
/// and the best-epoch weights are returned.
///
/// # Panics
/// Panics on shape mismatches or an empty training set.
pub fn train_model(
    kind: &ModelKind,
    x: &Matrix,
    targets: &[f64],
    config: &TrainConfig,
    validation: Option<(&Matrix, &[f64])>,
) -> TrainedModel {
    train_model_with_weights(kind, x, targets, None, config, validation)
}

/// [`train_model`] with caller-supplied per-sample weights (e.g. the
/// CrossTrainer-style modality reweighting of `cm-fusion`). Caller weights
/// multiply the class-balance weights when `config.class_balance` is on.
///
/// # Panics
/// Panics on shape mismatches or an empty training set.
pub fn train_model_with_weights(
    kind: &ModelKind,
    x: &Matrix,
    targets: &[f64],
    sample_weights: Option<&[f64]>,
    config: &TrainConfig,
    validation: Option<(&Matrix, &[f64])>,
) -> TrainedModel {
    assert!(x.rows() > 0, "empty training set");
    if let Some(w) = sample_weights {
        assert_eq!(w.len(), targets.len(), "sample weight count mismatch");
    }
    let weights: Option<Vec<f64>> = match (config.class_balance, sample_weights) {
        (true, Some(w)) => {
            let mut cb = class_balance_weights(targets);
            for (c, &wi) in cb.iter_mut().zip(w) {
                *c *= wi;
            }
            Some(cb)
        }
        (true, None) => Some(class_balance_weights(targets)),
        (false, Some(w)) => Some(w.to_vec()),
        (false, None) => None,
    };
    let weights_ref = weights.as_deref();
    match kind {
        ModelKind::Logistic => {
            let cfg = LogisticConfig {
                epochs: config.epochs,
                batch_size: config.batch_size,
                lr: config.lr,
                l2: config.l2,
                seed: config.seed,
            };
            TrainedModel::Logistic(LogisticRegression::fit(x, targets, weights_ref, &cfg))
        }
        ModelKind::Mlp { hidden } => {
            let mut mlp = Mlp::new(x.cols(), hidden, config.lr, config.seed);
            let mut best: Option<(f64, Mlp)> = None;
            let mut since_best = 0usize;
            for epoch in 0..config.epochs {
                mlp.train_epoch(
                    x,
                    targets,
                    weights_ref,
                    &MlpEpochConfig {
                        batch_size: config.batch_size,
                        l2: config.l2,
                        shuffle_seed: config.seed.wrapping_add(epoch as u64),
                    },
                );
                if let (Some((vx, vy)), Some(patience)) = (validation, config.patience) {
                    let logits = mlp.logits(vx);
                    let val_loss = mean_bce(&logits, vy, None);
                    let improved = best.as_ref().is_none_or(|(b, _)| val_loss < *b);
                    if improved {
                        best = Some((val_loss, mlp.clone()));
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if since_best >= patience {
                            break;
                        }
                    }
                }
            }
            TrainedModel::Mlp(best.map_or(mlp, |(_, m)| m))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2 == 0;
            let jitter = ((i * 31 % 100) as f32) / 100.0 - 0.5;
            rows.push(vec![if cls { 1.5 } else { -1.5 } + jitter, jitter]);
            y.push(if cls { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    fn accuracy(m: &TrainedModel, x: &Matrix, y: &[f64]) -> f64 {
        let p = m.predict_proba(x);
        p.iter().zip(y).filter(|(p, &t)| (**p >= 0.5) == (t >= 0.5)).count() as f64 / y.len() as f64
    }

    #[test]
    fn both_families_fit_separable_data() {
        let (x, y) = blobs(200);
        let cfg = TrainConfig::default();
        let lr = train_model(&ModelKind::Logistic, &x, &y, &cfg, None);
        let mlp = train_model(&ModelKind::Mlp { hidden: vec![8] }, &x, &y, &cfg, None);
        assert!(accuracy(&lr, &x, &y) > 0.97);
        assert!(accuracy(&mlp, &x, &y) > 0.97);
    }

    #[test]
    fn early_stopping_limits_epochs() {
        let (x, y) = blobs(200);
        let (vx, vy) = blobs(80);
        let cfg = TrainConfig { epochs: 200, patience: Some(2), ..Default::default() };
        // A separable problem converges quickly; the run must finish well
        // before 200 epochs (if it didn't, this test would take visibly
        // long — we assert on behaviour via the returned model instead).
        let m = train_model(&ModelKind::Mlp { hidden: vec![8] }, &x, &y, &cfg, Some((&vx, &vy)));
        assert!(accuracy(&m, &vx, &vy) > 0.95);
    }

    #[test]
    fn embed_shapes_per_family() {
        let (x, y) = blobs(50);
        let cfg = TrainConfig { epochs: 2, ..Default::default() };
        let lr = train_model(&ModelKind::Logistic, &x, &y, &cfg, None);
        assert_eq!(lr.embed(&x).shape(), (50, 2));
        assert_eq!(lr.embed_dim(2), 2);
        let mlp = train_model(&ModelKind::Mlp { hidden: vec![4, 3] }, &x, &y, &cfg, None);
        assert_eq!(mlp.embed(&x).shape(), (50, 3));
        assert_eq!(mlp.embed_dim(2), 3);
    }

    #[test]
    fn class_balance_toggle_changes_model() {
        let (x, mut y) = blobs(100);
        // Make it imbalanced.
        for t in y.iter_mut().take(80) {
            *t = 0.0;
        }
        let balanced = train_model(
            &ModelKind::Logistic,
            &x,
            &y,
            &TrainConfig { class_balance: true, ..Default::default() },
            None,
        );
        let raw = train_model(
            &ModelKind::Logistic,
            &x,
            &y,
            &TrainConfig { class_balance: false, ..Default::default() },
            None,
        );
        let mean = |m: &TrainedModel| m.predict_proba(&x).iter().sum::<f64>() / x.rows() as f64;
        assert!(mean(&balanced) > mean(&raw));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training_set() {
        train_model(&ModelKind::Logistic, &Matrix::zeros(0, 3), &[], &TrainConfig::default(), None);
    }
}
