//! Cross-over analysis (paper §6.4, Figure 5, Table 2): how many
//! hand-labeled examples does a fully supervised model need before it
//! overtakes the cross-modal pipeline?

/// A fully-supervised learning curve: `(n_labeled, auprc)` samples in
/// increasing `n_labeled` order.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverSeries {
    /// `(labeled-set size, AUPRC)` points.
    pub points: Vec<(f64, f64)>,
}

impl CrossoverSeries {
    /// Builds a series, sorting by size.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self { points }
    }
}

/// Finds the smallest labeled-set size at which the supervised curve
/// reaches `target` AUPRC, linearly interpolating between measured sizes.
///
/// Returns `None` if the curve never reaches the target within the measured
/// range (the paper reports such tasks with their largest measured
/// cross-over bound, e.g. CT 5's 750 k).
pub fn find_crossover(series: &CrossoverSeries, target: f64) -> Option<f64> {
    let pts = &series.points;
    if pts.is_empty() {
        return None;
    }
    if pts[0].1 >= target {
        return Some(pts[0].0);
    }
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if y1 >= target {
            if (y1 - y0).abs() < 1e-12 {
                return Some(x1);
            }
            let t = (target - y0) / (y1 - y0);
            return Some(x0 + t.clamp(0.0, 1.0) * (x1 - x0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> CrossoverSeries {
        CrossoverSeries::new(vec![
            (1_000.0, 0.3),
            (10_000.0, 0.5),
            (50_000.0, 0.7),
            (100_000.0, 0.8),
        ])
    }

    #[test]
    fn interpolates_between_points() {
        let x = find_crossover(&series(), 0.6).unwrap();
        assert!((x - 30_000.0).abs() < 1.0, "x = {x}");
    }

    #[test]
    fn exact_point_hits() {
        assert_eq!(find_crossover(&series(), 0.5), Some(10_000.0));
    }

    #[test]
    fn below_first_point_returns_first_size() {
        assert_eq!(find_crossover(&series(), 0.1), Some(1_000.0));
    }

    #[test]
    fn unreachable_target_is_none() {
        assert_eq!(find_crossover(&series(), 0.95), None);
        assert_eq!(find_crossover(&CrossoverSeries::new(vec![]), 0.5), None);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = CrossoverSeries::new(vec![(100.0, 0.9), (10.0, 0.1)]);
        assert_eq!(s.points[0].0, 10.0);
        let x = find_crossover(&s, 0.5).unwrap();
        assert!((x - 55.0).abs() < 1e-9);
    }

    #[test]
    fn non_monotone_curve_takes_first_crossing() {
        let s = CrossoverSeries::new(vec![(10.0, 0.2), (20.0, 0.6), (30.0, 0.4), (40.0, 0.9)]);
        let x = find_crossover(&s, 0.5).unwrap();
        assert!(x > 10.0 && x < 20.0);
    }
}
