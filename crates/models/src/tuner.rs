//! Hyperparameter grid search — the stand-in for the paper's Vizier
//! black-box optimization service (§6.3).

use cm_linalg::Matrix;

use crate::loss::mean_bce;
use crate::trainer::{train_model, ModelKind, TrainConfig, TrainedModel};

/// The search space: the cross product of model kinds, learning rates, and
/// L2 strengths.
#[derive(Debug, Clone)]
pub struct TunerGrid {
    /// Model families to try.
    pub kinds: Vec<ModelKind>,
    /// Learning rates to try.
    pub lrs: Vec<f32>,
    /// L2 penalties to try.
    pub l2s: Vec<f32>,
}

impl Default for TunerGrid {
    fn default() -> Self {
        Self {
            kinds: vec![ModelKind::Logistic, ModelKind::Mlp { hidden: vec![32] }],
            lrs: vec![0.005, 0.02],
            l2s: vec![1e-4, 1e-3],
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct TunerTrial {
    /// Model family.
    pub kind: ModelKind,
    /// Learning rate.
    pub lr: f32,
    /// L2 penalty.
    pub l2: f32,
    /// Validation BCE (lower is better).
    pub val_loss: f64,
}

/// Grid-search result: the best model and the full trial log.
pub struct TunerOutcome {
    /// Best model by validation loss.
    pub model: TrainedModel,
    /// Winning configuration.
    pub best: TunerTrial,
    /// All trials, best first.
    pub trials: Vec<TunerTrial>,
}

/// Trains every grid point and returns the model with the lowest validation
/// BCE — the paper's "hyperparameters set by Vizier", reduced to an exact
/// sweep over a small grid.
///
/// # Panics
/// Panics if the grid or the validation set is empty.
pub fn grid_search(
    grid: &TunerGrid,
    x: &Matrix,
    targets: &[f64],
    validation: (&Matrix, &[f64]),
    base: &TrainConfig,
) -> TunerOutcome {
    assert!(
        !grid.kinds.is_empty() && !grid.lrs.is_empty() && !grid.l2s.is_empty(),
        "empty tuner grid"
    );
    assert!(validation.0.rows() > 0, "empty validation set");
    let mut best: Option<(TunerTrial, TrainedModel)> = None;
    let mut trials = Vec::new();
    for kind in &grid.kinds {
        for &lr in &grid.lrs {
            for &l2 in &grid.l2s {
                let cfg = TrainConfig { lr, l2, ..base.clone() };
                let model = train_model(kind, x, targets, &cfg, Some(validation));
                let probs = model.predict_proba(validation.0);
                // Convert probabilities back to logits for a stable BCE.
                let logits: Vec<f32> = probs
                    .iter()
                    .map(|&p| {
                        let p = p.clamp(1e-9, 1.0 - 1e-9);
                        (p / (1.0 - p)).ln() as f32
                    })
                    .collect();
                let val_loss = mean_bce(&logits, validation.1, None);
                let trial = TunerTrial { kind: kind.clone(), lr, l2, val_loss };
                trials.push(trial.clone());
                let better = best.as_ref().is_none_or(|(b, _)| trial.val_loss < b.val_loss);
                if better {
                    best = Some((trial, model));
                }
            }
        }
    }
    // The candidate grids are nonempty consts, so a trial always ran.
    // lint: allow(expect)
    let (best, model) = best.expect("grid is nonempty");
    trials.sort_by(|a, b| a.val_loss.total_cmp(&b.val_loss));
    TunerOutcome { model, best, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, offset: f32) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2 == 0;
            let jitter = ((i * 37 % 100) as f32) / 100.0 - 0.5;
            rows.push(vec![if cls { 1.5 } else { -1.5 } + jitter + offset, jitter]);
            y.push(if cls { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn picks_a_working_configuration() {
        let (x, y) = blobs(200, 0.0);
        let (vx, vy) = blobs(80, 0.05);
        let out = grid_search(
            &TunerGrid::default(),
            &x,
            &y,
            (&vx, &vy),
            &TrainConfig { epochs: 10, ..TrainConfig::default() },
        );
        assert_eq!(out.trials.len(), 8);
        // Trials are sorted best-first and the winner matches.
        assert_eq!(out.trials[0].val_loss, out.best.val_loss);
        for w in out.trials.windows(2) {
            assert!(w[0].val_loss <= w[1].val_loss);
        }
        // The chosen model separates the validation blobs.
        let p = out.model.predict_proba(&vx);
        let correct = p.iter().zip(&vy).filter(|(p, &t)| (**p >= 0.5) == (t >= 0.5)).count();
        assert!(correct as f64 / vy.len() as f64 > 0.9);
    }

    #[test]
    fn degenerate_grid_of_one_still_works() {
        let (x, y) = blobs(60, 0.0);
        let (vx, vy) = blobs(20, 0.0);
        let grid = TunerGrid { kinds: vec![ModelKind::Logistic], lrs: vec![0.05], l2s: vec![1e-4] };
        let out = grid_search(&grid, &x, &y, (&vx, &vy), &TrainConfig::default());
        assert_eq!(out.trials.len(), 1);
        assert!(out.best.val_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty tuner grid")]
    fn rejects_empty_grid() {
        let (x, y) = blobs(10, 0.0);
        let grid = TunerGrid { kinds: vec![], lrs: vec![0.1], l2s: vec![0.0] };
        grid_search(&grid, &x, &y, (&x, &y), &TrainConfig::default());
    }
}
