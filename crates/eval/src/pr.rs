//! Precision-recall curves and AUPRC (average precision).

/// One point on a PR curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold producing this point.
    pub threshold: f64,
    /// Recall at the threshold.
    pub recall: f64,
    /// Precision at the threshold.
    pub precision: f64,
}

/// The PR curve swept over descending score thresholds, with tied scores
/// collapsed into single points.
///
/// # Panics
/// Panics if lengths differ.
pub fn pr_curve(scores: &[f64], positives: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), positives.len(), "score/label length mismatch");
    let n_pos = positives.iter().filter(|&&p| p).count();
    if n_pos == 0 || scores.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut curve = Vec::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if positives[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(PrPoint {
            threshold,
            recall: tp as f64 / n_pos as f64,
            precision: tp as f64 / (tp + fp) as f64,
        });
    }
    curve
}

/// Average-precision AUPRC: `Σ (R_k - R_{k-1}) · P_k` over the descending
/// sweep. Returns 0.0 when there are no positives.
///
/// ```
/// use cm_eval::auprc;
/// let scores = [0.9, 0.8, 0.3, 0.1];
/// let truth  = [true, true, false, false];
/// assert!((auprc(&scores, &truth) - 1.0).abs() < 1e-12);
/// ```
pub fn auprc(scores: &[f64], positives: &[bool]) -> f64 {
    let curve = pr_curve(scores, positives);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_unit_auprc() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let pos = [true, true, false, false];
        assert!((auprc(&scores, &pos) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_is_poor() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let pos = [true, true, false, false];
        let ap = auprc(&scores, &pos);
        assert!(ap < 0.5, "ap = {ap}");
    }

    #[test]
    fn random_scores_approach_positive_rate() {
        // Deterministic pseudo-random permutation.
        let n = 20_000;
        let scores: Vec<f64> = (0..n).map(|i| ((i * 2654435761_usize) % n) as f64).collect();
        let pos: Vec<bool> = (0..n).map(|i| i % 10 == 0).collect();
        let ap = auprc(&scores, &pos);
        assert!((ap - 0.1).abs() < 0.02, "ap = {ap}");
    }

    #[test]
    fn ties_are_grouped() {
        // All scores equal: single PR point at recall 1, precision = rate.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let pos = [true, false, false, false];
        let curve = pr_curve(&scores, &pos);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].recall, 1.0);
        assert_eq!(curve[0].precision, 0.25);
        assert_eq!(auprc(&scores, &pos), 0.25);
    }

    #[test]
    fn no_positives_yields_empty_curve() {
        assert!(pr_curve(&[0.5], &[false]).is_empty());
        assert_eq!(auprc(&[0.5], &[false]), 0.0);
        assert_eq!(auprc(&[], &[]), 0.0);
    }

    #[test]
    fn curve_recall_is_monotone() {
        let scores = [0.9, 0.7, 0.6, 0.5, 0.4, 0.2];
        let pos = [true, false, true, false, true, false];
        let curve = pr_curve(&scores, &pos);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert!(w[1].threshold < w[0].threshold);
        }
        assert_eq!(curve.last().unwrap().recall, 1.0);
    }

    #[test]
    fn auprc_matches_hand_computation() {
        // Descending: pos(1/1, R=1/2) then neg(...) then pos(2/3, R=1).
        let scores = [0.9, 0.8, 0.7];
        let pos = [true, false, true];
        let expected = 0.5 * 1.0 + 0.5 * (2.0 / 3.0);
        assert!((auprc(&scores, &pos) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_input() {
        auprc(&[0.5], &[]);
    }
}
