//! Property-based tests for discretization and itemset mining.

use std::sync::Arc;

use cm_featurespace::{
    CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, Label,
    ServingMode, Vocabulary,
};
use cm_mining::{mine_itemsets, Discretizer, MiningConfig};
use proptest::prelude::*;

fn schema() -> Arc<FeatureSchema> {
    Arc::new(FeatureSchema::from_defs(vec![
        FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
        FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names((0..6).map(|i| format!("v{i}"))),
        ),
    ]))
}

fn labeled_table() -> impl Strategy<Value = (FeatureTable, Vec<Label>)> {
    prop::collection::vec(
        (
            -50.0f64..50.0,
            prop::collection::vec(0u32..6, 0..4),
            prop::bool::weighted(0.25),
        ),
        8..60,
    )
    .prop_map(|rows| {
        let mut t = FeatureTable::new(schema());
        let mut labels = Vec::new();
        for (num, cats, pos) in rows {
            t.push_row(&[
                FeatureValue::Numeric(num),
                FeatureValue::Categorical(CatSet::from_ids(cats)),
            ]);
            labels.push(if pos { Label::Positive } else { Label::Negative });
        }
        (t, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every value maps to exactly one bin, bins are monotone in the value,
    /// and each value lies inside its bin's reported range.
    #[test]
    fn discretizer_bins_partition(values in prop::collection::vec(-100.0f64..100.0, 4..50)) {
        let mut t = FeatureTable::new(schema());
        for &v in &values {
            t.push_row(&[FeatureValue::Numeric(v), FeatureValue::Missing]);
        }
        let d = Discretizer::fit(&t, 0, 4).unwrap();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev_bin = 0;
        for &v in &sorted {
            let b = d.bin(v);
            prop_assert!(b >= prev_bin, "bins must be monotone in the value");
            prop_assert!((b as usize) < d.n_bins());
            let (lo, hi) = d.bin_range(b);
            if let Some(lo) = lo {
                prop_assert!(v >= lo, "{v} below bin floor {lo}");
            }
            if let Some(hi) = hi {
                prop_assert!(v <= hi, "{v} above bin ceiling {hi}");
            }
            prev_bin = b;
        }
    }

    /// Mined statistics are internally consistent: precision/recall in
    /// [0,1], supports bounded by class sizes, and every reported itemset
    /// actually clears the configured thresholds.
    #[test]
    fn mined_stats_respect_thresholds((t, labels) in labeled_table()) {
        let cfg = MiningConfig {
            min_precision: 0.6,
            min_recall: 0.05,
            ..MiningConfig::default()
        };
        let mined = mine_itemsets(&t, &labels, &[0, 1], &cfg);
        let n_pos = labels.iter().filter(|l| l.is_positive()).count();
        let n_neg = labels.len() - n_pos;
        for s in &mined.positive {
            prop_assert!(s.pos_support <= n_pos);
            prop_assert!(s.neg_support <= n_neg);
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!(s.precision >= cfg.min_precision - 1e-12);
            prop_assert!(s.recall >= cfg.min_recall - 1e-12);
        }
        for s in &mined.negative {
            let neg_precision =
                s.neg_support as f64 / (s.pos_support + s.neg_support).max(1) as f64;
            prop_assert!(neg_precision >= cfg.min_neg_precision - 1e-12);
        }
    }

    /// Anti-monotonicity: an order-2 itemset's support never exceeds the
    /// positive support of either member.
    #[test]
    fn order2_support_is_anti_monotone((t, labels) in labeled_table()) {
        let cfg = MiningConfig {
            min_precision: 0.99, // push singles into the frontier
            min_recall: 0.02,
            max_order: 2,
            ..MiningConfig::default()
        };
        let mined = mine_itemsets(&t, &labels, &[1], &cfg);
        // Recompute single-item supports directly.
        let single_support = |item: cm_mining::Item| {
            labels
                .iter()
                .enumerate()
                .filter(|(r, l)| {
                    l.is_positive()
                        && matches!(item.value, cm_mining::ItemValue::Cat(id)
                            if t.categorical(*r, item.column)
                                .is_some_and(|ids| ids.binary_search(&id).is_ok()))
                })
                .count()
        };
        for s in mined.positive.iter().filter(|s| s.items.len() == 2) {
            for &item in &s.items {
                prop_assert!(
                    s.pos_support <= single_support(item),
                    "pair support {} exceeds member support",
                    s.pos_support
                );
            }
        }
    }

    /// Mining is deterministic.
    #[test]
    fn mining_is_deterministic((t, labels) in labeled_table()) {
        let cfg = MiningConfig::default();
        let a = mine_itemsets(&t, &labels, &[0, 1], &cfg);
        let b = mine_itemsets(&t, &labels, &[0, 1], &cfg);
        prop_assert_eq!(a.positive, b.positive);
        prop_assert_eq!(a.negative, b.negative);
    }
}
