//! Zhu–Ghahramani label propagation with clamped seeds.

use crate::graph::SparseGraph;

/// Configuration for [`propagate`] / [`propagate_streaming`].
#[derive(Debug, Clone)]
pub struct PropagationConfig {
    /// Maximum iterations (full sweeps).
    pub max_iters: usize,
    /// Convergence tolerance on the maximum absolute score change.
    pub tol: f64,
    /// Initial score for unlabeled vertices (typically the class prior).
    pub prior: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        Self { max_iters: 100, tol: 1e-4, prior: 0.05 }
    }
}

/// Synchronous (Jacobi) label propagation.
///
/// `seeds` are `(vertex, score)` pairs clamped throughout; every other
/// vertex is repeatedly replaced by the weighted mean of its neighbors.
/// Returns per-vertex scores in `[0, 1]`. Unreachable vertices keep the
/// prior.
///
/// ```
/// use cm_propagation::{propagate, PropagationConfig, SparseGraph};
/// // Path 0-1-2 with a positive seed at 0 and a negative seed at 2.
/// let g = SparseGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
/// let scores = propagate(&g, &[(0, 1.0), (2, 0.0)], &PropagationConfig::default());
/// assert!((scores[1] - 0.5).abs() < 1e-3);
/// ```
///
/// # Panics
/// Panics if a seed vertex is out of range or its score outside `[0, 1]`.
pub fn propagate(
    graph: &SparseGraph,
    seeds: &[(usize, f64)],
    config: &PropagationConfig,
) -> Vec<f64> {
    let n = graph.n_vertices();
    let mut scores = vec![config.prior; n];
    let mut clamped = vec![false; n];
    for &(v, s) in seeds {
        assert!(v < n, "seed vertex {v} out of range");
        assert!((0.0..=1.0).contains(&s), "seed score {s} out of range");
        scores[v] = s;
        clamped[v] = true;
    }
    let mut next = scores.clone();
    for _ in 0..config.max_iters {
        let mut max_delta = 0.0f64;
        for v in 0..n {
            if clamped[v] {
                continue;
            }
            let (neigh, weights) = graph.neighbors(v);
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for (&u, &w) in neigh.iter().zip(weights) {
                num += f64::from(w) * scores[u as usize];
                den += f64::from(w);
            }
            let new = if den > 0.0 { num / den } else { scores[v] };
            max_delta = max_delta.max((new - scores[v]).abs());
            next[v] = new;
        }
        for v in 0..n {
            if !clamped[v] {
                scores[v] = next[v];
            }
        }
        if max_delta < config.tol {
            break;
        }
    }
    scores
}

/// Streaming (Gauss–Seidel, in-place) propagation — the Expander-flavored
/// approximation (§6.3): each vertex is updated immediately from the most
/// recent scores of its neighbors in a fixed number of ordered sweeps, using
/// constant extra memory. Converges to the same fixed point as
/// [`propagate`], usually in fewer sweeps, at the cost of order dependence.
///
/// # Panics
/// Panics on invalid seeds, as [`propagate`] does.
pub fn propagate_streaming(
    graph: &SparseGraph,
    seeds: &[(usize, f64)],
    config: &PropagationConfig,
) -> Vec<f64> {
    let n = graph.n_vertices();
    let mut scores = vec![config.prior; n];
    let mut clamped = vec![false; n];
    for &(v, s) in seeds {
        assert!(v < n, "seed vertex {v} out of range");
        assert!((0.0..=1.0).contains(&s), "seed score {s} out of range");
        scores[v] = s;
        clamped[v] = true;
    }
    for _ in 0..config.max_iters {
        let mut max_delta = 0.0f64;
        for v in 0..n {
            if clamped[v] {
                continue;
            }
            let (neigh, weights) = graph.neighbors(v);
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for (&u, &w) in neigh.iter().zip(weights) {
                num += f64::from(w) * scores[u as usize];
                den += f64::from(w);
            }
            if den > 0.0 {
                let new = num / den;
                max_delta = max_delta.max((new - scores[v]).abs());
                scores[v] = new;
            }
        }
        if max_delta < config.tol {
            break;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3-4 with unit weights.
    fn path(n: usize) -> SparseGraph {
        let edges: Vec<(u32, u32, f32)> =
            (0..n - 1).map(|i| (i as u32, (i + 1) as u32, 1.0)).collect();
        SparseGraph::from_edges(n, &edges)
    }

    #[test]
    fn interpolates_between_seeds() {
        let g = path(5);
        let cfg = PropagationConfig { max_iters: 1000, tol: 1e-9, prior: 0.5 };
        let scores = propagate(&g, &[(0, 1.0), (4, 0.0)], &cfg);
        // Harmonic solution on a path: linear interpolation.
        for (i, expected) in [1.0, 0.75, 0.5, 0.25, 0.0].iter().enumerate() {
            assert!((scores[i] - expected).abs() < 1e-4, "vertex {i}: {}", scores[i]);
        }
    }

    #[test]
    fn seeds_stay_clamped() {
        let g = path(3);
        let scores = propagate(&g, &[(0, 1.0), (2, 0.0)], &PropagationConfig::default());
        assert_eq!(scores[0], 1.0);
        assert_eq!(scores[2], 0.0);
    }

    #[test]
    fn isolated_vertices_keep_prior() {
        let g = SparseGraph::from_edges(3, &[(0, 1, 1.0)]);
        let cfg = PropagationConfig { prior: 0.1, ..Default::default() };
        let scores = propagate(&g, &[(0, 1.0)], &cfg);
        assert_eq!(scores[2], 0.1);
        assert!((scores[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labels_spread_through_clusters() {
        // Two triangles joined by nothing; one seed per triangle.
        let edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0)];
        let g = SparseGraph::from_edges(6, &edges);
        let scores = propagate(&g, &[(0, 1.0), (3, 0.0)], &PropagationConfig::default());
        assert!(scores[1] > 0.9 && scores[2] > 0.9);
        assert!(scores[4] < 0.1 && scores[5] < 0.1);
    }

    #[test]
    fn streaming_matches_synchronous_fixed_point() {
        let g = path(7);
        let cfg = PropagationConfig { max_iters: 5000, tol: 1e-10, prior: 0.5 };
        let sync = propagate(&g, &[(0, 1.0), (6, 0.0)], &cfg);
        let stream = propagate_streaming(&g, &[(0, 1.0), (6, 0.0)], &cfg);
        for (a, b) in sync.iter().zip(&stream) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn streaming_converges_at_least_as_fast() {
        // On a path with both ends seeded, Gauss–Seidel should reach the
        // tolerance within the same iteration budget that Jacobi needs.
        let g = path(20);
        let tight = PropagationConfig { max_iters: 40, tol: 1e-6, prior: 0.5 };
        let seeds = [(0usize, 1.0f64), (19, 0.0)];
        let stream = propagate_streaming(&g, &seeds, &tight);
        let expected: Vec<f64> = (0..20).map(|i| 1.0 - i as f64 / 19.0).collect();
        let stream_err: f64 =
            stream.iter().zip(&expected).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        let sync = propagate(&g, &seeds, &tight);
        let sync_err: f64 =
            sync.iter().zip(&expected).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(stream_err <= sync_err + 1e-9, "stream {stream_err} vs sync {sync_err}");
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let g = path(10);
        let scores = propagate(&g, &[(0, 1.0)], &PropagationConfig::default());
        for s in scores {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "seed vertex")]
    fn rejects_out_of_range_seed() {
        propagate(&path(3), &[(9, 1.0)], &PropagationConfig::default());
    }

    #[test]
    #[should_panic(expected = "seed score")]
    fn rejects_invalid_seed_score() {
        propagate(&path(3), &[(0, 1.5)], &PropagationConfig::default());
    }
}
