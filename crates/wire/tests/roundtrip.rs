//! Seeded property tests for every cm-wire frame type: random values
//! (including NaN payloads, ±Inf, and empty strings/vectors) must
//! round-trip bit-exactly, and corrupting any single byte of an encoded
//! frame must yield a decode error — never a panic, never a silent
//! misparse.

use cm_linalg::rng::{Rng, StdRng};
use cm_wire::{append_frame, read_frame, read_header, write_header, Reader, Writer};

const ROUNDS: usize = 200;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random f64 over the full bit pattern space, so NaN payloads, ±Inf,
/// subnormals, and -0.0 all occur.
fn any_f64(r: &mut StdRng) -> f64 {
    f64::from_bits(r.next_u64())
}

fn any_f32(r: &mut StdRng) -> f32 {
    f32::from_bits((r.next_u64() >> 32) as u32)
}

#[test]
fn random_u64_varints_round_trip() {
    let mut r = rng(11);
    for round in 0..ROUNDS {
        // Mix full-width values with small ones so short encodings are hit.
        let shift = r.gen_range(0..64u64) as u32;
        let v = r.next_u64() >> shift;
        let mut w = Writer::new();
        w.u64v(v);
        let mut rd = Reader::new(w.as_bytes());
        assert_eq!(rd.u64v().expect("decode"), v, "round {round}");
        assert!(rd.is_empty());
    }
}

#[test]
fn random_i64_zigzags_round_trip() {
    let mut r = rng(12);
    for round in 0..ROUNDS {
        let shift = r.gen_range(0..64u64) as u32;
        let v = (r.next_u64() >> shift) as i64;
        let v = if r.gen_bool(0.5) { v.wrapping_neg() } else { v };
        let mut w = Writer::new();
        w.i64z(v);
        let mut rd = Reader::new(w.as_bytes());
        assert_eq!(rd.i64z().expect("decode"), v, "round {round}");
    }
}

#[test]
fn random_float_bit_patterns_round_trip_exactly() {
    let mut r = rng(13);
    for round in 0..ROUNDS {
        let v64 = any_f64(&mut r);
        let v32 = any_f32(&mut r);
        let mut w = Writer::new();
        w.f64b(v64);
        w.f32b(v32);
        let mut rd = Reader::new(w.as_bytes());
        assert_eq!(rd.f64b().expect("f64").to_bits(), v64.to_bits(), "round {round}");
        assert_eq!(rd.f32b().expect("f32").to_bits(), v32.to_bits(), "round {round}");
    }
}

#[test]
fn random_strings_and_byte_vectors_round_trip() {
    let mut r = rng(14);
    for round in 0..ROUNDS {
        let len = r.gen_range(0..64u64) as usize; // includes empty
        let bytes: Vec<u8> = (0..len).map(|_| (r.next_u64() >> 56) as u8).collect();
        let s: String =
            (0..len).map(|_| char::from(b'a' + (r.gen_range(0..26u64) as u8))).collect();
        let mut w = Writer::new();
        w.bytes(&bytes);
        w.str(&s);
        let mut rd = Reader::new(w.as_bytes());
        assert_eq!(rd.bytes().expect("bytes"), bytes.as_slice(), "round {round}");
        assert_eq!(rd.str().expect("str"), s, "round {round}");
    }
}

/// A mixed-type payload exercising every primitive in one frame, the shape
/// the checkpoint records actually take.
fn random_payload(r: &mut StdRng) -> Vec<u8> {
    let mut w = Writer::new();
    let n = r.gen_range(0..16u64) as usize; // empty vectors included
    w.usizev(n);
    for _ in 0..n {
        w.u64v(r.next_u64());
        w.i64z(r.next_u64() as i64);
        w.f64b(any_f64(r));
        w.f32b(any_f32(r));
        w.bool(r.gen_bool(0.5));
        w.u8((r.next_u64() >> 56) as u8);
    }
    w.into_bytes()
}

fn decode_payload(payload: &[u8]) -> Result<usize, cm_wire::WireError> {
    let mut rd = Reader::new(payload);
    let n = rd.usizev()?;
    for _ in 0..n {
        rd.u64v()?;
        rd.i64z()?;
        rd.f64b()?;
        rd.f32b()?;
        rd.bool()?;
        rd.u8()?;
    }
    Ok(n)
}

#[test]
fn random_frames_round_trip_through_header_and_checksum() {
    let mut r = rng(15);
    for round in 0..ROUNDS {
        let mut w = Writer::new();
        write_header(&mut w, b"CMT!", round as u32);
        let payloads: Vec<Vec<u8>> =
            (0..r.gen_range(1..5u64)).map(|_| random_payload(&mut r)).collect();
        for (i, p) in payloads.iter().enumerate() {
            append_frame(&mut w, i as u8, p);
        }
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert_eq!(read_header(&mut rd, b"CMT!").expect("header"), round as u32);
        for (i, p) in payloads.iter().enumerate() {
            let frame = read_frame(&mut rd).expect("frame");
            assert_eq!(frame.tag, i as u8);
            assert_eq!(frame.payload, p.as_slice());
            decode_payload(frame.payload).expect("payload decodes");
        }
        assert!(rd.is_empty());
    }
}

#[test]
fn corrupting_any_byte_of_a_frame_errors_cleanly() {
    let mut r = rng(16);
    for _ in 0..24 {
        let payload = random_payload(&mut r);
        let mut w = Writer::new();
        append_frame(&mut w, 3, &payload);
        let clean = w.into_bytes();
        for byte in 0..clean.len() {
            let mut bad = clean.clone();
            // Random non-zero flip so every bit position gets coverage
            // across rounds.
            let flip = 1u8 << r.gen_range(0..8u64);
            bad[byte] ^= flip;
            let mut rd = Reader::new(&bad);
            assert!(
                read_frame(&mut rd).is_err(),
                "byte {byte} flipped by {flip:#04x} went undetected"
            );
        }
    }
}

#[test]
fn truncating_a_frame_at_any_offset_errors_cleanly() {
    let mut r = rng(17);
    for _ in 0..24 {
        let payload = random_payload(&mut r);
        let mut w = Writer::new();
        append_frame(&mut w, 9, &payload);
        let clean = w.into_bytes();
        for cut in 0..clean.len() {
            let mut rd = Reader::new(&clean[..cut]);
            assert!(read_frame(&mut rd).is_err(), "truncation at {cut} went undetected");
        }
    }
}

#[test]
fn arbitrary_garbage_never_panics_any_decoder() {
    let mut r = rng(18);
    for _ in 0..ROUNDS {
        let len = r.gen_range(0..128u64) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| (r.next_u64() >> 56) as u8).collect();
        let mut rd = Reader::new(&garbage);
        let _ = read_frame(&mut rd);
        let mut rd = Reader::new(&garbage);
        let _ = read_header(&mut rd, b"CMT!");
        let mut rd = Reader::new(&garbage);
        let _ = rd.u64v();
        let _ = rd.i64z();
        let _ = rd.f64b();
        let _ = rd.f32b();
        let _ = rd.str();
        let _ = rd.bytes();
        let _ = rd.bool();
        let _ = decode_payload(&garbage);
    }
}
