//! Versioned checkpoint serialization for the incremental curation
//! service.
//!
//! A checkpoint persists exactly the *arrival-dependent* state of a run:
//! the stream cursor, the access-layer breaker/clock state, the curator's
//! accumulated pool + EM warm parameters + online-graph routing state, any
//! queued/deferred/quarantined batches, and the telemetry accumulators.
//! Everything clean-path (mined LFs, dev split, similarity scales, seed
//! vertices, the text corpus) is re-derived deterministically on restart,
//! which keeps checkpoints small and makes version drift detectable: if
//! the derivation changes, the version bumps.
//!
//! All floats are finite and round-trip bit-exactly through `cm-json`'s
//! shortest-round-trip formatting, so a restart resumes *bit-identical*
//! to an uninterrupted run.
//!
//! This module is the only place allowed to name [`Checkpoint`]: the
//! `checkpoint-drift` lint bans the identifier everywhere else, so
//! checkpointed state can only be produced by [`capture`] and consumed by
//! [`load`] — a token-level approximation of "no direct field access to
//! checkpointed state outside the snapshot module".

use std::sync::Arc;

use cm_faults::AccessState;
use cm_featurespace::{
    CatSet, CmError, CmResult, ErrorKind, FeatureSchema, FeatureTable, FeatureValue, Label,
    ModalityKind,
};
use cm_json::{Json, ToJson};
use cm_labelmodel::WarmStart;
use cm_orgsim::ModalityDataset;
use cm_pipeline::{BatchStats, IncrementalState};
use cm_propagation::OnlineGraphState;

use crate::guards::QuarantinedBatch;
use crate::queue::{QueuedBatch, SheddingReport};

/// Format version written into every checkpoint; [`load`] rejects any
/// other value. Bump whenever the serialized layout *or* the clean-path
/// re-derivation contract changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Batches that arrived but have not been ingested: serialized verbatim
/// because regenerating them from the stream would re-draw fault RNG and
/// double-advance breaker state.
#[derive(Debug, Clone, Default)]
pub struct PendingWork {
    /// Admitted batches, oldest first.
    pub queue: Vec<QueuedBatch>,
    /// Watermark-deferred batches awaiting re-offer.
    pub deferred: Vec<QueuedBatch>,
    /// Guard-quarantined batches awaiting their retry tick.
    pub quarantine: Vec<QuarantinedBatch>,
}

/// Telemetry accumulators a resumed run must continue from.
#[derive(Debug, Clone, Default)]
pub struct ServeTelemetry {
    /// Admission-queue overload counters.
    pub shed: SheddingReport,
    /// Batches quarantined by the quality guards.
    pub quarantined: usize,
    /// Quarantined batches that later passed their retry.
    pub recovered: usize,
    /// Quarantined batches dropped after a failed retry.
    pub dropped: usize,
    /// Mean posterior entropy of the last ingested batch.
    pub last_entropy: Option<f64>,
    /// Per-batch ingest statistics, in ingest order.
    pub batch_stats: Vec<BatchStats>,
    /// Arrival-to-completion latency of each ingested batch (sim ms).
    pub latencies_ms: Vec<u64>,
}

/// The complete persisted state of a service run after some tick.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Format version; see [`CHECKPOINT_VERSION`].
    pub version: u32,
    /// Ticks completed before this checkpoint was taken.
    pub ticks: usize,
    /// Rows drawn from the arrival stream so far (stream fast-forward
    /// cursor: clean and fault-injected draws consume identical world-RNG
    /// counts, so a fresh stream discards this many rows to resume).
    pub rows_generated: usize,
    /// Access-layer breaker/clock/stats state.
    pub access: AccessState,
    /// Arrival-dependent curator state.
    pub curator: IncrementalState,
    /// Batches in flight.
    pub pending: PendingWork,
    /// Telemetry accumulators.
    pub telemetry: ServeTelemetry,
}

/// Assembles a checkpoint from the service's live state.
pub fn capture(
    ticks: usize,
    rows_generated: usize,
    access: AccessState,
    curator: IncrementalState,
    pending: PendingWork,
    telemetry: ServeTelemetry,
) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        ticks,
        rows_generated,
        access,
        curator,
        pending,
        telemetry,
    }
}

impl Checkpoint {
    /// Serializes the checkpoint to its JSON text form.
    pub fn save(&self) -> String {
        Json::obj([
            ("version", Json::Num(f64::from(self.version))),
            ("ticks", self.ticks.to_json()),
            ("rows_generated", self.rows_generated.to_json()),
            ("access", self.access.to_json()),
            ("curator", incremental_state_to_json(&self.curator)),
            ("queue", Json::Arr(self.pending.queue.iter().map(queued_to_json).collect())),
            ("deferred", Json::Arr(self.pending.deferred.iter().map(queued_to_json).collect())),
            (
                "quarantine",
                Json::Arr(self.pending.quarantine.iter().map(quarantined_to_json).collect()),
            ),
            ("shed", self.telemetry.shed.to_json()),
            ("quarantined", self.telemetry.quarantined.to_json()),
            ("recovered", self.telemetry.recovered.to_json()),
            ("dropped", self.telemetry.dropped.to_json()),
            ("last_entropy", opt_num(self.telemetry.last_entropy)),
            (
                "batch_stats",
                Json::Arr(self.telemetry.batch_stats.iter().map(batch_stats_to_json).collect()),
            ),
            (
                "latencies_ms",
                Json::Arr(
                    self.telemetry.latencies_ms.iter().map(|&l| Json::Num(l as f64)).collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }
}

/// Parses and version-checks a checkpoint. `schema` is the world feature
/// schema (clean-path state, re-derived by the caller) that every
/// serialized table is rebuilt against.
pub fn load(text: &str, schema: &Arc<FeatureSchema>) -> CmResult<Checkpoint> {
    const LOC: &str = "snapshot::load";
    let json =
        Json::parse(text).map_err(|e| CmError::new(ErrorKind::InvalidConfig, LOC, e.message))?;
    let version = req_usize(&json, "version")? as u32;
    if version != CHECKPOINT_VERSION {
        return Err(CmError::new(
            ErrorKind::InvalidConfig,
            LOC,
            format!("unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"),
        ));
    }
    let access = AccessState::from_json(json.get("access").ok_or_else(|| missing("access"))?)?;
    let curator = incremental_state_from_json(
        json.get("curator").ok_or_else(|| missing("curator"))?,
        schema,
    )?;
    let pending = PendingWork {
        queue: req_arr(&json, "queue")?
            .iter()
            .map(|v| queued_from_json(v, schema))
            .collect::<CmResult<_>>()?,
        deferred: req_arr(&json, "deferred")?
            .iter()
            .map(|v| queued_from_json(v, schema))
            .collect::<CmResult<_>>()?,
        quarantine: req_arr(&json, "quarantine")?
            .iter()
            .map(|v| quarantined_from_json(v, schema))
            .collect::<CmResult<_>>()?,
    };
    let telemetry = ServeTelemetry {
        shed: SheddingReport::from_json(json.get("shed").ok_or_else(|| missing("shed"))?)
            .map_err(|e| CmError::new(ErrorKind::InvalidConfig, LOC, e.message))?,
        quarantined: req_usize(&json, "quarantined")?,
        recovered: req_usize(&json, "recovered")?,
        dropped: req_usize(&json, "dropped")?,
        last_entropy: match json.get("last_entropy") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| missing("last_entropy"))?),
        },
        batch_stats: req_arr(&json, "batch_stats")?
            .iter()
            .map(batch_stats_from_json)
            .collect::<CmResult<_>>()?,
        latencies_ms: req_arr(&json, "latencies_ms")?
            .iter()
            .map(|v| v.as_f64().map(|x| x as u64).ok_or_else(|| missing("latencies_ms entry")))
            .collect::<CmResult<_>>()?,
    };
    Ok(Checkpoint {
        version,
        ticks: req_usize(&json, "ticks")?,
        rows_generated: req_usize(&json, "rows_generated")?,
        access,
        curator,
        pending,
        telemetry,
    })
}

fn missing(field: &str) -> CmError {
    CmError::new(ErrorKind::NotFound, "snapshot::load", format!("missing or mistyped {field}"))
}

fn req_usize(json: &Json, field: &str) -> CmResult<usize> {
    json.get(field).and_then(Json::as_usize).ok_or_else(|| missing(field))
}

fn req_f64(json: &Json, field: &str) -> CmResult<f64> {
    json.get(field).and_then(Json::as_f64).ok_or_else(|| missing(field))
}

fn req_arr<'a>(json: &'a Json, field: &str) -> CmResult<&'a [Json]> {
    json.get(field).and_then(Json::as_arr).ok_or_else(|| missing(field))
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

// --- feature values & datasets -----------------------------------------

/// Tagged encoding mirroring the access layer's snapshot format. Finite
/// floats (and `f32` embedding components widened to `f64`) round-trip
/// bit-exactly.
fn value_to_json(value: &FeatureValue) -> Json {
    match value {
        FeatureValue::Missing => Json::Null,
        FeatureValue::Numeric(x) => Json::obj([("n", Json::Num(*x))]),
        FeatureValue::Categorical(set) => {
            Json::obj([("c", Json::Arr(set.iter().map(|id| Json::Num(f64::from(id))).collect()))])
        }
        FeatureValue::Embedding(e) => {
            Json::obj([("e", Json::Arr(e.iter().map(|&x| Json::Num(f64::from(x))).collect()))])
        }
    }
}

fn value_from_json(json: &Json) -> CmResult<FeatureValue> {
    if matches!(json, Json::Null) {
        return Ok(FeatureValue::Missing);
    }
    if let Some(x) = json.get("n").and_then(Json::as_f64) {
        return Ok(FeatureValue::Numeric(x));
    }
    if let Some(ids) = json.get("c").and_then(Json::as_arr) {
        let mut set = CatSet::new();
        for id in ids {
            set.insert(id.as_f64().ok_or_else(|| missing("categorical id"))? as u32);
        }
        return Ok(FeatureValue::Categorical(set));
    }
    if let Some(values) = json.get("e").and_then(Json::as_arr) {
        let e = values
            .iter()
            .map(|v| v.as_f64().map(|x| x as f32).ok_or_else(|| missing("embedding component")))
            .collect::<CmResult<Vec<f32>>>()?;
        return Ok(FeatureValue::Embedding(e));
    }
    Err(missing("feature value tag"))
}

fn modality_to_json(m: ModalityKind) -> Json {
    Json::Str(m.short().to_owned())
}

fn modality_from_json(json: &Json) -> CmResult<ModalityKind> {
    match json.as_str() {
        Some("T") => Ok(ModalityKind::Text),
        Some("I") => Ok(ModalityKind::Image),
        Some("V") => Ok(ModalityKind::Video),
        _ => Err(missing("modality")),
    }
}

fn dataset_to_json(ds: &ModalityDataset) -> Json {
    let rows: Vec<Json> = (0..ds.table.len())
        .map(|r| Json::Arr(ds.table.row(r).iter().map(value_to_json).collect()))
        .collect();
    Json::obj([
        ("modality", modality_to_json(ds.modality)),
        ("rows", Json::Arr(rows)),
        ("labels", Json::Arr(ds.labels.iter().map(|l| Json::Num(l.as_f64())).collect())),
        ("borderline", Json::Arr(ds.borderline.iter().map(|&b| Json::Bool(b)).collect())),
    ])
}

fn dataset_from_json(json: &Json, schema: &Arc<FeatureSchema>) -> CmResult<ModalityDataset> {
    let mut table = FeatureTable::new(schema.clone());
    for row in req_arr(json, "rows")? {
        let values = row
            .as_arr()
            .ok_or_else(|| missing("dataset row"))?
            .iter()
            .map(value_from_json)
            .collect::<CmResult<Vec<_>>>()?;
        table.push_row(&values);
    }
    let labels = req_arr(json, "labels")?
        .iter()
        .map(|v| match v.as_f64() {
            Some(x) if x == 1.0 => Ok(Label::Positive),
            Some(x) if x == 0.0 => Ok(Label::Negative),
            _ => Err(missing("label")),
        })
        .collect::<CmResult<Vec<_>>>()?;
    let borderline = req_arr(json, "borderline")?
        .iter()
        .map(|v| v.as_bool().ok_or_else(|| missing("borderline flag")))
        .collect::<CmResult<Vec<_>>>()?;
    Ok(ModalityDataset {
        modality: modality_from_json(json.get("modality").ok_or_else(|| missing("modality"))?)?,
        table,
        labels,
        borderline,
    })
}

// --- queue & quarantine --------------------------------------------------

fn queued_to_json(item: &QueuedBatch) -> Json {
    Json::obj([
        ("batch", dataset_to_json(&item.batch)),
        ("arrival_ms", Json::Num(item.arrival_ms as f64)),
        ("deferrals", Json::Num(f64::from(item.deferrals))),
    ])
}

fn queued_from_json(json: &Json, schema: &Arc<FeatureSchema>) -> CmResult<QueuedBatch> {
    Ok(QueuedBatch {
        batch: dataset_from_json(json.get("batch").ok_or_else(|| missing("batch"))?, schema)?,
        arrival_ms: req_f64(json, "arrival_ms")? as u64,
        deferrals: req_usize(json, "deferrals")? as u32,
    })
}

fn quarantined_to_json(q: &QuarantinedBatch) -> Json {
    Json::obj([
        ("item", queued_to_json(&q.item)),
        ("retry_tick", q.retry_tick.to_json()),
        ("attempts", Json::Num(f64::from(q.attempts))),
        ("reasons", Json::Arr(q.reasons.iter().map(|r| Json::Str(r.clone())).collect())),
    ])
}

fn quarantined_from_json(json: &Json, schema: &Arc<FeatureSchema>) -> CmResult<QuarantinedBatch> {
    Ok(QuarantinedBatch {
        item: queued_from_json(json.get("item").ok_or_else(|| missing("item"))?, schema)?,
        retry_tick: req_usize(json, "retry_tick")?,
        attempts: req_usize(json, "attempts")? as u32,
        reasons: req_arr(json, "reasons")?
            .iter()
            .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| missing("reason")))
            .collect::<CmResult<_>>()?,
    })
}

// --- curator state -------------------------------------------------------

fn warm_to_json(w: &WarmStart) -> Json {
    Json::obj([
        ("accuracies", Json::Arr(w.accuracies.iter().map(|&a| Json::Num(a)).collect())),
        ("class_prior", Json::Num(w.class_prior)),
    ])
}

fn warm_from_json(json: &Json) -> CmResult<WarmStart> {
    Ok(WarmStart {
        accuracies: req_arr(json, "accuracies")?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| missing("accuracy")))
            .collect::<CmResult<_>>()?,
        class_prior: req_f64(json, "class_prior")?,
    })
}

fn graph_to_json(g: &OnlineGraphState) -> Json {
    Json::obj([
        ("n_rows", g.n_rows.to_json()),
        ("anchors", Json::Arr(g.anchors.iter().map(|&a| Json::Num(f64::from(a))).collect())),
        (
            "anchor_members",
            Json::Arr(
                g.anchor_members
                    .iter()
                    .map(|m| Json::Arr(m.iter().map(|&r| Json::Num(f64::from(r))).collect()))
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                g.edges
                    .iter()
                    .map(|&(a, b, w)| {
                        Json::Arr(vec![
                            Json::Num(f64::from(a)),
                            Json::Num(f64::from(b)),
                            Json::Num(f64::from(w)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn graph_from_json(json: &Json) -> CmResult<OnlineGraphState> {
    let u32s = |field: &str| -> CmResult<Vec<u32>> {
        req_arr(json, field)?
            .iter()
            .map(|v| v.as_f64().map(|x| x as u32).ok_or_else(|| missing(field)))
            .collect()
    };
    let edges = req_arr(json, "edges")?
        .iter()
        .map(|v| {
            let parts = v.as_arr().filter(|p| p.len() == 3).ok_or_else(|| missing("edge"))?;
            let f = |i: usize| parts[i].as_f64().ok_or_else(|| missing("edge component"));
            Ok((f(0)? as u32, f(1)? as u32, f(2)? as f32))
        })
        .collect::<CmResult<Vec<_>>>()?;
    let anchor_members = req_arr(json, "anchor_members")?
        .iter()
        .map(|m| {
            m.as_arr()
                .ok_or_else(|| missing("anchor member list"))?
                .iter()
                .map(|v| v.as_f64().map(|x| x as u32).ok_or_else(|| missing("anchor member")))
                .collect::<CmResult<Vec<u32>>>()
        })
        .collect::<CmResult<Vec<_>>>()?;
    Ok(OnlineGraphState {
        n_rows: req_usize(json, "n_rows")?,
        anchors: u32s("anchors")?,
        anchor_members,
        edges,
    })
}

fn batch_stats_to_json(s: &BatchStats) -> Json {
    Json::obj([
        ("batch_index", s.batch_index.to_json()),
        ("rows", s.rows.to_json()),
        ("total_rows", s.total_rows.to_json()),
        ("coverage", Json::Num(s.coverage)),
        ("abstain_rate", Json::Num(s.abstain_rate)),
        ("mean_entropy", Json::Num(s.mean_entropy)),
        ("em_iterations", s.em_iterations.to_json()),
    ])
}

fn batch_stats_from_json(json: &Json) -> CmResult<BatchStats> {
    Ok(BatchStats {
        batch_index: req_usize(json, "batch_index")?,
        rows: req_usize(json, "rows")?,
        total_rows: req_usize(json, "total_rows")?,
        coverage: req_f64(json, "coverage")?,
        abstain_rate: req_f64(json, "abstain_rate")?,
        mean_entropy: req_f64(json, "mean_entropy")?,
        em_iterations: req_usize(json, "em_iterations")?,
    })
}

fn incremental_state_to_json(s: &IncrementalState) -> Json {
    Json::obj([
        ("n_batches", s.n_batches.to_json()),
        ("pool", dataset_to_json(&s.pool)),
        ("em_warm", s.em_warm.as_ref().map_or(Json::Null, warm_to_json)),
        ("em_iterations", s.em_iterations.to_json()),
        ("graph", s.graph.as_ref().map_or(Json::Null, graph_to_json)),
    ])
}

fn incremental_state_from_json(
    json: &Json,
    schema: &Arc<FeatureSchema>,
) -> CmResult<IncrementalState> {
    Ok(IncrementalState {
        n_batches: req_usize(json, "n_batches")?,
        pool: dataset_from_json(json.get("pool").ok_or_else(|| missing("pool"))?, schema)?,
        em_warm: match json.get("em_warm") {
            None | Some(Json::Null) => None,
            Some(v) => Some(warm_from_json(v)?),
        },
        em_iterations: req_usize(json, "em_iterations")?,
        graph: match json.get("graph") {
            None | Some(Json::Null) => None,
            Some(v) => Some(graph_from_json(v)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use cm_faults::ServiceAccessState;
    use cm_featurespace::{FeatureDef, FeatureSet, ServingMode, Vocabulary};
    use cm_pipeline::BatchStats;

    use super::*;

    fn schema() -> Arc<FeatureSchema> {
        Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("x", FeatureSet::A, ServingMode::Servable),
            FeatureDef::categorical(
                "c",
                FeatureSet::A,
                ServingMode::Servable,
                Vocabulary::from_names(["v0", "v1", "v2", "v3", "v4", "v5"]),
            ),
            FeatureDef::embedding("e", 2, FeatureSet::B, ServingMode::Servable),
        ]))
    }

    fn dataset(schema: &Arc<FeatureSchema>) -> ModalityDataset {
        let mut table = FeatureTable::new(schema.clone());
        let mut cats = CatSet::new();
        cats.insert(3);
        cats.insert(5);
        table.push_row(&[
            FeatureValue::Numeric(1.0 / 3.0),
            FeatureValue::Categorical(cats),
            FeatureValue::Embedding(vec![0.1, -2.5]),
        ]);
        table.push_row(&[
            FeatureValue::Missing,
            FeatureValue::Missing,
            FeatureValue::Embedding(vec![f32::consts::E, 0.0]),
        ]);
        ModalityDataset {
            modality: ModalityKind::Image,
            table,
            labels: vec![Label::Positive, Label::Negative],
            borderline: vec![false, true],
        }
    }

    use std::f32;

    fn fixture() -> Checkpoint {
        let schema = schema();
        let ds = dataset(&schema);
        let item = QueuedBatch { batch: ds.clone(), arrival_ms: 120, deferrals: 1 };
        capture(
            7,
            420,
            AccessState {
                now_ms: 910,
                services: vec![ServiceAccessState {
                    name: "img-embed".to_owned(),
                    consecutive_lost: 2,
                    open: true,
                    opened_at_ms: 640,
                    snapshot: Some(FeatureValue::Numeric(0.25)),
                    stats: Default::default(),
                }],
            },
            IncrementalState {
                n_batches: 3,
                pool: ds.clone(),
                em_warm: Some(WarmStart {
                    accuracies: vec![1.0 / 3.0, 0.7251, 2.0 / 7.0],
                    class_prior: 0.123_456_789,
                }),
                em_iterations: 20,
                graph: Some(OnlineGraphState {
                    n_rows: 5,
                    anchors: vec![0, 3],
                    anchor_members: vec![vec![0, 1, 4], vec![2, 3]],
                    edges: vec![(1, 0, 0.25), (4, 3, 0.125)],
                }),
            },
            PendingWork {
                queue: vec![item.clone()],
                deferred: vec![],
                quarantine: vec![QuarantinedBatch {
                    item,
                    retry_tick: 9,
                    attempts: 1,
                    reasons: vec!["coverage 0.0000 below minimum 0.0200".to_owned()],
                }],
            },
            ServeTelemetry {
                shed: SheddingReport {
                    offered: 5,
                    admitted: 3,
                    shed_rows: 7,
                    ..Default::default()
                },
                quarantined: 1,
                recovered: 0,
                dropped: 0,
                last_entropy: Some(0.631_234),
                batch_stats: vec![BatchStats {
                    batch_index: 0,
                    rows: 2,
                    total_rows: 2,
                    coverage: 0.5,
                    abstain_rate: 1.0 / 7.0,
                    mean_entropy: 0.6,
                    em_iterations: 40,
                }],
                latencies_ms: vec![15, 30],
            },
        )
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let cp = fixture();
        let text = cp.save();
        let back = load(&text, &schema()).expect("load");
        // Bit-exact: re-serializing the loaded checkpoint reproduces the
        // original text byte for byte (floats included).
        assert_eq!(back.save(), text);
        // Spot-check irrational floats survived exactly.
        let warm = back.curator.em_warm.expect("warm");
        assert_eq!(warm.accuracies[0].to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(back.pending.quarantine[0].retry_tick, 9);
        assert_eq!(back.telemetry.latencies_ms, vec![15, 30]);
        assert_eq!(back.access.services[0].opened_at_ms, 640);
    }

    #[test]
    fn load_rejects_other_versions() {
        let text = fixture().save().replacen("\"version\": 1", "\"version\": 2", 1);
        let err = load(&text, &schema()).expect_err("version 2 must be rejected");
        assert!(err.to_string().contains("unsupported checkpoint version"));
    }

    #[test]
    fn load_rejects_truncated_checkpoints() {
        let text = fixture().save();
        assert!(load(&text[..text.len() / 2], &schema()).is_err());
    }
}
