//! Pinned positive/negative spec corpus runner: the validator's
//! self-test, mirroring `cm_lint::corpus` for the lint gate.
//!
//! A corpus directory holds paired files: `name.json` (a spec input) and
//! `name.expected` (the violations the validator must produce, one per
//! line as `rule line col`, sorted by position; `#` comments and blank
//! lines ignored). A missing or empty `.expected` file makes the input a
//! *negative*: the validator must find it clean.
//!
//! Beyond matching each fixture exactly, the runner enforces a coverage
//! contract: every [`CheckRule`] variant must appear in at least one
//! positive expectation, so a new rule cannot land without a pinned
//! fixture demonstrating where it points.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::lint_spec::validate_lint_spec_source;
use crate::spec::validate_spec_source;
use crate::CheckRule;

/// Outcome of one corpus run.
#[derive(Debug, Default)]
pub struct CorpusOutcome {
    /// Corpus inputs exercised.
    pub files: usize,
    /// Inputs that expect at least one violation.
    pub positives: usize,
    /// Inputs that expect a clean validation.
    pub negatives: usize,
    /// Total violations expected (and, on success, produced).
    pub expected_violations: usize,
    /// Rule names that appeared in positive expectations.
    pub rules_covered: BTreeSet<String>,
    /// Human-readable mismatch descriptions; empty means the self-test
    /// passed.
    pub errors: Vec<String>,
}

impl CorpusOutcome {
    /// True when every expectation matched and every rule is covered.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

/// One expected violation parsed from a `.expected` file.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Expected {
    line: u32,
    col: u32,
    rule: String,
}

/// Runs the spec corpus at `dir`.
pub fn run_corpus(dir: &Path) -> CorpusOutcome {
    let mut out = CorpusOutcome::default();
    let Ok(entries) = fs::read_dir(dir) else {
        out.errors.push(format!("corpus directory {} is unreadable", dir.display()));
        return out;
    };
    let mut inputs: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    inputs.sort();
    if inputs.is_empty() {
        out.errors.push(format!("corpus directory {} holds no .json inputs", dir.display()));
        return out;
    }
    for input in inputs {
        out.files += 1;
        let name = input.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let Ok(source) = fs::read_to_string(&input) else {
            out.errors.push(format!("{name}: unreadable"));
            continue;
        };
        let mut expected = read_expected(&input.with_extension("expected"), &mut out.errors, &name);
        expected.sort();
        if expected.is_empty() {
            out.negatives += 1;
        } else {
            out.positives += 1;
            out.expected_violations += expected.len();
            for e in &expected {
                out.rules_covered.insert(e.rule.clone());
            }
        }
        // Inputs named after the lint-effects sanction spec exercise its
        // dedicated validator; everything else is an experiment spec.
        let violations = if name.contains("lint_effects") {
            validate_lint_spec_source(&source, &name)
        } else {
            validate_spec_source(&source, &name).1
        };
        let got: Vec<Expected> = violations
            .iter()
            .map(|v| Expected { line: v.line(), col: v.col(), rule: v.rule.name().to_owned() })
            .collect();
        for v in &violations {
            if v.span.is_none() {
                out.errors
                    .push(format!("{name}: violation [{}] carries no span: {}", v.rule, v.message));
            }
        }
        for e in &expected {
            if !got.contains(e) {
                out.errors.push(format!(
                    "{name}: expected [{}] at {}:{} but the validator was silent there",
                    e.rule, e.line, e.col
                ));
            }
        }
        for g in &got {
            if !expected.contains(g) {
                out.errors.push(format!("{name}: unexpected [{}] at {}:{}", g.rule, g.line, g.col));
            }
        }
    }
    for rule in CheckRule::ALL {
        if !out.rules_covered.contains(rule.name()) {
            out.errors.push(format!(
                "rule [{}] has no positive fixture in the corpus; add one with its expected span",
                rule.name()
            ));
        }
    }
    out
}

/// Parses a `.expected` file; absence means a negative input.
fn read_expected(path: &Path, errors: &mut Vec<String>, name: &str) -> Vec<Expected> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, l, c) = (parts.next(), parts.next(), parts.next());
        match (rule, l.and_then(|v| v.parse().ok()), c.and_then(|v| v.parse().ok())) {
            (Some(rule), Some(line), Some(col)) => {
                out.push(Expected { line, col, rule: rule.to_owned() });
            }
            _ => errors.push(format!(
                "{name}: malformed expectation on line {} (want `rule line col`): {line}",
                i + 1
            )),
        }
    }
    out
}
