//! Serving-tier recovery contracts for `cm-serve`.
//!
//! Two guarantees, tested at `CM_THREADS` ∈ {1, 2, 4} (`scripts/ci.sh`
//! runs the suite under each):
//!
//! 1. **Golden replay** — ingesting the pool as many arrival batches
//!    matches ingesting it as one batch. Coverage and the propagation
//!    graph are *exactly* cut-invariant; the EM posterior follows a
//!    warm-start chain whose fixed point can lag the cold fit, so the
//!    documented tolerance is a max posterior drift `< 0.05` with the
//!    default 20-iteration refit cap (see
//!    `cm_pipeline::incremental::IncrementalConfig::refit_max_iters`).
//! 2. **Crash/restart bit-identity** — for *every* batch index `k`,
//!    crashing after the k-th ingest (`CM_CRASH_AT` semantics) and
//!    resuming from the last checkpoint produces a final report
//!    byte-identical to an uninterrupted run. Checkpoint state is exact,
//!    so unlike replay there is no tolerance here at all.

use std::path::PathBuf;

use cross_modal::json::ToJson;
use cross_modal::par::ParConfig;
use cross_modal::pipeline::{IncrementalConfig, IncrementalCurator};
use cross_modal::prelude::*;
use cross_modal::serve::{self, RunOutcome, ServeConfig, ServeReport};

fn task() -> TaskConfig {
    TaskConfig::paper(TaskId::Ct2).scaled(0.02)
}

fn incremental_config() -> IncrementalConfig {
    let mut config = IncrementalConfig::default();
    config.curation.prop_max_seeds = 400;
    config.curation.mining.min_recall = 0.05;
    config
}

fn serve_config(seed: u64) -> ServeConfig {
    let mut config = ServeConfig::new(task(), seed);
    config.incremental = incremental_config();
    config.batch_rows = 40;
    config
}

fn run_completed(config: &ServeConfig, par: &ParConfig) -> Box<ServeReport> {
    match serve::run(config, par).expect("serve run failed") {
        RunOutcome::Completed { report, .. } => report,
        RunOutcome::Crashed { at_tick } => panic!("unexpected crash at tick {at_tick}"),
    }
}

fn scratch_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cm_serve_recovery_{}_{tag}.json", std::process::id()))
}

#[test]
fn replaying_all_batches_matches_one_batch_within_tolerance() {
    let par = ParConfig::from_env();
    let seed = 11u64;
    let ds = seed ^ 0xD1CE;
    let t = task();
    let world = World::build(WorldConfig::new(t.clone(), seed));
    let text = world.generate(ModalityKind::Text, t.n_text_labeled, ds ^ 0x1);
    let pool = world.generate(ModalityKind::Image, t.n_image_unlabeled, ds ^ 0x2);

    let mut one = IncrementalCurator::new(&world, &text, incremental_config());
    one.ingest_batch(&pool, &par);

    let mut many = IncrementalCurator::new(&world, &text, incremental_config());
    let mut start = 0;
    while start < pool.len() {
        let end = (start + 45).min(pool.len());
        let idx: Vec<usize> = (start..end).collect();
        many.ingest_batch(&pool.gather(&idx), &par);
        start = end;
    }

    // Coverage (votes + propagation graph) is exactly cut-invariant.
    assert_eq!(one.covered(), many.covered(), "coverage must not depend on batch cuts");
    // The EM warm chain carries a documented tolerance (module docs).
    let drift = one
        .posteriors()
        .iter()
        .zip(many.posteriors())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(drift < 0.05, "posterior drift {drift} exceeds the documented 0.05 tolerance");
}

#[test]
fn crash_at_every_batch_resumes_bit_identically() {
    // ci.sh runs this binary at CM_THREADS 1, 2, and 4; from_env picks
    // that up, so one test body covers the whole thread matrix.
    let par = ParConfig::from_env();
    let path = scratch_checkpoint("matrix");
    let _ = std::fs::remove_file(&path);

    let mut config = serve_config(11);
    config.checkpoint_path = Some(path.clone());

    let reference = run_completed(&config, &par);
    let reference_json = reference.to_json().to_string_pretty();
    let n_batches = reference.batches.len();
    assert!(n_batches >= 2, "need at least two batches for a meaningful crash matrix");

    for k in 1..=n_batches {
        let _ = std::fs::remove_file(&path);
        let mut crashing = config.clone();
        crashing.crash_at = Some(k);
        match serve::run(&crashing, &par).expect("crashing run errored") {
            RunOutcome::Crashed { at_tick } => {
                assert!(at_tick >= k, "crash after ingest {k} cannot precede tick {k}")
            }
            RunOutcome::Completed { .. } => panic!("crash_at={k} never fired"),
        }
        // k = 1 crashes before the first tick's checkpoint is ever
        // written — resuming from nothing (a fresh start) must also be
        // bit-identical. Every later k leaves a checkpoint behind.
        if k > 1 {
            assert!(path.exists(), "crash after batch {k} must leave a checkpoint behind");
        }

        // Restart with crash injection cleared: picks up the checkpoint.
        let resumed = run_completed(&config, &par);
        assert_eq!(
            resumed.to_json().to_string_pretty(),
            reference_json,
            "resume after crash at batch {k} diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpointed_and_uncheckpointed_runs_agree() {
    // Checkpoint persistence must be a pure observer: turning it on
    // cannot perturb the deterministic report.
    let par = ParConfig::from_env();
    let plain = run_completed(&serve_config(5), &par);
    let path = scratch_checkpoint("observer");
    let _ = std::fs::remove_file(&path);
    let mut with_cp = serve_config(5);
    with_cp.checkpoint_path = Some(path.clone());
    let observed = run_completed(&with_cp, &par);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        plain.to_json().to_string_pretty(),
        observed.to_json().to_string_pretty(),
        "checkpointing changed the run output"
    );
}

#[test]
fn torn_or_corrupt_tail_recovers_to_the_previous_durable_record_at_every_offset() {
    // Satellite of the delta-log checkpoint: a crash mid-append leaves a
    // truncated or garbled final record. Recovery must land exactly on
    // the previous durable record — for *every* byte offset of the tail —
    // and a service resumed off the torn log must finish bit-identical to
    // an uninterrupted run.
    let par = ParConfig::from_env();
    let path = scratch_checkpoint("tail");
    let _ = std::fs::remove_file(&path);
    let mut config = serve_config(11);
    config.checkpoint_path = Some(path.clone());
    // Keep the whole run as one base + deltas so the tail is a delta.
    config.compaction.every_ticks = 10_000;
    config.compaction.max_log_factor = 1e9;

    let reference = run_completed(&config, &par);
    let reference_json = reference.to_json().to_string_pretty();

    let bytes = std::fs::read(&path).expect("checkpoint log exists");
    let world = World::build(WorldConfig::new(task(), 11));
    let schema = world.schema();
    let full = serve::snapshot::load_any(&bytes, schema).expect("intact log recovers");
    assert_eq!(full.valid_bytes, bytes.len(), "intact log must be fully valid");
    assert!(full.deltas >= 2, "run too short to leave a delta tail");
    // Dropping one byte makes the final record torn; its recovery point
    // is the start of that record.
    let last_start =
        serve::snapshot::load_any(&bytes[..bytes.len() - 1], schema).expect("torn").valid_bytes;
    assert!(last_start < bytes.len());

    for cut in last_start..bytes.len() {
        let rec = serve::snapshot::load_any(&bytes[..cut], schema)
            .expect("truncated tail must still recover");
        assert_eq!(rec.valid_bytes, last_start, "cut at {cut} recovered past the torn record");
        assert_eq!(rec.deltas, full.deltas - 1, "cut at {cut} kept a torn delta");
    }
    for byte in last_start..bytes.len() {
        let mut bad = bytes.clone();
        bad[byte] ^= 0x10;
        let rec = serve::snapshot::load_any(&bad, schema).expect("corrupt tail must still recover");
        assert_eq!(rec.valid_bytes, last_start, "flip at {byte} went undetected");
    }

    // Full service resumes off sampled torn logs: bit-identical reports.
    for cut in [last_start + 1, last_start + (bytes.len() - last_start) / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).expect("write torn log");
        let resumed = run_completed(&config, &par);
        assert_eq!(
            resumed.to_json().to_string_pretty(),
            reference_json,
            "resume from tail cut at {cut} diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kill_mid_append_resumes_from_the_last_complete_record() {
    // A crash can land while a delta record is half-written. Simulate the
    // torn append on a real mid-run log and resume through it.
    let par = ParConfig::from_env();
    let path = scratch_checkpoint("midappend");
    let _ = std::fs::remove_file(&path);
    let mut config = serve_config(11);
    config.checkpoint_path = Some(path.clone());

    let reference = run_completed(&config, &par);
    let reference_json = reference.to_json().to_string_pretty();
    let mid = (reference.batches.len() / 2).max(2);

    let _ = std::fs::remove_file(&path);
    let mut crashing = config.clone();
    crashing.crash_at = Some(mid);
    assert!(matches!(
        serve::run(&crashing, &par).expect("crashing run errored"),
        RunOutcome::Crashed { .. }
    ));

    // Simulate the kill landing mid-`commit_delta`: the log gains a tail
    // of record-shaped bytes that never got their checksum — any torn
    // suffix behaves the same, so half the file's own prefix serves.
    let bytes = std::fs::read(&path).expect("mid-run log exists");
    let world = World::build(WorldConfig::new(task(), 11));
    let intact = serve::snapshot::load_any(&bytes, world.schema()).expect("intact log recovers");
    assert_eq!(intact.valid_bytes, bytes.len());
    let torn = [&bytes[..], &bytes[..bytes.len() / 2]].concat();
    std::fs::write(&path, &torn).expect("write torn log");
    let rec = serve::snapshot::load_any(&torn, world.schema()).expect("torn log recovers");
    assert_eq!(rec.valid_bytes, bytes.len(), "torn append must be discarded whole");

    let resumed = run_completed(&config, &par);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        resumed.to_json().to_string_pretty(),
        reference_json,
        "resume through a torn append diverged from the uninterrupted run"
    );
}

#[test]
fn legacy_json_checkpoints_resume_and_upgrade_to_the_wire_log() {
    // Old runs persisted whole-file JSON. The store must resume off one
    // and migrate the file to the wire log on its next write.
    let par = ParConfig::from_env();
    let path = scratch_checkpoint("legacy");
    let _ = std::fs::remove_file(&path);
    let mut json_config = serve_config(5);
    json_config.checkpoint_path = Some(path.clone());
    json_config.checkpoint_format = serve::CheckpointFormat::Json;

    let reference = run_completed(&json_config, &par);
    let reference_json = reference.to_json().to_string_pretty();
    let mid = (reference.batches.len() / 2).max(1);

    let _ = std::fs::remove_file(&path);
    let mut crashing = json_config.clone();
    crashing.crash_at = Some(mid);
    assert!(matches!(
        serve::run(&crashing, &par).expect("crashing run errored"),
        RunOutcome::Crashed { .. }
    ));
    let first = std::fs::read(&path).expect("json checkpoint exists")[0];
    assert_eq!(first, b'{', "JSON-format run must leave a JSON file");

    // Resume in the (default) wire format off the legacy JSON file.
    let mut wire_config = json_config.clone();
    wire_config.checkpoint_format = serve::CheckpointFormat::Wire;
    let resumed = run_completed(&wire_config, &par);
    assert_eq!(
        resumed.to_json().to_string_pretty(),
        reference_json,
        "wire-format resume off a legacy JSON checkpoint diverged"
    );
    let bytes = std::fs::read(&path).expect("checkpoint exists");
    assert_eq!(&bytes[..4], b"CMCK", "resumed run must have migrated the file to the wire log");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_under_fault_storm_still_resumes_bit_identically() {
    // The hard case: breaker state, fault draws, and stale snapshots are
    // all mid-flight when the crash lands.
    let par = ParConfig::from_env();
    let storm = "seed=7;topics=unavailable@0.5;keywords=transient(2)@0.6;\
                 page_quality=latency(300)@0.5;user_reports=corrupt@0.4;\
                 kg_entities=stale;sentiment=unavailable@0.9";
    let path = scratch_checkpoint("storm");
    let _ = std::fs::remove_file(&path);
    let mut config = serve_config(11);
    config.plan = FaultPlan::parse(storm).expect("storm plan parses");
    config.checkpoint_path = Some(path.clone());

    let reference = run_completed(&config, &par);
    let reference_json = reference.to_json().to_string_pretty();
    let mid = (reference.batches.len() / 2).max(1);

    let _ = std::fs::remove_file(&path);
    let mut crashing = config.clone();
    crashing.crash_at = Some(mid);
    assert!(matches!(
        serve::run(&crashing, &par).expect("crashing storm run errored"),
        RunOutcome::Crashed { .. }
    ));
    let resumed = run_completed(&config, &par);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        resumed.to_json().to_string_pretty(),
        reference_json,
        "storm resume diverged from the uninterrupted storm run"
    );
}
