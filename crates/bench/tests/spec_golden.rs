//! Golden equivalence between the checked-in specs and the code-defined
//! experiment matrix they replaced.
//!
//! `specs/fusion_compare.json` and `specs/table1.json` are pinned against
//! the `Scenario` constructors the binaries used before the spec surface
//! existed, and one spec-built scenario is trained end-to-end to show the
//! spec path produces bit-identical results — not merely equal configs.

use cm_bench::{load_spec, spec_reservoir, spec_scenario, TaskRun};
use cm_featurespace::FeatureSet;
use cm_orgsim::TaskId;
use cm_pipeline::{curate, FusionStrategy, LabelSource, Scenario};

#[test]
fn fusion_compare_spec_matches_code_defined_scenarios() {
    let spec = load_spec("fusion_compare");
    assert_eq!(spec.scale, 0.5);
    assert_eq!(spec.seeds, 3);
    assert_eq!(spec.seed, 42);
    assert_eq!(spec_reservoir(&spec, 1.0), Some(4000));

    let sets = FeatureSet::SHARED;
    assert_eq!(spec_scenario(&spec, "cross-modal T,I+ABCD"), Scenario::cross_modal(&sets));
    assert_eq!(spec_scenario(&spec, "image-only I+ABCD"), Scenario::image_only(&sets));

    let mut inter = Scenario::cross_modal(&sets);
    inter.name = "intermediate".into();
    inter.strategy = FusionStrategy::Intermediate;
    assert_eq!(spec_scenario(&spec, "intermediate"), inter);

    let mut devise = Scenario::cross_modal(&sets);
    devise.name = "devise".into();
    devise.strategy = FusionStrategy::DeVise;
    assert_eq!(spec_scenario(&spec, "devise"), devise);

    let raw = Scenario {
        name: "raw embedding (weak)".into(),
        text_sets: Vec::new(),
        image_sets: Vec::new(),
        image_labels: Some(LabelSource::Weak),
        include_modality_specific: true,
        strategy: FusionStrategy::Early,
    };
    assert_eq!(spec_scenario(&spec, "raw embedding (weak)"), raw);
}

#[test]
fn table1_spec_pins_the_paper_configuration() {
    let spec = load_spec("table1");
    assert_eq!(spec.tasks, TaskId::ALL.to_vec());
    assert_eq!(spec.scale, 1.0);
    assert_eq!(spec.seeds, 1);
    assert_eq!(spec.seed, 42);
    assert!(spec.n_labeled_image.is_none());
    assert!(spec.scenarios.is_empty());
}

#[test]
fn spec_driven_scenarios_train_bit_identically_to_code_defined() {
    let spec = load_spec("fusion_compare");
    let run = TaskRun::new(TaskId::Ct2, 0.03, 17, Some(400));
    let curation = curate(&run.data, &run.curation_config(17));
    let runner = run.runner();
    for (name, code) in [
        ("cross-modal T,I+ABCD", Scenario::cross_modal(&FeatureSet::SHARED)),
        ("image-only I+ABCD", Scenario::image_only(&FeatureSet::SHARED)),
    ] {
        let from_spec = runner.run(&spec_scenario(&spec, name), Some(&curation)).unwrap();
        let from_code = runner.run(&code, Some(&curation)).unwrap();
        assert_eq!(from_spec, from_code, "{name}");
        assert_eq!(from_spec.auprc.to_bits(), from_code.auprc.to_bits(), "{name}");
    }
}
