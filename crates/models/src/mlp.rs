//! Fully-connected ReLU network with a single-logit sigmoid head.

use cm_linalg::rng::SliceRandom;
use cm_linalg::rng::StdRng;
use cm_linalg::{dot, sigmoid, xavier_uniform, Matrix};
use cm_par::ParConfig;

use crate::loss::bce_grad;
use crate::optim::{Adam, Optimizer};

/// Minimum batch items per gradient chunk (see `cm-models::logistic`): the
/// default batch size fits in one chunk, preserving historical numerics;
/// large batches split deterministically and fold in chunk index order.
const BATCH_MIN_CHUNK: usize = 256;

/// Below this many rows, forward passes (`logits`, `embed`) stay serial.
const FORWARD_PAR_ROWS: usize = 1024;

#[derive(Clone)]
struct DenseLayer {
    /// `out x in` weights.
    w: Matrix,
    b: Vec<f32>,
    opt_w: Adam,
    opt_b: Adam,
}

/// A fully-connected binary classifier: ReLU hidden layers, sigmoid output.
///
/// Exposes [`Mlp::embed`] — the activation before the final prediction
/// layer — which intermediate fusion concatenates and DeViSE projects (§5).
#[derive(Clone)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    dims: Vec<usize>,
}

/// Hyperparameters for one [`Mlp::train_epoch`] call.
#[derive(Debug, Clone)]
pub struct MlpEpochConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 penalty on weights.
    pub l2: f32,
    /// Epoch shuffle seed (vary per epoch).
    pub shuffle_seed: u64,
}

impl Mlp {
    /// Creates a network `input_dim -> hidden... -> 1` with Xavier-uniform
    /// init and per-layer Adam optimizers.
    ///
    /// # Panics
    /// Panics if `input_dim == 0` or any hidden width is 0.
    pub fn new(input_dim: usize, hidden: &[usize], lr: f32, seed: u64) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        assert!(hidden.iter().all(|&h| h > 0), "hidden widths must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![input_dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for win in dims.windows(2) {
            let (fan_in, fan_out) = (win[0], win[1]);
            let w = xavier_uniform(&mut rng, fan_in, fan_out);
            layers.push(DenseLayer {
                w,
                b: vec![0.0; fan_out],
                opt_w: Adam::new(lr, fan_out * fan_in),
                opt_b: Adam::new(lr, fan_out),
            });
        }
        Self { layers, dims }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Width of the penultimate activation returned by [`Mlp::embed`].
    pub fn embed_dim(&self) -> usize {
        self.dims[self.dims.len() - 2]
    }

    /// Runs one epoch of mini-batch training on soft targets; returns the
    /// mean training loss.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn train_epoch(
        &mut self,
        x: &Matrix,
        targets: &[f64],
        sample_weights: Option<&[f64]>,
        config: &MlpEpochConfig,
    ) -> f64 {
        self.train_epoch_with(x, targets, sample_weights, config, &ParConfig::from_env())
    }

    /// [`Mlp::train_epoch`] with an explicit parallel configuration.
    ///
    /// Per-batch gradients accumulate in fixed-size sample chunks whose
    /// partial gradient matrices fold in chunk index order, so the updated
    /// weights are bit-identical for any thread count.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn train_epoch_with(
        &mut self,
        x: &Matrix,
        targets: &[f64],
        sample_weights: Option<&[f64]>,
        config: &MlpEpochConfig,
        par: &ParConfig,
    ) -> f64 {
        assert_eq!(x.rows(), targets.len(), "target count mismatch");
        assert_eq!(x.cols(), self.input_dim(), "feature width mismatch");
        if let Some(w) = sample_weights {
            assert_eq!(w.len(), targets.len(), "sample weight count mismatch");
        }
        let par = par.clone().with_min_chunk(BATCH_MIN_CHUNK);
        let mut rng = StdRng::seed_from_u64(config.shuffle_seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        order.shuffle(&mut rng);

        let mut total_loss = 0.0f64;
        let mut total_weight = 0.0f64;
        for batch in order.chunks(config.batch_size) {
            let this = &*self;
            let folded = cm_par::par_map_reduce(
                &par,
                batch.len(),
                |range| {
                    let mut part = GradPartial::zeros(this);
                    let mut acts: Vec<Vec<f32>> = this.dims.iter().map(|&d| vec![0.0; d]).collect();
                    let mut deltas: Vec<Vec<f32>> =
                        this.dims[1..].iter().map(|&d| vec![0.0; d]).collect();
                    for &i in &batch[range] {
                        this.accumulate_sample(
                            x,
                            targets,
                            sample_weights,
                            i,
                            &mut part,
                            &mut acts,
                            &mut deltas,
                        );
                    }
                    part
                },
                // lint: allow(merge-float) — chunk-index-order fold is pinned
                // by par_map_reduce; the serial path replays the identical
                // GradPartial::add sequence (serial≡parallel suite)
                GradPartial::add,
            )
            .unwrap_or_else(|e| e.resume());
            let Some(mut part) = folded else { continue };
            total_loss += part.loss;
            total_weight += part.weight;
            if part.batch_weight > 0.0 {
                let inv = 1.0 / part.batch_weight;
                for (l, layer) in self.layers.iter_mut().enumerate() {
                    part.grad_w[l].scale(inv);
                    part.grad_w[l].axpy(config.l2, &layer.w);
                    cm_linalg::scale(&mut part.grad_b[l], inv);
                    layer.opt_w.step(layer.w.as_mut_slice(), part.grad_w[l].as_slice());
                    layer.opt_b.step(&mut layer.b, &part.grad_b[l]);
                }
            }
        }
        if total_weight > 0.0 {
            total_loss / total_weight
        } else {
            0.0
        }
    }

    /// Runs one sample's forward and backward pass, accumulating into the
    /// chunk-local gradient partial. `acts`/`deltas` are reused scratch.
    fn accumulate_sample(
        &self,
        x: &Matrix,
        targets: &[f64],
        sample_weights: Option<&[f64]>,
        i: usize,
        part: &mut GradPartial,
        acts: &mut [Vec<f32>],
        deltas: &mut [Vec<f32>],
    ) {
        let n_layers = self.layers.len();
        acts[0].copy_from_slice(x.row(i));
        // Forward.
        for (l, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = acts.split_at_mut(l + 1);
            let a_in = &prev[l];
            let a_out = &mut rest[0];
            for (o, out) in a_out.iter_mut().enumerate() {
                let z = dot(layer.w.row(o), a_in) + layer.b[o];
                *out = if l + 1 == n_layers { z } else { z.max(0.0) };
            }
        }
        let z = acts[n_layers][0];
        let w = sample_weights.map_or(1.0, |w| w[i]) as f32;
        part.loss += f64::from(w) * crate::loss::bce_with_logit(z, targets[i]);
        part.weight += f64::from(w);
        part.batch_weight += w;

        // Backward.
        deltas[n_layers - 1][0] = bce_grad(z, targets[i]) * w;
        for l in (0..n_layers).rev() {
            // Accumulate gradients for layer l.
            for o in 0..self.layers[l].w.rows() {
                let d = deltas[l][o];
                if d != 0.0 {
                    cm_linalg::axpy(d, &acts[l], part.grad_w[l].row_mut(o));
                    part.grad_b[l][o] += d;
                }
            }
            if l > 0 {
                // delta_{l-1} = W_l^T delta_l ∘ relu'(act_l)
                let (d_prev, d_cur) = deltas.split_at_mut(l);
                let d_prev = &mut d_prev[l - 1];
                let d_cur = &d_cur[0];
                d_prev.fill(0.0);
                for (o, &d) in d_cur.iter().enumerate() {
                    if d != 0.0 {
                        cm_linalg::axpy(d, self.layers[l].w.row(o), d_prev);
                    }
                }
                for (dp, &a) in d_prev.iter_mut().zip(&acts[l]) {
                    if a <= 0.0 {
                        *dp = 0.0;
                    }
                }
            }
        }
    }

    /// Forward pass to logits.
    pub fn logits(&self, x: &Matrix) -> Vec<f32> {
        self.logits_with(x, &ParConfig::from_env())
    }

    /// [`Mlp::logits`] with an explicit parallel configuration. The forward
    /// pass is row-independent, so any thread count yields the same bits;
    /// small inputs stay serial.
    ///
    /// # Panics
    /// Panics if the feature width differs from the input dimension.
    pub fn logits_with(&self, x: &Matrix, par: &ParConfig) -> Vec<f32> {
        assert_eq!(x.cols(), self.input_dim(), "feature width mismatch");
        let forward_chunk = |range: std::ops::Range<usize>| {
            let mut out = Vec::with_capacity(range.len());
            let mut buf_a: Vec<f32> = Vec::new();
            let mut buf_b: Vec<f32> = Vec::new();
            for r in range {
                buf_a.clear();
                buf_a.extend_from_slice(x.row(r));
                for (l, layer) in self.layers.iter().enumerate() {
                    buf_b.clear();
                    for o in 0..layer.w.rows() {
                        let z = dot(layer.w.row(o), &buf_a) + layer.b[o];
                        buf_b.push(if l + 1 == self.layers.len() { z } else { z.max(0.0) });
                    }
                    std::mem::swap(&mut buf_a, &mut buf_b);
                }
                out.push(buf_a[0]);
            }
            out
        };
        if x.rows() < FORWARD_PAR_ROWS {
            return forward_chunk(0..x.rows());
        }
        let chunks =
            cm_par::par_map_chunks(par, x.rows(), forward_chunk).unwrap_or_else(|e| e.resume());
        chunks.into_iter().flatten().collect()
    }

    /// Positive-class probabilities.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.logits(x).into_iter().map(|z| f64::from(sigmoid(z))).collect()
    }

    /// The activation before the final prediction layer, per row.
    pub fn embed(&self, x: &Matrix) -> Matrix {
        self.embed_with(x, &ParConfig::from_env())
    }

    /// [`Mlp::embed`] with an explicit parallel configuration. Row-wise
    /// forward passes are independent, so any thread count yields the same
    /// bits; small inputs stay serial.
    ///
    /// # Panics
    /// Panics if the feature width differs from the input dimension.
    pub fn embed_with(&self, x: &Matrix, par: &ParConfig) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "feature width mismatch");
        let mut out = Matrix::zeros(x.rows(), self.embed_dim());
        let embed_rows = |range: std::ops::Range<usize>, rows_out: &mut [f32]| {
            let width = self.embed_dim();
            let mut buf_a: Vec<f32> = Vec::new();
            let mut buf_b: Vec<f32> = Vec::new();
            for (k, r) in range.enumerate() {
                buf_a.clear();
                buf_a.extend_from_slice(x.row(r));
                for layer in &self.layers[..self.layers.len() - 1] {
                    buf_b.clear();
                    for o in 0..layer.w.rows() {
                        let z = dot(layer.w.row(o), &buf_a) + layer.b[o];
                        buf_b.push(z.max(0.0));
                    }
                    std::mem::swap(&mut buf_a, &mut buf_b);
                }
                rows_out[k * width..(k + 1) * width].copy_from_slice(&buf_a);
            }
        };
        if x.rows() < FORWARD_PAR_ROWS || self.embed_dim() == 0 {
            embed_rows(0..x.rows(), out.as_mut_slice());
            return out;
        }
        cm_par::par_chunks_mut(par, out.as_mut_slice(), self.embed_dim(), |start, chunk| {
            embed_rows(start..start + chunk.len() / self.embed_dim(), chunk);
        })
        .unwrap_or_else(|e| e.resume());
        out
    }

    /// Replaces the final prediction layer's input by re-wiring: returns the
    /// final layer's weights (used by DeViSE, which freezes model A and
    /// reuses its head).
    pub fn head_weights(&self) -> (&[f32], f32) {
        // The constructor always appends the prediction head.
        // lint: allow(expect)
        let last = self.layers.last().expect("network has layers");
        (last.w.row(0), last.b[0])
    }
}

/// Chunk-local gradient accumulator for one mini-batch slice; partials
/// fold in chunk index order via [`GradPartial::add`].
struct GradPartial {
    grad_w: Vec<Matrix>,
    grad_b: Vec<Vec<f32>>,
    batch_weight: f32,
    loss: f64,
    weight: f64,
}

impl GradPartial {
    fn zeros(mlp: &Mlp) -> Self {
        Self {
            grad_w: mlp.layers.iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect(),
            grad_b: mlp.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            batch_weight: 0.0,
            loss: 0.0,
            weight: 0.0,
        }
    }

    fn add(mut self, other: Self) -> Self {
        for (a, b) in self.grad_w.iter_mut().zip(&other.grad_w) {
            a.axpy(1.0, b);
        }
        for (a, b) in self.grad_b.iter_mut().zip(&other.grad_b) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
        self.batch_weight += other.batch_weight;
        self.loss += other.loss;
        self.weight += other.weight;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish dataset a linear model cannot fit.
    fn xor(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 2) as f32;
            let b = ((i / 2) % 2) as f32;
            let jitter = ((i * 13 % 50) as f32) / 500.0;
            rows.push(vec![a * 2.0 - 1.0 + jitter, b * 2.0 - 1.0 - jitter]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    fn train(mlp: &mut Mlp, x: &Matrix, y: &[f64], epochs: usize) {
        for e in 0..epochs {
            mlp.train_epoch(
                x,
                y,
                None,
                &MlpEpochConfig { batch_size: 16, l2: 0.0, shuffle_seed: e as u64 },
            );
        }
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor(200);
        let mut mlp = Mlp::new(2, &[16], 0.05, 3);
        train(&mut mlp, &x, &y, 120);
        let p = mlp.predict_proba(&x);
        let correct = p.iter().zip(&y).filter(|(p, &t)| (**p >= 0.5) == (t >= 0.5)).count();
        assert!(correct >= 190, "{correct}/200 correct on XOR");
    }

    #[test]
    fn training_loss_decreases() {
        let (x, y) = xor(200);
        let mut mlp = Mlp::new(2, &[8], 0.05, 1);
        let first = mlp.train_epoch(
            &x,
            &y,
            None,
            &MlpEpochConfig { batch_size: 16, l2: 0.0, shuffle_seed: 0 },
        );
        train(&mut mlp, &x, &y, 60);
        let last = mlp.train_epoch(
            &x,
            &y,
            None,
            &MlpEpochConfig { batch_size: 16, l2: 0.0, shuffle_seed: 99 },
        );
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn embed_has_declared_shape_and_feeds_head() {
        let (x, y) = xor(40);
        let mut mlp = Mlp::new(2, &[8, 4], 0.05, 2);
        train(&mut mlp, &x, &y, 10);
        let e = mlp.embed(&x);
        assert_eq!(e.shape(), (40, 4));
        assert_eq!(mlp.embed_dim(), 4);
        // Head applied to embed must reproduce logits.
        let (hw, hb) = mlp.head_weights();
        let via_head: Vec<f32> = e.rows_iter().map(|r| dot(r, hw) + hb).collect();
        let direct = mlp.logits(&x);
        for (a, b) in via_head.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = xor(60);
        let run = || {
            let mut m = Mlp::new(2, &[6], 0.05, 7);
            train(&mut m, &x, &y, 5);
            m.predict_proba(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn epoch_is_bit_identical_across_thread_counts() {
        // Batch 1024 splits into multiple 256-sample gradient chunks, and
        // 2048 rows crosses the parallel forward-pass threshold.
        let (x, y) = xor(2048);
        let cfg = MlpEpochConfig { batch_size: 1024, l2: 1e-4, shuffle_seed: 3 };
        let run = |par: &ParConfig| {
            let mut m = Mlp::new(2, &[8, 4], 0.05, 7);
            let mut losses = Vec::new();
            for _ in 0..2 {
                losses.push(m.train_epoch_with(&x, &y, None, &cfg, par));
            }
            (losses, m.logits_with(&x, par), m.embed_with(&x, par))
        };
        let (base_loss, base_logits, base_embed) = run(&ParConfig::threads(1));
        for threads in [2usize, 4, 8] {
            let (loss, logits, embed) = run(&ParConfig::threads(threads));
            assert_eq!(loss, base_loss, "threads = {threads}");
            assert_eq!(logits, base_logits, "threads = {threads}");
            assert_eq!(embed.as_slice(), base_embed.as_slice(), "threads = {threads}");
        }
    }

    #[test]
    fn no_hidden_layer_reduces_to_linear() {
        let mut mlp = Mlp::new(3, &[], 0.05, 0);
        assert_eq!(mlp.embed_dim(), 3);
        let x = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]);
        // embed of a layerless body is the input itself.
        let e = mlp.embed(&x);
        assert_eq!(e.row(0), x.row(0));
        let y = [1.0];
        let l = mlp.train_epoch(
            &x,
            &y,
            None,
            &MlpEpochConfig { batch_size: 1, l2: 0.0, shuffle_seed: 0 },
        );
        assert!(l.is_finite());
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn logits_reject_wrong_width() {
        let mlp = Mlp::new(4, &[2], 0.05, 0);
        mlp.logits(&Matrix::zeros(1, 3));
    }

    #[test]
    #[should_panic(expected = "hidden widths must be positive")]
    fn rejects_zero_width_hidden() {
        Mlp::new(4, &[0], 0.05, 0);
    }

    #[test]
    fn sample_weights_affect_training() {
        let (x, y) = xor(100);
        let w: Vec<f64> = y.iter().map(|&t| if t >= 0.5 { 5.0 } else { 0.2 }).collect();
        let mut a = Mlp::new(2, &[8], 0.05, 5);
        let mut b = Mlp::new(2, &[8], 0.05, 5);
        for e in 0..20 {
            let cfg = MlpEpochConfig { batch_size: 16, l2: 0.0, shuffle_seed: e };
            a.train_epoch(&x, &y, None, &cfg);
            b.train_epoch(&x, &y, Some(&w), &cfg);
        }
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(b.predict_proba(&x)) > mean(a.predict_proba(&x)));
    }
}
