//! Pairwise similarity over the common feature space (paper §4.4,
//! Algorithm 1).
//!
//! Algorithm 1 as printed accumulates a numeric *distance* (any norm of the
//! difference) and a categorical Jaccard *similarity* into one weight, with
//! the text noting "each feature's contribution is normalized in lines 5 and
//! 7, which we omit for simplicity." We provide both:
//!
//! - [`algorithm1_weight`] — the literal pseudocode, for fidelity and tests;
//! - [`normalized_similarity`] — the normalized form used by the propagation
//!   graph: each shared, present feature contributes a value in `[0, 1]`
//!   (numeric via a scaled RBF of the absolute difference, categorical via
//!   Jaccard, embeddings via shifted cosine), averaged over contributing
//!   features.

use cm_linalg::StableSum;

use crate::frozen::{Bitmap, FrozenColumn, FrozenTable};
use crate::table::FeatureTable;
use crate::value::FeatureKind;

/// Configuration for [`normalized_similarity`].
#[derive(Debug, Clone)]
pub struct SimilarityConfig {
    /// Per-numeric-feature scale: `sim = exp(-|a - b| / scale)`. Defaults to
    /// 1.0 per feature; fit from data with [`SimilarityConfig::fit_scales`].
    pub numeric_scales: Vec<(usize, f64)>,
    /// Columns to compare. Pairs with no shared present feature get weight 0.
    pub columns: Vec<usize>,
}

impl SimilarityConfig {
    /// Uses the given columns with unit numeric scales.
    pub fn uniform(columns: Vec<usize>) -> Self {
        Self { numeric_scales: Vec::new(), columns }
    }

    /// Fits per-column numeric scales to the mean absolute deviation of each
    /// numeric column in `table`, so one wide-ranged statistic (e.g. view
    /// counts) cannot dominate the weight — the normalization Algorithm 1
    /// alludes to.
    pub fn fit_scales(self, table: &FeatureTable) -> Self {
        self.fit_scales_frozen(&FrozenTable::freeze(table))
    }

    /// [`SimilarityConfig::fit_scales`] over an existing frozen view.
    ///
    /// Runs both passes through the mergeable [`ScaleAccumulator`] /
    /// [`DeviationAccumulator`] pair, so the resident fit is *defined* as
    /// the single-segment case of the segmented fit: the accumulators sum
    /// exactly (via [`StableSum`]), which makes the fitted scales
    /// independent of row order and of any segmentation of the table.
    pub fn fit_scales_frozen(mut self, frozen: &FrozenTable<'_>) -> Self {
        let mut acc = ScaleAccumulator::new(&self.columns);
        acc.observe(frozen);
        let mut dev = acc.finish_means();
        dev.observe(frozen);
        self.numeric_scales = dev.finish();
        self
    }

    fn scale_for(&self, col: usize) -> f64 {
        self.numeric_scales.iter().find(|(c, _)| *c == col).map_or(1.0, |(_, s)| *s)
    }
}

/// Phase-1 accumulator for [`SimilarityConfig::fit_scales`]: per-column
/// exact sums and presence counts over any number of table segments.
///
/// The accumulator is an explicit associative-merge type: feeding it the
/// segments of a table in any order — or merging independently built
/// per-segment accumulators in any grouping — yields bit-identical means,
/// because the underlying [`StableSum`]s are exact. Columns that are
/// out of range, non-numeric, or never present contribute no scale,
/// matching the resident fit.
#[derive(Debug, Clone)]
pub struct ScaleAccumulator {
    columns: Vec<usize>,
    sums: Vec<StableSum>,
    counts: Vec<u64>,
}

impl ScaleAccumulator {
    /// An empty accumulator over the configured column list (in config
    /// order; duplicates keep their own slots).
    pub fn new(columns: &[usize]) -> Self {
        Self {
            columns: columns.to_vec(),
            sums: columns.iter().map(|_| StableSum::new()).collect(),
            counts: vec![0; columns.len()],
        }
    }

    /// Accumulates one table segment. All segments must share a schema.
    pub fn observe(&mut self, frozen: &FrozenTable<'_>) {
        let schema = frozen.table().schema();
        for (slot, &col) in self.columns.iter().enumerate() {
            // Out-of-range columns are skipped here; `cm-check` validates
            // column lists against the schema before execution.
            if schema.def(col).map(|d| d.kind) != Some(FeatureKind::Numeric) {
                continue;
            }
            let FrozenColumn::Numeric { values, present } = frozen.col(col) else {
                continue;
            };
            for (r, &v) in values.iter().enumerate() {
                if present.get(r) {
                    self.sums[slot].add(v);
                    self.counts[slot] += 1;
                }
            }
        }
    }

    /// Folds another accumulator (built over the same column list) into
    /// this one. Exact, hence associative and commutative.
    ///
    /// # Panics
    /// Panics if the column lists differ.
    pub fn merge(&mut self, other: &ScaleAccumulator) {
        assert_eq!(self.columns, other.columns, "scale accumulators cover different columns");
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            a.merge(b);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
    }

    /// Closes phase 1: renders each covered column's mean and returns the
    /// phase-2 deviation accumulator. Clone the result to fan phase 2 out
    /// over segments, then [`DeviationAccumulator::merge`] the clones.
    pub fn finish_means(self) -> DeviationAccumulator {
        let means = self
            .sums
            .iter()
            .zip(&self.counts)
            .map(|(s, &n)| if n == 0 { 0.0 } else { s.value() / n as f64 })
            .collect();
        DeviationAccumulator {
            columns: self.columns.clone(),
            means,
            counts: self.counts,
            devs: self.columns.iter().map(|_| StableSum::new()).collect(),
        }
    }
}

/// Phase-2 accumulator for [`SimilarityConfig::fit_scales`]: exact sums
/// of absolute deviations from the phase-1 means. Same merge contract as
/// [`ScaleAccumulator`].
#[derive(Debug, Clone)]
pub struct DeviationAccumulator {
    columns: Vec<usize>,
    means: Vec<f64>,
    counts: Vec<u64>,
    devs: Vec<StableSum>,
}

impl DeviationAccumulator {
    /// Accumulates one table segment.
    pub fn observe(&mut self, frozen: &FrozenTable<'_>) {
        let schema = frozen.table().schema();
        for (slot, &col) in self.columns.iter().enumerate() {
            if self.counts[slot] == 0 {
                continue;
            }
            if schema.def(col).map(|d| d.kind) != Some(FeatureKind::Numeric) {
                continue;
            }
            let FrozenColumn::Numeric { values, present } = frozen.col(col) else {
                continue;
            };
            let mean = self.means[slot];
            for (r, &v) in values.iter().enumerate() {
                if present.get(r) {
                    self.devs[slot].add((v - mean).abs());
                }
            }
        }
    }

    /// Folds another phase-2 accumulator (a clone of the same
    /// [`ScaleAccumulator::finish_means`] result) into this one.
    ///
    /// # Panics
    /// Panics if the column lists or means differ.
    pub fn merge(&mut self, other: &DeviationAccumulator) {
        assert_eq!(self.columns, other.columns, "deviation accumulators cover different columns");
        let same_means =
            self.means.iter().zip(&other.means).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same_means, "deviation accumulators carry different phase-1 means");
        for (a, b) in self.devs.iter_mut().zip(&other.devs) {
            a.merge(b);
        }
    }

    /// Renders the fitted `(column, scale)` pairs: MAD floored at `1e-9`,
    /// one entry per covered numeric column in config order.
    pub fn finish(self) -> Vec<(usize, f64)> {
        self.columns
            .iter()
            .zip(self.devs.iter().zip(&self.counts))
            .filter(|(_, (_, &n))| n > 0)
            .map(|(&col, (dev, &n))| (col, (dev.value() / n as f64).max(1e-9)))
            .collect()
    }
}

/// The literal Algorithm 1 weight: sum of `|a - b|` over shared numeric
/// features and Jaccard over shared categorical features. Embedding and
/// missing features are skipped (the paper's F is "the set of all features
/// instantiated by F_i, F_j").
pub fn algorithm1_weight(
    a: (&FeatureTable, usize),
    b: (&FeatureTable, usize),
    columns: &[usize],
) -> f64 {
    let (ta, ra) = a;
    let (tb, rb) = b;
    debug_assert_eq!(ta.schema().len(), tb.schema().len(), "schema mismatch");
    let mut w = 0.0;
    for &col in columns {
        let Some(def) = ta.schema().def(col) else {
            // Out-of-range columns are skipped; `cm-check` validates column
            // lists against the schema before execution.
            continue;
        };
        match def.kind {
            FeatureKind::Numeric => {
                if let (Some(x), Some(y)) = (ta.numeric(ra, col), tb.numeric(rb, col)) {
                    w += (x - y).abs();
                }
            }
            FeatureKind::Categorical => {
                if let (Some(x), Some(y)) = (ta.categorical(ra, col), tb.categorical(rb, col)) {
                    w += jaccard_ids(x, y);
                }
            }
            FeatureKind::Embedding { .. } => {}
        }
    }
    w
}

/// Normalized similarity in `[0, 1]`: the mean per-feature similarity over
/// features present in *both* rows. Returns 0.0 when no feature is shared.
pub fn normalized_similarity(
    a: (&FeatureTable, usize),
    b: (&FeatureTable, usize),
    config: &SimilarityConfig,
) -> f64 {
    let (ta, ra) = a;
    let (tb, rb) = b;
    debug_assert_eq!(ta.schema().len(), tb.schema().len(), "schema mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for &col in &config.columns {
        let Some(def) = ta.schema().def(col) else {
            continue;
        };
        match def.kind {
            FeatureKind::Numeric => {
                if let (Some(x), Some(y)) = (ta.numeric(ra, col), tb.numeric(rb, col)) {
                    let scale = config.scale_for(col);
                    total += (-(x - y).abs() / scale).exp();
                    count += 1;
                }
            }
            FeatureKind::Categorical => {
                if let (Some(x), Some(y)) = (ta.categorical(ra, col), tb.categorical(rb, col)) {
                    total += jaccard_ids(x, y);
                    count += 1;
                }
            }
            FeatureKind::Embedding { .. } => {
                if let (Some(x), Some(y)) = (ta.embedding(ra, col), tb.embedding(rb, col)) {
                    total += 0.5 * (cosine(x, y) + 1.0);
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Vocabulary bound under which a categorical column compiles to per-row
/// `u64` masks (Jaccard becomes three popcounts).
const CAT_MASK_BITS: u32 = 64;

/// One column of a compiled [`PairKernel`] plan: resolved kind, borrowed
/// frozen storage, and any per-column precomputation.
enum ColKernel<'a> {
    Numeric {
        values: &'a [f64],
        scale: f64,
    },
    /// Small-vocabulary categorical column: each row's sorted id set packed
    /// into one `u64`. Intersection and union sizes come from popcounts —
    /// the same integers the sorted-slice merge produces, feeding the same
    /// final division.
    CatMask {
        masks: Vec<u64>,
    },
    /// General categorical column: sorted-slice Jaccard over the CSR ids.
    CatSlice {
        offsets: &'a [u32],
        ids: &'a [u32],
    },
    Embedding {
        dim: usize,
        data: &'a [f32],
        norms: Vec<f64>,
    },
}

/// A fused pair-weight kernel: [`normalized_similarity`] compiled against a
/// [`FrozenTable`].
///
/// Compilation resolves, once per table instead of once per pair:
///
/// - the kind of every configured column (dropping out-of-range ones) and
///   the numeric scale, so the per-pair schema walk and the linear search
///   through `numeric_scales` disappear;
/// - direct borrows of the frozen column storage;
/// - one **presence word** per row — bit `c` set when plan column `c` is
///   present — so the per-pair presence test for all columns is a single
///   `AND`, the shared-feature count is its popcount, and absent columns
///   are never visited;
/// - per-row `u64` category masks for small vocabularies and per-row
///   squared embedding norms.
///
/// Bit-identity with the reference: every floating-point operation runs on
/// the same operands in the same order as [`normalized_similarity`]
/// (shared columns are visited in ascending plan order, which is the
/// reference's column order). The integer set sizes behind Jaccard and the
/// shared-column count are order-free, and each hoisted embedding norm is
/// accumulated over the same values in the same index order as the
/// reference's fused cosine loop.
///
/// Plans wider than 64 columns fall back to per-column bitmap gating with
/// the same arithmetic.
pub struct PairKernel<'a> {
    plan: Vec<ColKernel<'a>>,
    /// Bit `c` of `presence[r]` — plan column `c` present in row `r`.
    /// Empty when the plan is wider than 64 columns.
    presence: Vec<u64>,
    /// Per-plan-column presence bitmaps, for the wide-plan fallback.
    present: Vec<&'a Bitmap>,
}

impl<'a> PairKernel<'a> {
    /// Compiles `config` against a frozen view.
    pub fn compile(frozen: &'a FrozenTable<'a>, config: &SimilarityConfig) -> Self {
        let n = frozen.len();
        let n_cols = frozen.n_cols();
        let mut plan = Vec::new();
        let mut present: Vec<&'a Bitmap> = Vec::new();
        for &col in config.columns.iter().filter(|&&col| col < n_cols) {
            match frozen.col(col) {
                FrozenColumn::Numeric { values, present: p } => {
                    plan.push(ColKernel::Numeric { values, scale: config.scale_for(col) });
                    present.push(p);
                }
                FrozenColumn::Categorical { offsets, ids, present: p } => {
                    if ids.iter().all(|&id| id < CAT_MASK_BITS) {
                        let mut masks = vec![0u64; n];
                        for (r, mask) in masks.iter_mut().enumerate() {
                            for &id in &ids[offsets[r] as usize..offsets[r + 1] as usize] {
                                *mask |= 1u64 << id;
                            }
                        }
                        plan.push(ColKernel::CatMask { masks });
                    } else {
                        plan.push(ColKernel::CatSlice { offsets, ids });
                    }
                    present.push(p);
                }
                FrozenColumn::Embedding { dim, data, present: p } => {
                    let dim = *dim;
                    let norms = (0..n)
                        .map(|r| {
                            let row = &data[r * dim..(r + 1) * dim];
                            let mut na = 0.0f64;
                            for &x in row {
                                na += f64::from(x) * f64::from(x);
                            }
                            na
                        })
                        .collect();
                    plan.push(ColKernel::Embedding { dim, data, norms });
                    present.push(p);
                }
            }
        }
        let presence = if plan.len() <= 64 {
            let mut words = vec![0u64; n];
            for (c, p) in present.iter().enumerate() {
                for (r, word) in words.iter_mut().enumerate() {
                    *word |= u64::from(p.get(r)) << c;
                }
            }
            words
        } else {
            Vec::new()
        };
        Self { plan, presence, present }
    }

    /// The contribution of plan column `c` for rows both present in it.
    #[inline]
    fn col_weight(&self, c: usize, i: usize, j: usize) -> f64 {
        match &self.plan[c] {
            ColKernel::Numeric { values, scale } => (-(values[i] - values[j]).abs() / scale).exp(),
            ColKernel::CatMask { masks } => {
                let (ma, mb) = (masks[i], masks[j]);
                let inter = (ma & mb).count_ones() as usize;
                let union = ma.count_ones() as usize + mb.count_ones() as usize - inter;
                if union == 0 {
                    1.0
                } else {
                    inter as f64 / union as f64
                }
            }
            ColKernel::CatSlice { offsets, ids } => {
                let x = &ids[offsets[i] as usize..offsets[i + 1] as usize];
                let y = &ids[offsets[j] as usize..offsets[j + 1] as usize];
                jaccard_ids(x, y)
            }
            ColKernel::Embedding { dim, data, norms } => {
                let x = &data[i * dim..(i + 1) * dim];
                let y = &data[j * dim..(j + 1) * dim];
                0.5 * (cosine_prenorm(x, y, norms[i], norms[j]) + 1.0)
            }
        }
    }

    /// The pair weight between rows `i` and `j` of the frozen table —
    /// bit-identical to `normalized_similarity((t, i), (t, j), config)`.
    pub fn pair(&self, i: usize, j: usize) -> f64 {
        if self.presence.is_empty() {
            return self.pair_wide(i, j);
        }
        let shared = self.presence[i] & self.presence[j];
        let count = shared.count_ones() as usize;
        if count == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut bits = shared;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            total += self.col_weight(c, i, j);
        }
        total / count as f64
    }

    /// Per-column gated path for plans wider than one presence word.
    fn pair_wide(&self, i: usize, j: usize) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (c, p) in self.present.iter().enumerate() {
            if p.get(i) && p.get(j) {
                total += self.col_weight(c, i, j);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Jaccard similarity over two sorted id slices; both empty counts as 1.0.
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    let (mut i, mut j, mut inter) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// [`cosine`] with the squared norms hoisted out: `na` and `nb` must be the
/// row sums of squares accumulated in index order (see
/// [`PairKernel::compile`]). The dot product, the `na * nb` product, the
/// square root, and the clamp all see the same operands as [`cosine`], so
/// the result is bit-identical.
fn cosine_prenorm(a: &[f32], b: &[f32], na: f64, nb: f64) -> f64 {
    let mut dot = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
    }
    let denom = (na * nb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        (dot / denom).clamp(-1.0, 1.0)
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    let denom = (na * nb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        (dot / denom).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::schema::{FeatureDef, FeatureSchema, FeatureSet, ServingMode};
    use crate::value::{CatSet, FeatureValue};
    use crate::vocab::Vocabulary;

    fn table() -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["a", "b", "c"]),
            ),
            FeatureDef::embedding("e", 2, FeatureSet::ModalitySpecific, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        // row 0 and 1: identical; row 2: different everywhere; row 3: mostly missing
        t.push_row(&[
            FeatureValue::Numeric(1.0),
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 1])),
            FeatureValue::Embedding(vec![1.0, 0.0]),
        ]);
        t.push_row(&[
            FeatureValue::Numeric(1.0),
            FeatureValue::Categorical(CatSet::from_ids(vec![0, 1])),
            FeatureValue::Embedding(vec![1.0, 0.0]),
        ]);
        t.push_row(&[
            FeatureValue::Numeric(10.0),
            FeatureValue::Categorical(CatSet::single(2)),
            FeatureValue::Embedding(vec![-1.0, 0.0]),
        ]);
        t.push_row(&[FeatureValue::Missing, FeatureValue::Missing, FeatureValue::Missing]);
        t
    }

    #[test]
    fn paper_worked_example() {
        // Paper §4.4: F_t = (True, outdoor), F_i = (False, outdoor) gives
        // weight 1 (jaccard(True,False)=0 + jaccard(outdoor,outdoor)=1).
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "profanity",
                FeatureSet::A,
                ServingMode::Servable,
                Vocabulary::from_names(["false", "true"]),
            ),
            FeatureDef::categorical(
                "setting",
                FeatureSet::A,
                ServingMode::Servable,
                Vocabulary::from_names(["outdoor", "indoor"]),
            ),
        ]));
        let mut t = FeatureTable::new(schema);
        t.push_row(&[
            FeatureValue::Categorical(CatSet::single(1)),
            FeatureValue::Categorical(CatSet::single(0)),
        ]);
        t.push_row(&[
            FeatureValue::Categorical(CatSet::single(0)),
            FeatureValue::Categorical(CatSet::single(0)),
        ]);
        let w = algorithm1_weight((&t, 0), (&t, 1), &[0, 1]);
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_rows_have_max_normalized_similarity() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        let s = normalized_similarity((&t, 0), (&t, 1), &cfg);
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn dissimilar_rows_score_lower() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        let close = normalized_similarity((&t, 0), (&t, 1), &cfg);
        let far = normalized_similarity((&t, 0), (&t, 2), &cfg);
        assert!(far < close);
        assert!(far >= 0.0);
    }

    #[test]
    fn all_missing_pair_scores_zero() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        assert_eq!(normalized_similarity((&t, 0), (&t, 3), &cfg), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]);
        for i in 0..t.len() {
            for j in 0..t.len() {
                let ij = normalized_similarity((&t, i), (&t, j), &cfg);
                let ji = normalized_similarity((&t, j), (&t, i), &cfg);
                assert!((ij - ji).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fitted_scales_tame_wide_numerics() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0]).fit_scales(&t);
        // With MAD-fitted scale, |1-10| should not drive similarity to ~0
        // as hard as with unit scale.
        let unit = SimilarityConfig::uniform(vec![0]);
        let s_fit = normalized_similarity((&t, 0), (&t, 2), &cfg);
        let s_unit = normalized_similarity((&t, 0), (&t, 2), &unit);
        assert!(s_fit > s_unit);
    }

    #[test]
    fn similarity_bounded_in_unit_interval() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]).fit_scales(&t);
        for i in 0..t.len() {
            for j in 0..t.len() {
                let s = normalized_similarity((&t, i), (&t, j), &cfg);
                assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
            }
        }
    }

    #[test]
    fn pair_kernel_matches_reference_bitwise() {
        let t = table();
        // Column 9 is out of range: both paths must skip it.
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2, 9]).fit_scales(&t);
        let frozen = FrozenTable::freeze(&t);
        let kernel = PairKernel::compile(&frozen, &cfg);
        for i in 0..t.len() {
            for j in 0..t.len() {
                let want = normalized_similarity((&t, i), (&t, j), &cfg);
                let got = kernel.pair(i, j);
                assert_eq!(got.to_bits(), want.to_bits(), "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn fit_scales_matches_materialized_reference() {
        let t = table();
        let cfg = SimilarityConfig::uniform(vec![0, 1, 2]).fit_scales(&t);
        let mut values = Vec::new();
        for r in 0..t.len() {
            if let Some(v) = t.numeric(r, 0) {
                values.push(v);
            }
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let mad = values.iter().map(|v| (v - mean).abs()).sum::<f64>() / values.len() as f64;
        assert_eq!(cfg.numeric_scales, vec![(0, mad.max(1e-9))]);
    }

    /// A 40-row numeric table with a pseudorandom value spread and a
    /// missing row every 7, for exercising the scale accumulators.
    fn wide_table() -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("a", FeatureSet::A, ServingMode::Servable),
            FeatureDef::numeric("b", FeatureSet::A, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        for i in 0..40u32 {
            let v = f64::from(i).mul_add(1.37e3, -2.0e4) / 7.0;
            let row = if i % 7 == 3 {
                vec![FeatureValue::Missing, FeatureValue::Numeric(v * v)]
            } else {
                vec![FeatureValue::Numeric(v), FeatureValue::Numeric(1.0 / (v.abs() + 1.0))]
            };
            t.push_row(&row);
        }
        t
    }

    #[test]
    fn scale_accumulator_segmented_matches_resident() {
        let t = wide_table();
        let resident = SimilarityConfig::uniform(vec![0, 1]).fit_scales(&t);
        // Split at several boundaries, including degenerate ones.
        for cuts in [vec![0, 40], vec![0, 1, 40], vec![0, 13, 14, 40], vec![0, 20, 20, 40]] {
            let segments: Vec<FeatureTable> =
                cuts.windows(2).map(|w| t.gather(&(w[0]..w[1]).collect::<Vec<_>>())).collect();
            let mut acc = ScaleAccumulator::new(&[0, 1]);
            for seg in &segments {
                let mut part = ScaleAccumulator::new(&[0, 1]);
                part.observe(&FrozenTable::freeze(seg));
                acc.merge(&part);
            }
            let dev_base = acc.finish_means();
            let mut dev = dev_base.clone();
            for seg in &segments {
                let mut part = dev_base.clone();
                part.observe(&FrozenTable::freeze(seg));
                dev.merge(&part);
            }
            let scales = dev.finish();
            assert_eq!(scales.len(), resident.numeric_scales.len());
            for ((c1, s1), (c2, s2)) in scales.iter().zip(&resident.numeric_scales) {
                assert_eq!(c1, c2);
                assert_eq!(s1.to_bits(), s2.to_bits(), "cuts {cuts:?} col {c1}");
            }
        }
    }

    #[test]
    fn scale_accumulator_merge_is_order_free() {
        let t = wide_table();
        let first = t.gather(&(0..17).collect::<Vec<_>>());
        let second = t.gather(&(17..40).collect::<Vec<_>>());
        let observe = |seg: &FeatureTable| {
            let mut a = ScaleAccumulator::new(&[0, 1]);
            a.observe(&FrozenTable::freeze(seg));
            a
        };
        let (a, b) = (observe(&first), observe(&second));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.finish_means().finish(), ba.finish_means().finish());
    }

    #[test]
    fn scale_accumulator_skips_empty_and_foreign_columns() {
        let t = table();
        // Column 1 is categorical, 9 out of range, 3 fully missing-free?
        // No: column 0 numeric, rows 0..3 present except row 3.
        let mut acc = ScaleAccumulator::new(&[0, 1, 9]);
        acc.observe(&FrozenTable::freeze(&t));
        let scales = acc.finish_means().finish();
        assert_eq!(scales.len(), 1);
        assert_eq!(scales[0].0, 0);
        // An accumulator that saw nothing produces no scales.
        let empty = ScaleAccumulator::new(&[0, 1]);
        assert!(empty.finish_means().finish().is_empty());
    }

    #[test]
    fn jaccard_ids_edge_cases() {
        assert_eq!(jaccard_ids(&[], &[]), 1.0);
        assert_eq!(jaccard_ids(&[1], &[]), 0.0);
        assert_eq!(jaccard_ids(&[1, 2], &[2, 3]), 1.0 / 3.0);
    }
}
