//! Property-based tests for losses and model behaviour.

use cm_linalg::Matrix;
use cm_models::loss::{bce_grad, bce_with_logit, class_balance_weights, mean_bce};
use cm_models::{LogisticConfig, LogisticRegression};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// BCE is non-negative, finite, and zero only at perfect confidence.
    #[test]
    fn bce_is_nonnegative(z in -80.0f32..80.0, q in 0.0f64..1.0) {
        let l = bce_with_logit(z, q);
        prop_assert!(l >= -1e-12);
        prop_assert!(l.is_finite());
    }

    /// Gradient matches central finite differences.
    #[test]
    fn bce_grad_matches_finite_difference(z in -8.0f32..8.0, q in 0.0f64..1.0) {
        let eps = 1e-3f32;
        let fd = (bce_with_logit(z + eps, q) - bce_with_logit(z - eps, q))
            / (2.0 * f64::from(eps));
        prop_assert!((f64::from(bce_grad(z, q)) - fd).abs() < 1e-4);
    }

    /// BCE is convex in the logit: midpoint below the chord.
    #[test]
    fn bce_is_convex(z1 in -20.0f32..20.0, z2 in -20.0f32..20.0, q in 0.0f64..1.0) {
        let mid = bce_with_logit((z1 + z2) / 2.0, q);
        let chord = (bce_with_logit(z1, q) + bce_with_logit(z2, q)) / 2.0;
        // In the saturated (affine) regimes mid == chord up to f32
        // rounding of the logit, so the tolerance scales with the loss.
        prop_assert!(mid <= chord + 1e-6 * (1.0 + mid.abs()));
    }

    /// Class-balance weights equalize total class mass whenever both
    /// classes exist.
    #[test]
    fn class_balance_equalizes_mass(targets in prop::collection::vec(0.0f64..1.0, 2..50)) {
        let w = class_balance_weights(&targets);
        prop_assert_eq!(w.len(), targets.len());
        let pos_mass: f64 =
            w.iter().zip(&targets).filter(|(_, &t)| t >= 0.5).map(|(w, _)| w).sum();
        let neg_mass: f64 =
            w.iter().zip(&targets).filter(|(_, &t)| t < 0.5).map(|(w, _)| w).sum();
        if pos_mass > 0.0 && neg_mass > 0.0 {
            prop_assert!((pos_mass - neg_mass).abs() < 1e-6 * (pos_mass + neg_mass));
        }
    }

    /// Zero-weighted samples do not influence the mean loss.
    #[test]
    fn zero_weight_samples_are_ignored(
        logits in prop::collection::vec(-5.0f32..5.0, 2..20),
        targets in prop::collection::vec(0.0f64..1.0, 2..20),
    ) {
        let n = logits.len().min(targets.len());
        let logits = &logits[..n];
        let targets = &targets[..n];
        // Weight only the first sample.
        let mut w = vec![0.0; n];
        w[0] = 1.0;
        let weighted = mean_bce(logits, targets, Some(&w));
        let single = bce_with_logit(logits[0], targets[0]);
        prop_assert!((weighted - single).abs() < 1e-12);
    }

    /// Logistic regression on a constant-label problem predicts that label
    /// confidently.
    #[test]
    fn logistic_fits_constant_labels(
        rows in prop::collection::vec(prop::collection::vec(-2.0f32..2.0, 3), 8..24),
        positive in any::<bool>(),
    ) {
        let x = Matrix::from_rows(&rows);
        let y = vec![if positive { 1.0 } else { 0.0 }; rows.len()];
        let model = LogisticRegression::fit(
            &x,
            &y,
            None,
            &LogisticConfig { epochs: 200, lr: 0.1, ..LogisticConfig::default() },
        );
        for p in model.predict_proba(&x) {
            if positive {
                prop_assert!(p > 0.6, "p = {p}");
            } else {
                prop_assert!(p < 0.4, "p = {p}");
            }
        }
    }
}
